//! The error-generator plugin interface.
//!
//! An [`ErrorGenerator`] is ConfErr's unit of extensibility (paper
//! §4): it decides *where* in the configuration and *what type* of
//! faults to inject, emitting fault scenarios built from templates.
//! Generators may also report faults that exist in the error model but
//! **cannot be expressed** in the system's configuration language
//! ([`GeneratedFault::Inexpressible`]) — the paper's §5.4 djbdns
//! finding, where the combined A+PTR directive makes missing-PTR
//! faults impossible to write down.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{ConfigSet, ErrorClass, FaultScenario, Template};

/// One output of an error generator: either a concrete scenario to
/// inject, or a fault the model calls for but the target format cannot
/// express.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GeneratedFault {
    /// A concrete, applicable fault scenario.
    Scenario(FaultScenario),
    /// A fault that cannot be serialized into the system's
    /// configuration language. Recorded in the resilience profile as
    /// an `Inexpressible` outcome (Table 3's "N/A").
    Inexpressible {
        /// Stable identifier.
        id: String,
        /// Human-readable description of the intended fault.
        description: String,
        /// Taxonomy class of the intended fault.
        class: ErrorClass,
        /// Why the fault cannot be expressed.
        reason: String,
    },
}

impl GeneratedFault {
    /// The fault's identifier.
    pub fn id(&self) -> &str {
        match self {
            GeneratedFault::Scenario(s) => &s.id,
            GeneratedFault::Inexpressible { id, .. } => id,
        }
    }

    /// The fault's taxonomy class.
    pub fn class(&self) -> &ErrorClass {
        match self {
            GeneratedFault::Scenario(s) => &s.class,
            GeneratedFault::Inexpressible { class, .. } => class,
        }
    }

    /// The concrete scenario, if this fault is expressible.
    pub fn scenario(&self) -> Option<&FaultScenario> {
        match self {
            GeneratedFault::Scenario(s) => Some(s),
            GeneratedFault::Inexpressible { .. } => None,
        }
    }
}

/// An error-generation failure (e.g. the generator requires a file the
/// set does not contain, or a view transformation failed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenerateError {
    /// Generator name.
    pub generator: String,
    /// Human-readable description.
    pub message: String,
}

impl GenerateError {
    /// Creates a generation error.
    pub fn new(generator: &str, message: impl Into<String>) -> Self {
        GenerateError {
            generator: generator.to_string(),
            message: message.into(),
        }
    }
}

impl fmt::Display for GenerateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "generator {:?} failed: {}", self.generator, self.message)
    }
}

impl std::error::Error for GenerateError {}

/// An error-generator plugin: produces the fault load for one campaign.
pub trait ErrorGenerator: fmt::Debug {
    /// Short plugin name, e.g. `"typo"`.
    fn name(&self) -> &str;

    /// Generates the full fault load for the given configuration set.
    ///
    /// # Errors
    ///
    /// Returns [`GenerateError`] when generation itself fails (as
    /// opposed to individual faults being inexpressible, which are
    /// reported inline).
    fn generate(&self, set: &ConfigSet) -> Result<Vec<GeneratedFault>, GenerateError>;
}

impl<G: ErrorGenerator + ?Sized> ErrorGenerator for Box<G> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn generate(&self, set: &ConfigSet) -> Result<Vec<GeneratedFault>, GenerateError> {
        (**self).generate(set)
    }
}

/// Adapts any [`Template`] into an [`ErrorGenerator`] that never
/// produces inexpressible faults.
#[derive(Debug)]
pub struct TemplateGenerator {
    name: String,
    template: Box<dyn Template>,
}

impl TemplateGenerator {
    /// Wraps a template under a plugin name.
    pub fn new(name: impl Into<String>, template: Box<dyn Template>) -> Self {
        TemplateGenerator {
            name: name.into(),
            template,
        }
    }
}

impl ErrorGenerator for TemplateGenerator {
    fn name(&self) -> &str {
        &self.name
    }

    fn generate(&self, set: &ConfigSet) -> Result<Vec<GeneratedFault>, GenerateError> {
        Ok(self
            .template
            .generate(set)
            .into_iter()
            .map(GeneratedFault::Scenario)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeleteTemplate, StructuralKind};
    use conferr_tree::{ConfTree, Node};

    fn set() -> ConfigSet {
        let mut s = ConfigSet::new();
        s.insert(
            "a.conf",
            ConfTree::new(
                Node::new("config")
                    .with_child(Node::new("directive").with_attr("name", "x").with_text("1")),
            ),
        );
        s
    }

    #[test]
    fn template_generator_wraps_scenarios() {
        let gen = TemplateGenerator::new(
            "omission",
            Box::new(DeleteTemplate::new(
                "//directive".parse().unwrap(),
                ErrorClass::Structural(StructuralKind::DirectiveOmission),
            )),
        );
        assert_eq!(gen.name(), "omission");
        let faults = gen.generate(&set()).unwrap();
        assert_eq!(faults.len(), 1);
        assert!(faults[0].scenario().is_some());
        assert!(faults[0].id().starts_with("delete:"));
    }

    #[test]
    fn inexpressible_accessors() {
        let f = GeneratedFault::Inexpressible {
            id: "dns:missing-ptr:1".into(),
            description: "remove PTR for 192.0.2.10".into(),
            class: ErrorClass::Semantic {
                domain: "dns".into(),
                rule: "missing-ptr".into(),
            },
            reason: "combined A+PTR directive".into(),
        };
        assert_eq!(f.id(), "dns:missing-ptr:1");
        assert!(f.scenario().is_none());
        assert!(matches!(f.class(), ErrorClass::Semantic { .. }));
    }

    #[test]
    fn generate_error_displays() {
        let e = GenerateError::new("dns", "no zone files in set");
        assert!(e.to_string().contains("dns"));
        assert!(e.to_string().contains("no zone files"));
    }
}
