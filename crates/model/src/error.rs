//! Error type for scenario application and template evaluation.

use std::fmt;

use conferr_tree::TreeError;

/// Errors produced while applying a [`crate::FaultScenario`] to a
/// [`crate::ConfigSet`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// An edit referenced a file that is not in the configuration set.
    UnknownFile {
        /// The missing file name.
        file: String,
    },
    /// A tree operation failed (stale path, invalid edit, ...).
    Tree {
        /// The file whose tree was being edited.
        file: String,
        /// The underlying tree error.
        source: TreeError,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownFile { file } => {
                write!(f, "configuration set has no file named {file:?}")
            }
            ModelError::Tree { file, source } => {
                write!(f, "edit failed in {file:?}: {source}")
            }
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Tree { source, .. } => Some(source),
            ModelError::UnknownFile { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ModelError::UnknownFile {
            file: "x.conf".into(),
        };
        assert!(e.to_string().contains("x.conf"));
        let e = ModelError::Tree {
            file: "y.conf".into(),
            source: TreeError::InvalidEdit {
                reason: "nope".into(),
            },
        };
        assert!(e.to_string().contains("y.conf"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
