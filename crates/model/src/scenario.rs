//! Fault scenarios: declarative, replayable configuration mistakes.

use std::fmt;

use conferr_tree::{ConfTree, Node, TreePath};
use serde::{Deserialize, Serialize};

use crate::{ConfigSet, ModelError};

/// The GEMS cognitive level a mistake originates from (paper §2).
///
/// Reason's Generic Error-Modeling System attributes ~60% of human
/// errors to skill-based slips, ~30% to rule-based mistakes and ~10%
/// to knowledge-based mistakes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CognitiveLevel {
    /// Slips and lapses in routine actions (typos, skipped lines).
    SkillBased,
    /// Misapplied patterns from familiar situations (borrowing another
    /// system's configuration idioms).
    RuleBased,
    /// First-principles reasoning gone wrong (misunderstanding what a
    /// parameter means).
    KnowledgeBased,
}

impl CognitiveLevel {
    /// Approximate share of general human errors attributed to this
    /// level by GEMS (paper §2).
    pub fn gems_share(self) -> f64 {
        match self {
            CognitiveLevel::SkillBased => 0.6,
            CognitiveLevel::RuleBased => 0.3,
            CognitiveLevel::KnowledgeBased => 0.1,
        }
    }
}

impl fmt::Display for CognitiveLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CognitiveLevel::SkillBased => "skill-based",
            CognitiveLevel::RuleBased => "rule-based",
            CognitiveLevel::KnowledgeBased => "knowledge-based",
        })
    }
}

/// The five one-letter typo categories of the paper's spelling-mistake
/// model (§2.1), after van Berkel & De Smedt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TypoKind {
    /// One character missing.
    Omission,
    /// One spurious character introduced.
    Insertion,
    /// One character replaced by a keyboard neighbour.
    Substitution,
    /// Case of a letter swapped by Shift miscoordination.
    CaseAlteration,
    /// Two adjacent characters swapped.
    Transposition,
}

impl fmt::Display for TypoKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TypoKind::Omission => "omission",
            TypoKind::Insertion => "insertion",
            TypoKind::Substitution => "substitution",
            TypoKind::CaseAlteration => "case-alteration",
            TypoKind::Transposition => "transposition",
        })
    }
}

/// Structural error categories (paper §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum StructuralKind {
    /// A directive forgotten while editing.
    DirectiveOmission,
    /// A whole section forgotten.
    SectionOmission,
    /// A directive (or section) repeated, e.g. via copy-paste.
    Duplication,
    /// A directive moved into the wrong section.
    Misplacement,
    /// A directive borrowed from a *different* program's configuration
    /// (rule-based reuse of the wrong mental model).
    ForeignDirective,
    /// An accepted-variation probe (paper §5.3, Table 2): a rewrite
    /// that should be semantically neutral, such as reordering or case
    /// changes.
    Variation,
}

impl fmt::Display for StructuralKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StructuralKind::DirectiveOmission => "directive-omission",
            StructuralKind::SectionOmission => "section-omission",
            StructuralKind::Duplication => "duplication",
            StructuralKind::Misplacement => "misplacement",
            StructuralKind::ForeignDirective => "foreign-directive",
            StructuralKind::Variation => "variation",
        })
    }
}

/// Classification of a fault scenario, used for aggregation in
/// resilience profiles.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ErrorClass {
    /// A spelling mistake (§2.1).
    Typo(TypoKind),
    /// A structural error (§2.2).
    Structural(StructuralKind),
    /// A domain-specific semantic error (§2.3), e.g. an RFC-1912 DNS
    /// misconfiguration.
    Semantic {
        /// Error domain, e.g. `"dns"`.
        domain: String,
        /// Rule identifier, e.g. `"missing-ptr"`.
        rule: String,
    },
}

impl ErrorClass {
    /// The GEMS cognitive level this class of error models.
    pub fn cognitive_level(&self) -> CognitiveLevel {
        match self {
            ErrorClass::Typo(_) => CognitiveLevel::SkillBased,
            ErrorClass::Structural(kind) => match kind {
                StructuralKind::ForeignDirective | StructuralKind::Variation => {
                    CognitiveLevel::RuleBased
                }
                _ => CognitiveLevel::SkillBased,
            },
            ErrorClass::Semantic { .. } => CognitiveLevel::KnowledgeBased,
        }
    }
}

impl fmt::Display for ErrorClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorClass::Typo(k) => write!(f, "typo/{k}"),
            ErrorClass::Structural(k) => write!(f, "structural/{k}"),
            ErrorClass::Semantic { domain, rule } => write!(f, "semantic/{domain}/{rule}"),
        }
    }
}

/// One declarative edit against one file of a [`ConfigSet`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TreeEdit {
    /// Delete the node at `path`.
    Delete {
        /// Target file name.
        file: String,
        /// Node to delete.
        path: TreePath,
    },
    /// Duplicate the node at `path`, placing the copy right after it.
    DuplicateAfter {
        /// Target file name.
        file: String,
        /// Node to duplicate.
        path: TreePath,
    },
    /// Move a node to become the `index`-th child of `to_parent`.
    Move {
        /// Target file name.
        file: String,
        /// Node to move.
        from: TreePath,
        /// Destination parent.
        to_parent: TreePath,
        /// Insertion index within the destination.
        index: usize,
    },
    /// Replace the text content of the node at `path`.
    SetText {
        /// Target file name.
        file: String,
        /// Node whose text changes.
        path: TreePath,
        /// New text (`None` clears it).
        text: Option<String>,
    },
    /// Set an attribute of the node at `path`.
    SetAttr {
        /// Target file name.
        file: String,
        /// Node whose attribute changes.
        path: TreePath,
        /// Attribute key.
        key: String,
        /// New attribute value.
        value: String,
    },
    /// Insert a new node as the `index`-th child of `parent`.
    Insert {
        /// Target file name.
        file: String,
        /// Parent node.
        parent: TreePath,
        /// Insertion index.
        index: usize,
        /// The node to insert.
        node: Node,
    },
    /// Swap children `i` and `j` of `parent`.
    SwapChildren {
        /// Target file name.
        file: String,
        /// Parent node.
        parent: TreePath,
        /// First child index.
        i: usize,
        /// Second child index.
        j: usize,
    },
    /// Replace a file's entire tree (used by view-based plugins that
    /// reconstruct the system representation from a mutated
    /// plugin-specific representation).
    ReplaceTree {
        /// Target file name.
        file: String,
        /// The replacement tree.
        tree: ConfTree,
    },
}

impl TreeEdit {
    /// The file this edit targets.
    pub fn file(&self) -> &str {
        match self {
            TreeEdit::Delete { file, .. }
            | TreeEdit::DuplicateAfter { file, .. }
            | TreeEdit::Move { file, .. }
            | TreeEdit::SetText { file, .. }
            | TreeEdit::SetAttr { file, .. }
            | TreeEdit::Insert { file, .. }
            | TreeEdit::SwapChildren { file, .. }
            | TreeEdit::ReplaceTree { file, .. } => file,
        }
    }

    fn apply_to(&self, tree: &mut ConfTree) -> Result<(), conferr_tree::TreeError> {
        match self {
            TreeEdit::Delete { path, .. } => tree.delete(path).map(|_| ()),
            TreeEdit::DuplicateAfter { path, .. } => tree.duplicate(path).map(|_| ()),
            TreeEdit::Move {
                from,
                to_parent,
                index,
                ..
            } => tree.move_node(from, to_parent, *index).map(|_| ()),
            TreeEdit::SetText { path, text, .. } => {
                tree.set_text_at(path, text.clone()).map(|_| ())
            }
            TreeEdit::SetAttr {
                path, key, value, ..
            } => tree.set_attr_at(path, key, value).map(|_| ()),
            TreeEdit::Insert {
                parent,
                index,
                node,
                ..
            } => tree.insert(parent, *index, node.clone()).map(|_| ()),
            TreeEdit::SwapChildren { parent, i, j, .. } => tree.swap_children(parent, *i, *j),
            TreeEdit::ReplaceTree { tree: new_tree, .. } => {
                *tree = new_tree.clone();
                Ok(())
            }
        }
    }
}

/// One realistic configuration mistake: an identifier, a human-readable
/// description, a taxonomy class, and the edits that realise it.
///
/// Scenarios are *values*: applying one never mutates the original
/// set, so a campaign can replay thousands of scenarios from the same
/// pristine configuration. Two scenarios with identical `edits` are
/// interchangeable against a fixed baseline — the campaign engine's
/// fault memo exploits exactly that.
///
/// # Examples
///
/// ```
/// use conferr_model::{ConfigSet, ErrorClass, FaultScenario, StructuralKind, TreeEdit};
/// use conferr_tree::{ConfTree, Node, TreePath};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut set = ConfigSet::new();
/// set.insert(
///     "app.conf",
///     ConfTree::new(
///         Node::new("config")
///             .with_child(Node::new("directive").with_attr("name", "port").with_text("80")),
///     ),
/// );
/// let scenario = FaultScenario {
///     id: "delete:port".into(),
///     description: "drop the port directive".into(),
///     class: ErrorClass::Structural(StructuralKind::DirectiveOmission),
///     edits: vec![TreeEdit::Delete {
///         file: "app.conf".into(),
///         path: TreePath::from(vec![0]),
///     }],
/// };
/// let mutated = scenario.apply(&set)?;
/// assert_eq!(mutated.get("app.conf").unwrap().root().children().len(), 0);
/// // The original set is untouched.
/// assert_eq!(set.get("app.conf").unwrap().root().children().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultScenario {
    /// Stable identifier, unique within one generation run.
    pub id: String,
    /// Human-readable description of the mistake.
    pub description: String,
    /// Taxonomy class.
    pub class: ErrorClass,
    /// The edits to apply, in order.
    pub edits: Vec<TreeEdit>,
}

impl FaultScenario {
    /// Applies the scenario to a copy-on-write clone of `set`,
    /// returning the mutated set.
    ///
    /// The clone shares every tree with `set` (cheap `Arc` bumps);
    /// only the file(s) the edits actually touch are deep-copied
    /// before mutation. Untouched files stay pointer-identical to
    /// `set`'s, which downstream consumers exploit to skip
    /// re-serialization and diffing ([`ConfigSet::shares_tree`]).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if an edit references an unknown file or
    /// a stale path.
    pub fn apply(&self, set: &ConfigSet) -> Result<ConfigSet, ModelError> {
        let mut out = set.clone();
        for edit in &self.edits {
            let file = edit.file().to_string();
            if let TreeEdit::ReplaceTree { tree, .. } = edit {
                // A whole-file replacement needn't copy-on-write the
                // outgoing tree just to overwrite it.
                if out.get(&file).is_none() {
                    return Err(ModelError::UnknownFile { file });
                }
                out.insert(file, tree.clone());
                continue;
            }
            let tree = out
                .get_mut(&file)
                .ok_or_else(|| ModelError::UnknownFile { file: file.clone() })?;
            edit.apply_to(tree)
                .map_err(|source| ModelError::Tree { file, source })?;
        }
        Ok(out)
    }

    /// The GEMS cognitive level of this scenario's class.
    pub fn cognitive_level(&self) -> CognitiveLevel {
        self.class.cognitive_level()
    }
}

impl fmt::Display for FaultScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} ({})", self.id, self.description, self.class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set() -> ConfigSet {
        let mut s = ConfigSet::new();
        s.insert(
            "app.conf",
            ConfTree::new(
                Node::new("config")
                    .with_child(Node::new("directive").with_attr("name", "a").with_text("1"))
                    .with_child(Node::new("directive").with_attr("name", "b").with_text("2")),
            ),
        );
        s
    }

    fn scenario(edits: Vec<TreeEdit>) -> FaultScenario {
        FaultScenario {
            id: "t1".into(),
            description: "test".into(),
            class: ErrorClass::Typo(TypoKind::Omission),
            edits,
        }
    }

    #[test]
    fn apply_leaves_original_untouched() {
        let s = set();
        let sc = scenario(vec![TreeEdit::Delete {
            file: "app.conf".into(),
            path: TreePath::from(vec![0]),
        }]);
        let out = sc.apply(&s).unwrap();
        assert_eq!(out.get("app.conf").unwrap().root().children().len(), 1);
        assert_eq!(s.get("app.conf").unwrap().root().children().len(), 2);
    }

    #[test]
    fn unknown_file_is_reported() {
        let sc = scenario(vec![TreeEdit::Delete {
            file: "nope.conf".into(),
            path: TreePath::root().child(0),
        }]);
        assert!(matches!(
            sc.apply(&set()),
            Err(ModelError::UnknownFile { .. })
        ));
    }

    #[test]
    fn stale_path_is_reported() {
        let sc = scenario(vec![TreeEdit::Delete {
            file: "app.conf".into(),
            path: TreePath::from(vec![9]),
        }]);
        assert!(matches!(sc.apply(&set()), Err(ModelError::Tree { .. })));
    }

    #[test]
    fn multi_edit_scenarios_apply_in_order() {
        let sc = scenario(vec![
            TreeEdit::SetText {
                file: "app.conf".into(),
                path: TreePath::from(vec![0]),
                text: Some("9".into()),
            },
            TreeEdit::DuplicateAfter {
                file: "app.conf".into(),
                path: TreePath::from(vec![0]),
            },
        ]);
        let out = sc.apply(&set()).unwrap();
        let root = out.get("app.conf").unwrap().root();
        assert_eq!(root.children().len(), 3);
        assert_eq!(root.children()[1].text(), Some("9"));
    }

    #[test]
    fn replace_tree_swaps_whole_file() {
        let sc = scenario(vec![TreeEdit::ReplaceTree {
            file: "app.conf".into(),
            tree: ConfTree::new(Node::new("config")),
        }]);
        let out = sc.apply(&set()).unwrap();
        assert!(out.get("app.conf").unwrap().is_empty());
    }

    #[test]
    fn cognitive_levels_follow_gems() {
        assert_eq!(
            ErrorClass::Typo(TypoKind::Insertion).cognitive_level(),
            CognitiveLevel::SkillBased
        );
        assert_eq!(
            ErrorClass::Structural(StructuralKind::ForeignDirective).cognitive_level(),
            CognitiveLevel::RuleBased
        );
        assert_eq!(
            ErrorClass::Semantic {
                domain: "dns".into(),
                rule: "missing-ptr".into()
            }
            .cognitive_level(),
            CognitiveLevel::KnowledgeBased
        );
        let total: f64 = [
            CognitiveLevel::SkillBased,
            CognitiveLevel::RuleBased,
            CognitiveLevel::KnowledgeBased,
        ]
        .iter()
        .map(|l| l.gems_share())
        .sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn display_formats() {
        let sc = scenario(vec![]);
        assert_eq!(sc.to_string(), "[t1] test (typo/omission)");
        assert_eq!(CognitiveLevel::RuleBased.to_string(), "rule-based");
        assert_eq!(
            ErrorClass::Semantic {
                domain: "dns".into(),
                rule: "x".into()
            }
            .to_string(),
            "semantic/dns/x"
        );
    }
}
