//! Named sets of configuration trees — the unit of error injection.

use std::collections::BTreeMap;
use std::sync::Arc;

use conferr_tree::ConfTree;
use serde::{Deserialize, Serialize};

/// A named collection of parsed configuration files.
///
/// ConfErr applies every fault scenario to the *entire set* of a
/// system's configuration files, which is what allows cross-file
/// errors (paper §3.1) — e.g. deleting a forward DNS mapping while the
/// reverse zone still references it.
///
/// Each file's tree is held behind an [`Arc`], so cloning a set is a
/// handful of reference-count bumps rather than a deep copy of every
/// tree. Mutation goes through [`ConfigSet::get_mut`], which
/// copy-on-writes only the file being edited: a campaign replaying
/// thousands of scenarios from one pristine baseline pays per-edit
/// cost proportional to the files an edit touches, not to the size of
/// the whole configuration. The driver exploits the sharing further —
/// a file whose `Arc` is still pointer-equal to the baseline's
/// ([`ConfigSet::get_arc`], [`Arc::ptr_eq`]) provably carries no edit
/// and needs no re-serialization or diffing.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigSet {
    files: BTreeMap<String, Arc<ConfTree>>,
}

impl ConfigSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        ConfigSet::default()
    }

    /// Inserts (or replaces) a file, returning the previous tree if
    /// one was present.
    pub fn insert(&mut self, name: impl Into<String>, tree: ConfTree) -> Option<Arc<ConfTree>> {
        self.files.insert(name.into(), Arc::new(tree))
    }

    /// Inserts (or replaces) a file with an already-shared tree,
    /// preserving the sharing (no deep copy).
    pub fn insert_arc(
        &mut self,
        name: impl Into<String>,
        tree: Arc<ConfTree>,
    ) -> Option<Arc<ConfTree>> {
        self.files.insert(name.into(), tree)
    }

    /// Shared access to a file's tree.
    pub fn get(&self, name: &str) -> Option<&ConfTree> {
        self.files.get(name).map(Arc::as_ref)
    }

    /// The shared handle to a file's tree. Two sets hold *the same*
    /// (not merely equal) tree for a file when the returned handles
    /// are [`Arc::ptr_eq`] — the cheap "this file is untouched" test
    /// the campaign driver uses to skip serialization and diffing.
    pub fn get_arc(&self, name: &str) -> Option<&Arc<ConfTree>> {
        self.files.get(name)
    }

    /// Exclusive access to a file's tree, copy-on-write: if the tree
    /// is shared with another set (e.g. the pristine baseline), it is
    /// cloned once so the edit never leaks into the other holders.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut ConfTree> {
        self.files.get_mut(name).map(Arc::make_mut)
    }

    /// Removes a file from the set.
    pub fn remove(&mut self, name: &str) -> Option<Arc<ConfTree>> {
        self.files.remove(name)
    }

    /// Iterates over `(name, tree)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ConfTree)> {
        self.files.iter().map(|(k, v)| (k.as_str(), v.as_ref()))
    }

    /// Iterates over `(name, shared handle)` pairs in name order.
    pub fn iter_arcs(&self) -> impl Iterator<Item = (&str, &Arc<ConfTree>)> {
        self.files.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// File names in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.files.keys().map(String::as_str)
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// `true` iff the set contains no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// `true` iff `self` and `other` hold the *identical* shared tree
    /// for `name` (pointer equality, not structural equality). A
    /// `true` result proves no edit touched the file since the sets
    /// diverged; `false` says nothing — structurally equal trees in
    /// distinct allocations also return `false`.
    pub fn shares_tree(&self, other: &ConfigSet, name: &str) -> bool {
        match (self.files.get(name), other.files.get(name)) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl FromIterator<(String, ConfTree)> for ConfigSet {
    fn from_iter<T: IntoIterator<Item = (String, ConfTree)>>(iter: T) -> Self {
        ConfigSet {
            files: iter.into_iter().map(|(k, v)| (k, Arc::new(v))).collect(),
        }
    }
}

impl Extend<(String, ConfTree)> for ConfigSet {
    fn extend<T: IntoIterator<Item = (String, ConfTree)>>(&mut self, iter: T) {
        self.files
            .extend(iter.into_iter().map(|(k, v)| (k, Arc::new(v))));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conferr_tree::Node;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut set = ConfigSet::new();
        assert!(set.is_empty());
        set.insert("a.conf", ConfTree::new(Node::new("config")));
        assert_eq!(set.len(), 1);
        assert!(set.get("a.conf").is_some());
        assert!(set.get("b.conf").is_none());
        assert!(set.remove("a.conf").is_some());
        assert!(set.is_empty());
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut set = ConfigSet::new();
        set.insert("z.conf", ConfTree::new(Node::new("config")));
        set.insert("a.conf", ConfTree::new(Node::new("config")));
        let names: Vec<&str> = set.names().collect();
        assert_eq!(names, ["a.conf", "z.conf"]);
    }

    #[test]
    fn collectable_and_extendable() {
        let mut set: ConfigSet = vec![("a".to_string(), ConfTree::new(Node::new("config")))]
            .into_iter()
            .collect();
        set.extend(vec![("b".to_string(), ConfTree::new(Node::new("config")))]);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn clone_shares_trees_until_mutated() {
        let mut set = ConfigSet::new();
        set.insert("a.conf", ConfTree::new(Node::new("config")));
        set.insert(
            "b.conf",
            ConfTree::new(Node::new("config").with_child(Node::new("directive"))),
        );
        let copy = set.clone();
        assert!(copy.shares_tree(&set, "a.conf"));
        assert!(copy.shares_tree(&set, "b.conf"));

        // Mutating one file in the copy detaches only that file.
        let mut copy = copy;
        copy.get_mut("b.conf")
            .unwrap()
            .root_mut()
            .children_mut()
            .clear();
        assert!(copy.shares_tree(&set, "a.conf"));
        assert!(!copy.shares_tree(&set, "b.conf"));
        // The original is untouched.
        assert_eq!(set.get("b.conf").unwrap().root().children().len(), 1);
        assert!(copy.get("b.conf").unwrap().root().children().is_empty());
    }

    #[test]
    fn shares_tree_is_pointer_not_structural_equality() {
        let mut a = ConfigSet::new();
        let mut b = ConfigSet::new();
        a.insert("x.conf", ConfTree::new(Node::new("config")));
        b.insert("x.conf", ConfTree::new(Node::new("config")));
        assert_eq!(a, b);
        assert!(!a.shares_tree(&b, "x.conf"));
        assert!(!a.shares_tree(&b, "missing.conf"));
    }

    #[test]
    fn insert_arc_preserves_sharing() {
        let tree = Arc::new(ConfTree::new(Node::new("config")));
        let mut a = ConfigSet::new();
        let mut b = ConfigSet::new();
        a.insert_arc("x.conf", Arc::clone(&tree));
        b.insert_arc("x.conf", tree);
        assert!(a.shares_tree(&b, "x.conf"));
    }
}
