//! Named sets of configuration trees — the unit of error injection.

use std::collections::BTreeMap;

use conferr_tree::ConfTree;
use serde::{Deserialize, Serialize};

/// A named collection of parsed configuration files.
///
/// ConfErr applies every fault scenario to the *entire set* of a
/// system's configuration files, which is what allows cross-file
/// errors (paper §3.1) — e.g. deleting a forward DNS mapping while the
/// reverse zone still references it.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigSet {
    files: BTreeMap<String, ConfTree>,
}

impl ConfigSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        ConfigSet::default()
    }

    /// Inserts (or replaces) a file, returning the previous tree if
    /// one was present.
    pub fn insert(&mut self, name: impl Into<String>, tree: ConfTree) -> Option<ConfTree> {
        self.files.insert(name.into(), tree)
    }

    /// Shared access to a file's tree.
    pub fn get(&self, name: &str) -> Option<&ConfTree> {
        self.files.get(name)
    }

    /// Exclusive access to a file's tree.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut ConfTree> {
        self.files.get_mut(name)
    }

    /// Removes a file from the set.
    pub fn remove(&mut self, name: &str) -> Option<ConfTree> {
        self.files.remove(name)
    }

    /// Iterates over `(name, tree)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ConfTree)> {
        self.files.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// File names in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.files.keys().map(String::as_str)
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// `true` iff the set contains no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }
}

impl FromIterator<(String, ConfTree)> for ConfigSet {
    fn from_iter<T: IntoIterator<Item = (String, ConfTree)>>(iter: T) -> Self {
        ConfigSet {
            files: iter.into_iter().collect(),
        }
    }
}

impl Extend<(String, ConfTree)> for ConfigSet {
    fn extend<T: IntoIterator<Item = (String, ConfTree)>>(&mut self, iter: T) {
        self.files.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conferr_tree::Node;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut set = ConfigSet::new();
        assert!(set.is_empty());
        set.insert("a.conf", ConfTree::new(Node::new("config")));
        assert_eq!(set.len(), 1);
        assert!(set.get("a.conf").is_some());
        assert!(set.get("b.conf").is_none());
        assert!(set.remove("a.conf").is_some());
        assert!(set.is_empty());
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut set = ConfigSet::new();
        set.insert("z.conf", ConfTree::new(Node::new("config")));
        set.insert("a.conf", ConfTree::new(Node::new("config")));
        let names: Vec<&str> = set.names().collect();
        assert_eq!(names, ["a.conf", "z.conf"]);
    }

    #[test]
    fn collectable_and_extendable() {
        let mut set: ConfigSet = vec![("a".to_string(), ConfTree::new(Node::new("config")))]
            .into_iter()
            .collect();
        set.extend(vec![("b".to_string(), ConfTree::new(Node::new("config")))]);
        assert_eq!(set.len(), 2);
    }
}
