//! Template combinators — the paper's "complex templates" (§3.3).
//!
//! These take *sets of fault scenarios defined with other templates*
//! and compose or subset them: [`Union`] merges models, [`Sample`]
//! picks a seeded random subset, [`Limit`] truncates, and [`Filter`]
//! keeps scenarios matching a predicate. Together they let a plugin
//! "compose multiple error models or limit the number of faults that a
//! given model can return".

use std::fmt;
use std::sync::Arc;

use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::{ConfigSet, FaultScenario, Template};

/// The union of several templates' scenario sets, in template order.
/// Duplicate scenario ids are kept (templates are responsible for
/// unique ids within themselves).
#[derive(Debug)]
pub struct Union {
    inner: Vec<Box<dyn Template>>,
}

impl Union {
    /// Creates a union of the given templates.
    pub fn new(inner: Vec<Box<dyn Template>>) -> Self {
        Union { inner }
    }
}

impl Template for Union {
    fn generate(&self, set: &ConfigSet) -> Vec<FaultScenario> {
        self.inner.iter().flat_map(|t| t.generate(set)).collect()
    }
}

/// A seeded random subset of size at most `k` of the inner template's
/// scenarios.
///
/// This is how ConfErr "generates errors by choosing random subsets"
/// (§4.1) while staying fully reproducible: the same seed always
/// selects the same subset. Order within the subset follows the inner
/// template's order.
#[derive(Debug)]
pub struct Sample {
    inner: Box<dyn Template>,
    k: usize,
    seed: u64,
}

impl Sample {
    /// Samples at most `k` scenarios from `inner` using `seed`.
    pub fn new(inner: Box<dyn Template>, k: usize, seed: u64) -> Self {
        Sample { inner, k, seed }
    }
}

impl Template for Sample {
    fn generate(&self, set: &ConfigSet) -> Vec<FaultScenario> {
        let all = self.inner.generate(set);
        if all.len() <= self.k {
            return all;
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let mut indices: Vec<usize> = (0..all.len()).collect();
        indices.shuffle(&mut rng);
        let mut chosen: Vec<usize> = indices.into_iter().take(self.k).collect();
        chosen.sort_unstable();
        let mut all = all;
        let mut out = Vec::with_capacity(self.k);
        // Drain in reverse so indices stay valid.
        for idx in chosen.into_iter().rev() {
            out.push(all.swap_remove(idx));
        }
        out.reverse();
        out
    }
}

/// The first `n` scenarios of the inner template.
#[derive(Debug)]
pub struct Limit {
    inner: Box<dyn Template>,
    n: usize,
}

impl Limit {
    /// Keeps the first `n` scenarios.
    pub fn new(inner: Box<dyn Template>, n: usize) -> Self {
        Limit { inner, n }
    }
}

impl Template for Limit {
    fn generate(&self, set: &ConfigSet) -> Vec<FaultScenario> {
        let mut all = self.inner.generate(set);
        all.truncate(self.n);
        all
    }
}

/// Keeps only scenarios satisfying a predicate.
pub struct Filter {
    inner: Box<dyn Template>,
    pred: Arc<dyn Fn(&FaultScenario) -> bool + Send + Sync>,
}

impl fmt::Debug for Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Filter")
            .field("inner", &self.inner)
            .finish_non_exhaustive()
    }
}

impl Filter {
    /// Keeps scenarios for which `pred` returns `true`.
    pub fn new(
        inner: Box<dyn Template>,
        pred: impl Fn(&FaultScenario) -> bool + Send + Sync + 'static,
    ) -> Self {
        Filter {
            inner,
            pred: Arc::new(pred),
        }
    }
}

impl Template for Filter {
    fn generate(&self, set: &ConfigSet) -> Vec<FaultScenario> {
        self.inner
            .generate(set)
            .into_iter()
            .filter(|s| (self.pred)(s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeleteTemplate, DuplicateTemplate, ErrorClass, StructuralKind};
    use conferr_tree::{ConfTree, Node};

    fn set() -> ConfigSet {
        let mut s = ConfigSet::new();
        let mut root = Node::new("config");
        for i in 0..10 {
            root.push_child(
                Node::new("directive")
                    .with_attr("name", format!("d{i}"))
                    .with_text(i.to_string()),
            );
        }
        s.insert("a.conf", ConfTree::new(root));
        s
    }

    fn class() -> ErrorClass {
        ErrorClass::Structural(StructuralKind::DirectiveOmission)
    }

    fn delete_all() -> Box<dyn Template> {
        Box::new(DeleteTemplate::new("//directive".parse().unwrap(), class()))
    }

    #[test]
    fn union_concatenates_in_order() {
        let u = Union::new(vec![
            delete_all(),
            Box::new(DuplicateTemplate::new(
                "//directive".parse().unwrap(),
                class(),
            )),
        ]);
        let scenarios = u.generate(&set());
        assert_eq!(scenarios.len(), 20);
        assert!(scenarios[0].id.starts_with("delete:"));
        assert!(scenarios[10].id.starts_with("duplicate:"));
    }

    #[test]
    fn sample_is_seeded_and_bounded() {
        let s1 = Sample::new(delete_all(), 4, 42).generate(&set());
        let s2 = Sample::new(delete_all(), 4, 42).generate(&set());
        let s3 = Sample::new(delete_all(), 4, 43).generate(&set());
        assert_eq!(s1.len(), 4);
        assert_eq!(s1, s2, "same seed must give the same subset");
        assert_ne!(s1, s3, "different seeds should give different subsets");
    }

    #[test]
    fn sample_larger_than_population_returns_all() {
        let s = Sample::new(delete_all(), 100, 1).generate(&set());
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn sample_preserves_inner_order() {
        let s = Sample::new(delete_all(), 5, 7).generate(&set());
        let mut ids: Vec<&String> = s.iter().map(|sc| &sc.id).collect();
        let sorted = {
            let mut v = ids.clone();
            v.sort_by_key(|id| {
                // delete:a.conf:/N — compare by N.
                id.rsplit('/').next().unwrap().parse::<usize>().unwrap()
            });
            v
        };
        ids.sort_by_key(|id| id.rsplit('/').next().unwrap().parse::<usize>().unwrap());
        assert_eq!(ids, sorted);
    }

    #[test]
    fn limit_truncates() {
        let s = Limit::new(delete_all(), 3).generate(&set());
        assert_eq!(s.len(), 3);
        let s = Limit::new(delete_all(), 0).generate(&set());
        assert!(s.is_empty());
    }

    #[test]
    fn filter_applies_predicate() {
        let f = Filter::new(delete_all(), |sc| sc.description.contains("d1"));
        let s = f.generate(&set());
        assert_eq!(s.len(), 1);
        assert!(s[0].description.contains("d1"));
    }

    #[test]
    fn combinators_nest() {
        let nested = Limit::new(
            Box::new(Sample::new(
                Box::new(Union::new(vec![delete_all(), delete_all()])),
                10,
                9,
            )),
            5,
        );
        assert_eq!(nested.generate(&set()).len(), 5);
    }
}
