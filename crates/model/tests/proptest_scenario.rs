//! Property-based tests for copy-on-write scenario application.
//!
//! `ConfigSet` shares trees behind `Arc` and `FaultScenario::apply`
//! copy-on-writes only the files an edit touches. These properties
//! pin the semantics to the reference behaviour: applying a scenario
//! must produce exactly what a deep-clone-everything implementation
//! (the pre-COW driver) would, must never disturb the original set,
//! and must keep every untouched file pointer-shared with the
//! original.

use conferr_model::{ConfigSet, ErrorClass, FaultScenario, TreeEdit, TypoKind};
use conferr_tree::{ConfTree, Node, TreePath};
use proptest::prelude::*;

/// Strategy producing an arbitrary small node tree.
fn arb_node(depth: u32) -> impl Strategy<Value = Node> {
    let leaf = (
        prop::sample::select(vec!["directive", "comment", "blank"]),
        prop::option::of("[a-z]{1,6}"),
        prop::option::of("[a-zA-Z0-9_ ]{0,8}"),
    )
        .prop_map(|(kind, name, text)| {
            let mut n = Node::new(kind);
            if let Some(name) = name {
                n.set_attr("name", name);
            }
            n.set_text(text);
            n
        });
    leaf.prop_recursive(depth, 16, 4, |inner| {
        (
            prop::sample::select(vec!["section", "config"]),
            prop::option::of("[a-z]{1,6}"),
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(kind, name, children)| {
                let mut n = Node::new(kind);
                if let Some(name) = name {
                    n.set_attr("name", name);
                }
                n.with_children(children)
            })
    })
}

/// A set of 1–3 files named `file0.conf`…
fn arb_set() -> impl Strategy<Value = ConfigSet> {
    prop::collection::vec(arb_node(2), 1..4).prop_map(|roots| {
        roots
            .into_iter()
            .enumerate()
            .map(|(i, root)| (format!("file{i}.conf"), ConfTree::new(root)))
            .collect()
    })
}

/// Paths short enough to sometimes resolve, deep enough to sometimes
/// dangle — both sides of the equivalence matter.
fn arb_path() -> impl Strategy<Value = TreePath> {
    prop::collection::vec(0usize..4, 0..3).prop_map(TreePath::from)
}

/// A file name drawn from `file0..file2` plus an occasionally-unknown
/// ghost, so the error path is exercised too.
fn arb_file() -> impl Strategy<Value = String> {
    (0usize..4).prop_map(|i| {
        if i >= 3 {
            "ghost.conf".to_string()
        } else {
            format!("file{i}.conf")
        }
    })
}

/// One arbitrary edit covering every `TreeEdit` variant.
fn arb_edit() -> BoxedStrategy<TreeEdit> {
    prop_oneof![
        (arb_file(), arb_path()).prop_map(|(file, path)| TreeEdit::Delete { file, path }),
        (arb_file(), arb_path()).prop_map(|(file, path)| TreeEdit::DuplicateAfter { file, path }),
        (arb_file(), arb_path(), arb_path(), 0usize..4).prop_map(
            |(file, from, to_parent, index)| TreeEdit::Move {
                file,
                from,
                to_parent,
                index
            }
        ),
        (arb_file(), arb_path(), prop::option::of("[a-z0-9]{0,6}"))
            .prop_map(|(file, path, text)| TreeEdit::SetText { file, path, text }),
        (arb_file(), arb_path(), "[a-z]{1,4}", "[a-z0-9]{0,4}").prop_map(
            |(file, path, key, value)| TreeEdit::SetAttr {
                file,
                path,
                key,
                value
            }
        ),
        (arb_file(), arb_path(), 0usize..4, arb_node(1)).prop_map(|(file, parent, index, node)| {
            TreeEdit::Insert {
                file,
                parent,
                index,
                node,
            }
        }),
        (arb_file(), arb_path(), 0usize..3, 0usize..3)
            .prop_map(|(file, parent, i, j)| { TreeEdit::SwapChildren { file, parent, i, j } }),
        (arb_file(), arb_node(1)).prop_map(|(file, node)| TreeEdit::ReplaceTree {
            file,
            tree: ConfTree::new(node)
        }),
    ]
    .boxed()
}

fn scenario(edits: Vec<TreeEdit>) -> FaultScenario {
    FaultScenario {
        id: "prop".into(),
        description: "property scenario".into(),
        class: ErrorClass::Typo(TypoKind::Omission),
        edits,
    }
}

/// Reconstructs a node into entirely fresh allocations — no `Arc`
/// sharing with the source. A structural comparison against such a
/// snapshot detects in-place mutation of shared nodes, which the
/// (cheap, sharing) `clone()` cannot: a mutation leaking through a
/// shared `Arc` would change the clone identically.
fn deep_snapshot_node(node: &Node) -> Node {
    let mut out = Node::new(node.kind());
    for (key, value) in node.attrs() {
        out.set_attr(key, value);
    }
    out.set_text(node.text().map(str::to_string));
    for child in node.children() {
        out.push_child(deep_snapshot_node(child));
    }
    out
}

fn deep_snapshot(set: &ConfigSet) -> ConfigSet {
    set.iter()
        .map(|(name, tree)| {
            (
                name.to_string(),
                ConfTree::new(deep_snapshot_node(tree.root())),
            )
        })
        .collect()
}

/// The reference semantics: deep-clone *every* file up front (fresh
/// allocations, no sharing), then apply each edit through the public
/// `ConfTree` editing API — exactly what the pre-COW driver did.
fn deep_clone_apply(sc: &FaultScenario, set: &ConfigSet) -> Result<ConfigSet, String> {
    let mut out: ConfigSet = set
        .iter()
        .map(|(name, tree)| (name.to_string(), tree.clone()))
        .collect();
    for edit in &sc.edits {
        let file = edit.file().to_string();
        let Some(tree) = out.get_mut(&file) else {
            return Err(format!("unknown file {file:?}"));
        };
        let applied = match edit {
            TreeEdit::Delete { path, .. } => tree.delete(path).map(|_| ()),
            TreeEdit::DuplicateAfter { path, .. } => tree.duplicate(path).map(|_| ()),
            TreeEdit::Move {
                from,
                to_parent,
                index,
                ..
            } => tree.move_node(from, to_parent, *index).map(|_| ()),
            TreeEdit::SetText { path, text, .. } => {
                tree.set_text_at(path, text.clone()).map(|_| ())
            }
            TreeEdit::SetAttr {
                path, key, value, ..
            } => tree.set_attr_at(path, key, value).map(|_| ()),
            TreeEdit::Insert {
                parent,
                index,
                node,
                ..
            } => tree.insert(parent, *index, node.clone()).map(|_| ()),
            TreeEdit::SwapChildren { parent, i, j, .. } => tree.swap_children(parent, *i, *j),
            TreeEdit::ReplaceTree { tree: new_tree, .. } => {
                *tree = new_tree.clone();
                Ok(())
            }
        };
        if let Err(e) = applied {
            return Err(e.to_string());
        }
    }
    Ok(out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cow_apply_equals_deep_clone_apply(
        set in arb_set(),
        edits in prop::collection::vec(arb_edit(), 0..5),
    ) {
        let pristine = set.clone();
        let sc = scenario(edits);

        let cow = sc.apply(&set);
        let reference = deep_clone_apply(&sc, &set);

        match (&cow, &reference) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "COW result diverges from deep-clone result"),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(
                false,
                "result kinds diverge: cow={:?} reference={:?}",
                a.is_ok(),
                b.is_ok()
            ),
        }

        // Applying a scenario never disturbs the original set.
        prop_assert_eq!(&set, &pristine);
    }

    #[test]
    fn apply_never_mutates_arc_shared_nodes(
        set in arb_set(),
        edits in prop::collection::vec(arb_edit(), 0..5),
    ) {
        // `Node` shares subtrees by `Arc`; an `apply` that mutated a
        // shared node in place (instead of copy-on-writing the path)
        // would corrupt the baseline — and every other set sharing
        // it — invisibly to the shallow-clone comparison above. The
        // deep snapshot has no sharing with `set`, so any leak shows
        // up as a structural difference.
        let snapshot = deep_snapshot(&set);
        let _ = scenario(edits).apply(&set);
        prop_assert_eq!(&set, &snapshot, "apply mutated the original through shared nodes");
    }

    #[test]
    fn leaf_edit_copies_only_the_root_to_edit_path(
        set in arb_set(),
        raw_path in arb_path(),
        text in prop::option::of("[a-z0-9]{0,6}"),
    ) {
        // A SetText edit at a resolvable path must detach exactly the
        // nodes on the root-to-edit path; every sibling hanging off
        // that path stays the *same allocation* as the original's
        // (observable via Node::ptr_eq). This is the sharing that
        // makes apply cost proportional to depth, and it must never
        // let a mutation travel into a shared sibling.
        let file = "file0.conf".to_string();
        let tree = set.get(&file).expect("file0 always exists");
        if tree.node_at(&raw_path).is_err() {
            // Unresolvable path: nothing to observe for this case.
            continue;
        }

        let sc = scenario(vec![TreeEdit::SetText {
            file: file.clone(),
            path: raw_path.clone(),
            text,
        }]);
        let out = sc.apply(&set).expect("resolvable SetText applies");
        let mutated = out.get(&file).expect("file survives");

        let mut original_cursor = tree.root();
        let mut mutated_cursor = mutated.root();
        for &step in raw_path.indices() {
            // The path node itself was copy-on-written...
            prop_assert!(
                !Node::ptr_eq(original_cursor, mutated_cursor),
                "a node on the edit path kept its allocation"
            );
            // ...while every sibling of the next step kept its
            // allocation.
            for (i, (a, b)) in original_cursor
                .children()
                .iter()
                .zip(mutated_cursor.children())
                .enumerate()
            {
                if i != step {
                    prop_assert!(
                        Node::ptr_eq(a, b),
                        "sibling {} off the edit path was copied (or mutated)",
                        i
                    );
                }
            }
            original_cursor = &original_cursor.children()[step];
            mutated_cursor = &mutated_cursor.children()[step];
        }
        prop_assert!(!Node::ptr_eq(original_cursor, mutated_cursor));
        // The edited node's own children are still shared: only the
        // path is copied, not the subtree below the edit.
        for (a, b) in original_cursor
            .children()
            .iter()
            .zip(mutated_cursor.children())
        {
            prop_assert!(Node::ptr_eq(a, b), "child below the edit point was copied");
        }
    }

    #[test]
    fn cow_apply_shares_untouched_files(
        set in arb_set(),
        edits in prop::collection::vec(arb_edit(), 0..5),
    ) {
        let sc = scenario(edits);
        if let Ok(out) = sc.apply(&set) {
            let edited: Vec<&str> = sc.edits.iter().map(TreeEdit::file).collect();
            for name in set.names() {
                if edited.contains(&name) {
                    // Every edit succeeded, so each edited file was
                    // copy-on-written into its own allocation.
                    prop_assert!(
                        !out.shares_tree(&set, name),
                        "edited file {} still shares its tree",
                        name
                    );
                } else {
                    prop_assert!(
                        out.shares_tree(&set, name),
                        "untouched file {} lost its sharing",
                        name
                    );
                }
            }
        }
    }
}
