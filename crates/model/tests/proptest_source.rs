//! Property-based equivalence of the streaming fault sources.
//!
//! Every [`FaultSource`] combinator must enumerate **exactly** the
//! faults its eager counterpart produces, in the same order, no
//! matter how a consumer chunks its pulls — that equivalence is what
//! lets the campaign executor swap eager fault `Vec`s for live
//! sources without changing a single profile byte.

use conferr_model::{
    product_eager, sample_keeps, EagerSource, ErrorClass, FaultScenario, FaultSource,
    FaultSourceExt, GeneratedFault, TypoKind,
};
use conferr_tree::TreePath;
use proptest::prelude::*;

/// An arbitrary fault: mostly scenarios (with a one-edit list so
/// products concatenate something), some inexpressible.
fn arb_fault(tag: &'static str) -> impl Strategy<Value = GeneratedFault> {
    (0u32..1000, 0u32..100).prop_map(move |(n, roll)| {
        let inexpressible = roll < 15;
        if inexpressible {
            GeneratedFault::Inexpressible {
                id: format!("{tag}-na{n}"),
                description: format!("inexpressible {n}"),
                class: ErrorClass::Typo(TypoKind::Omission),
                reason: "cannot serialize".to_string(),
            }
        } else {
            GeneratedFault::Scenario(FaultScenario {
                id: format!("{tag}-f{n}"),
                description: format!("fault {n}"),
                class: ErrorClass::Typo(TypoKind::Substitution),
                edits: vec![conferr_model::TreeEdit::Delete {
                    file: format!("{tag}.conf"),
                    path: TreePath::from(vec![n as usize % 5]),
                }],
            })
        }
    })
}

fn arb_faults(tag: &'static str, max: usize) -> impl Strategy<Value = Vec<GeneratedFault>> {
    prop::collection::vec(arb_fault(tag), 0..max)
}

/// Pull sizes a consumer might use, cycled over the whole drain.
fn arb_pulls() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..9, 1..5)
}

/// Drains `source` using the cycled pull sizes, also checking the
/// size-hint invariant (`lower ≤ remaining ≤ upper`) at every step.
fn drain_with(mut source: impl FaultSource, pulls: &[usize]) -> Vec<GeneratedFault> {
    let mut out = Vec::new();
    let mut i = 0;
    loop {
        let before = out.len();
        let max = pulls[i % pulls.len()];
        i += 1;
        let n = source.next_chunk(max, &mut out).expect("eager-backed");
        assert_eq!(n, out.len() - before, "return value counts appended faults");
        assert!(n <= max, "never more than max");
        if n == 0 {
            assert_eq!(
                source.next_chunk(max, &mut out).expect("eager-backed"),
                0,
                "exhaustion is permanent"
            );
            return out;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chain_equals_concatenation(
        a in arb_faults("a", 20),
        b in arb_faults("b", 20),
        pulls in arb_pulls(),
    ) {
        let mut eager = a.clone();
        eager.extend(b.iter().cloned());
        let streamed = drain_with(
            EagerSource::new(a).chain(EagerSource::new(b)),
            &pulls,
        );
        prop_assert_eq!(streamed, eager);
    }

    #[test]
    fn take_equals_truncation(
        faults in arb_faults("a", 30),
        n in 0usize..40,
        pulls in arb_pulls(),
    ) {
        let mut eager = faults.clone();
        eager.truncate(n);
        let streamed = drain_with(EagerSource::new(faults).take(n), &pulls);
        prop_assert_eq!(streamed, eager);
    }

    #[test]
    fn sample_equals_eager_index_filter(
        faults in arb_faults("a", 40),
        seed in any::<u64>(),
        rate_pct in 0u32..=100,
        pulls in arb_pulls(),
    ) {
        let rate = f64::from(rate_pct) / 100.0;
        let eager: Vec<GeneratedFault> = faults
            .iter()
            .enumerate()
            .filter(|(i, _)| sample_keeps(seed, *i as u64, rate))
            .map(|(_, f)| f.clone())
            .collect();
        let streamed = drain_with(EagerSource::new(faults).sample(seed, rate), &pulls);
        prop_assert_eq!(streamed, eager);
    }

    #[test]
    fn product_equals_eager_cross_product(
        a in arb_faults("a", 12),
        b in arb_faults("b", 12),
        pulls in arb_pulls(),
    ) {
        let eager = product_eager(&a, &b);
        let streamed = drain_with(
            EagerSource::new(a).product(EagerSource::new(b)),
            &pulls,
        );
        prop_assert_eq!(streamed, eager);
    }

    /// The combinators compose: a chained, sampled, truncated product
    /// still enumerates exactly what the eager pipeline computes.
    #[test]
    fn nested_combinators_match_eager_pipeline(
        a in arb_faults("a", 10),
        b in arb_faults("b", 10),
        c in arb_faults("c", 15),
        seed in any::<u64>(),
        rate_pct in 0u32..=100,
        n in 0usize..80,
        pulls in arb_pulls(),
    ) {
        let rate = f64::from(rate_pct) / 100.0;
        let eager: Vec<GeneratedFault> = {
            let mut all = product_eager(&a, &b);
            all.extend(c.iter().cloned());
            all.iter()
                .enumerate()
                .filter(|(i, _)| sample_keeps(seed, *i as u64, rate))
                .map(|(_, f)| f.clone())
                .take(n)
                .collect()
        };
        let streamed = drain_with(
            EagerSource::new(a)
                .product(EagerSource::new(b))
                .chain(EagerSource::new(c))
                .sample(seed, rate)
                .take(n),
            &pulls,
        );
        prop_assert_eq!(streamed, eager);
    }

    /// Chunk-size independence stated directly: any two pull patterns
    /// enumerate the same faults.
    #[test]
    fn enumeration_is_pull_pattern_independent(
        a in arb_faults("a", 12),
        b in arb_faults("b", 12),
        seed in any::<u64>(),
        pulls1 in arb_pulls(),
        pulls2 in arb_pulls(),
    ) {
        let build = || {
            EagerSource::new(a.clone())
                .product(EagerSource::new(b.clone()))
                .sample(seed, 0.5)
        };
        prop_assert_eq!(drain_with(build(), &pulls1), drain_with(build(), &pulls2));
    }
}
