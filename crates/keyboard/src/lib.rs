//! Geometric keyboard model for realistic typo generation.
//!
//! # Architecture
//!
//! This crate is part of the *error-model layer* (paper §4.1): in the
//! workspace DAG
//! `tree → {keyboard, formats, model} → {plugins, sut} → core → bench`
//! it supplies the physical-plausibility data the typo plugin in
//! `conferr-plugins` consumes; it depends on nothing but the standard
//! library.
//!
//! ConfErr's spelling-mistake plugin (paper §4.1) mimics real typos by
//! consulting "an encoding of a true keyboard": for insertions and
//! substitutions it locates the key (and modifiers) that produces the
//! intended character, then enumerates the characters produced by
//! *nearby* keys pressed **with the same modifiers** — the model of an
//! operator's finger landing one key off.
//!
//! This crate provides that encoding:
//!
//! * [`Keyboard`] — a physical layout: keys at staggered row/column
//!   coordinates, each with an unmodified and a shifted character;
//! * [`Keystroke`] — a key plus [`Modifiers`], the physical action that
//!   produces a character;
//! * [`Keyboard::nearby_chars`] — the paper's substitution/insertion
//!   candidate set.
//!
//! Four layouts ship with the crate: [`Keyboard::qwerty_us`],
//! [`Keyboard::qwerty_uk`], [`Keyboard::azerty_fr`] and
//! [`Keyboard::dvorak_us`]; custom layouts can be built with
//! [`Keyboard::from_rows`].
//!
//! # Examples
//!
//! ```
//! use conferr_keyboard::Keyboard;
//!
//! let kb = Keyboard::qwerty_us();
//! // 'g' sits between 'f' and 'h' on the home row.
//! let near = kb.nearby_chars('g');
//! assert!(near.contains(&'f') && near.contains(&'h'));
//! // Shifted characters stay on the shifted layer: neighbours of 'G'
//! // are the shifted neighbours of the same key.
//! assert!(kb.nearby_chars('G').contains(&'F'));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use std::fmt;

use serde::{Deserialize, Serialize};

/// Modifier state of a keystroke. Only Shift matters for the character
/// sets configuration files use; the struct form leaves room for
/// AltGr-style extensions without breaking the API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Modifiers {
    /// Whether Shift is held.
    pub shift: bool,
}

impl Modifiers {
    /// No modifiers held.
    pub const NONE: Modifiers = Modifiers { shift: false };
    /// Shift held.
    pub const SHIFT: Modifiers = Modifiers { shift: true };
}

impl fmt::Display for Modifiers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.shift {
            f.write_str("shift")
        } else {
            f.write_str("none")
        }
    }
}

/// One physical key: its position on the board and the characters it
/// produces on each modifier layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Key {
    /// Row index, 0 = number row, increasing downwards.
    pub row: u8,
    /// Horizontal centre of the key in key-widths, stagger included.
    pub col: f32,
    /// Character produced with no modifiers.
    pub unmodified: char,
    /// Character produced with Shift, if any.
    pub shifted: Option<char>,
}

/// A physical action: pressing one key with a modifier state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Keystroke {
    /// Index into [`Keyboard::keys`].
    pub key: usize,
    /// Modifier state.
    pub modifiers: Modifiers,
}

/// A keyboard layout with geometric key positions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Keyboard {
    name: String,
    keys: Vec<Key>,
}

/// Maximum key-centre distance (in key widths) at which two keys count
/// as neighbours. 1.0 captures horizontal neighbours; the stagger
/// offsets put diagonal neighbours at roughly 1.03–1.25.
const NEIGHBOR_RADIUS: f32 = 1.3;

/// Standard horizontal stagger offsets per row of an ANSI board.
const ROW_STAGGER: [f32; 5] = [0.0, 1.5, 1.75, 2.25, 4.0];

impl Keyboard {
    /// Builds a layout from rows of `(unmodified, shifted)` pairs.
    /// Row `i` receives the standard ANSI stagger offset; keys within
    /// a row are spaced one key-width apart.
    pub fn from_rows(name: impl Into<String>, rows: &[&[(char, Option<char>)]]) -> Self {
        let mut keys = Vec::new();
        for (r, row) in rows.iter().enumerate() {
            let offset = ROW_STAGGER.get(r).copied().unwrap_or(0.0);
            for (c, &(unmodified, shifted)) in row.iter().enumerate() {
                keys.push(Key {
                    row: r as u8,
                    col: offset + c as f32,
                    unmodified,
                    shifted,
                });
            }
        }
        Keyboard {
            name: name.into(),
            keys,
        }
    }

    /// The layout name, e.g. `"qwerty-us"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All keys of the layout.
    pub fn keys(&self) -> &[Key] {
        &self.keys
    }

    /// The standard US QWERTY (ANSI) layout.
    pub fn qwerty_us() -> Self {
        Keyboard::from_rows(
            "qwerty-us",
            &[
                &[
                    ('`', Some('~')),
                    ('1', Some('!')),
                    ('2', Some('@')),
                    ('3', Some('#')),
                    ('4', Some('$')),
                    ('5', Some('%')),
                    ('6', Some('^')),
                    ('7', Some('&')),
                    ('8', Some('*')),
                    ('9', Some('(')),
                    ('0', Some(')')),
                    ('-', Some('_')),
                    ('=', Some('+')),
                ],
                &[
                    ('q', Some('Q')),
                    ('w', Some('W')),
                    ('e', Some('E')),
                    ('r', Some('R')),
                    ('t', Some('T')),
                    ('y', Some('Y')),
                    ('u', Some('U')),
                    ('i', Some('I')),
                    ('o', Some('O')),
                    ('p', Some('P')),
                    ('[', Some('{')),
                    (']', Some('}')),
                    ('\\', Some('|')),
                ],
                &[
                    ('a', Some('A')),
                    ('s', Some('S')),
                    ('d', Some('D')),
                    ('f', Some('F')),
                    ('g', Some('G')),
                    ('h', Some('H')),
                    ('j', Some('J')),
                    ('k', Some('K')),
                    ('l', Some('L')),
                    (';', Some(':')),
                    ('\'', Some('"')),
                ],
                &[
                    ('z', Some('Z')),
                    ('x', Some('X')),
                    ('c', Some('C')),
                    ('v', Some('V')),
                    ('b', Some('B')),
                    ('n', Some('N')),
                    ('m', Some('M')),
                    (',', Some('<')),
                    ('.', Some('>')),
                    ('/', Some('?')),
                ],
                &[(' ', None)],
            ],
        )
    }

    /// The UK (ISO) QWERTY layout — differs from US on the number row
    /// symbols and punctuation keys.
    pub fn qwerty_uk() -> Self {
        Keyboard::from_rows(
            "qwerty-uk",
            &[
                &[
                    ('`', Some('¬')),
                    ('1', Some('!')),
                    ('2', Some('"')),
                    ('3', Some('£')),
                    ('4', Some('$')),
                    ('5', Some('%')),
                    ('6', Some('^')),
                    ('7', Some('&')),
                    ('8', Some('*')),
                    ('9', Some('(')),
                    ('0', Some(')')),
                    ('-', Some('_')),
                    ('=', Some('+')),
                ],
                &[
                    ('q', Some('Q')),
                    ('w', Some('W')),
                    ('e', Some('E')),
                    ('r', Some('R')),
                    ('t', Some('T')),
                    ('y', Some('Y')),
                    ('u', Some('U')),
                    ('i', Some('I')),
                    ('o', Some('O')),
                    ('p', Some('P')),
                    ('[', Some('{')),
                    (']', Some('}')),
                ],
                &[
                    ('a', Some('A')),
                    ('s', Some('S')),
                    ('d', Some('D')),
                    ('f', Some('F')),
                    ('g', Some('G')),
                    ('h', Some('H')),
                    ('j', Some('J')),
                    ('k', Some('K')),
                    ('l', Some('L')),
                    (';', Some(':')),
                    ('\'', Some('@')),
                    ('#', Some('~')),
                ],
                &[
                    ('\\', Some('|')),
                    ('z', Some('Z')),
                    ('x', Some('X')),
                    ('c', Some('C')),
                    ('v', Some('V')),
                    ('b', Some('B')),
                    ('n', Some('N')),
                    ('m', Some('M')),
                    (',', Some('<')),
                    ('.', Some('>')),
                    ('/', Some('?')),
                ],
                &[(' ', None)],
            ],
        )
    }

    /// The French AZERTY layout. Digits live on the *shifted* layer,
    /// which makes numeric configuration values especially vulnerable
    /// to case-alteration slips — a nice stress case for the typo
    /// plugin.
    pub fn azerty_fr() -> Self {
        Keyboard::from_rows(
            "azerty-fr",
            &[
                &[
                    ('²', None),
                    ('&', Some('1')),
                    ('é', Some('2')),
                    ('"', Some('3')),
                    ('\'', Some('4')),
                    ('(', Some('5')),
                    ('-', Some('6')),
                    ('è', Some('7')),
                    ('_', Some('8')),
                    ('ç', Some('9')),
                    ('à', Some('0')),
                    (')', Some('°')),
                    ('=', Some('+')),
                ],
                &[
                    ('a', Some('A')),
                    ('z', Some('Z')),
                    ('e', Some('E')),
                    ('r', Some('R')),
                    ('t', Some('T')),
                    ('y', Some('Y')),
                    ('u', Some('U')),
                    ('i', Some('I')),
                    ('o', Some('O')),
                    ('p', Some('P')),
                    ('^', Some('¨')),
                    ('$', Some('£')),
                ],
                &[
                    ('q', Some('Q')),
                    ('s', Some('S')),
                    ('d', Some('D')),
                    ('f', Some('F')),
                    ('g', Some('G')),
                    ('h', Some('H')),
                    ('j', Some('J')),
                    ('k', Some('K')),
                    ('l', Some('L')),
                    ('m', Some('M')),
                    ('ù', Some('%')),
                    ('*', Some('µ')),
                ],
                &[
                    ('<', Some('>')),
                    ('w', Some('W')),
                    ('x', Some('X')),
                    ('c', Some('C')),
                    ('v', Some('V')),
                    ('b', Some('B')),
                    ('n', Some('N')),
                    (',', Some('?')),
                    (';', Some('.')),
                    (':', Some('/')),
                    ('!', Some('§')),
                ],
                &[(' ', None)],
            ],
        )
    }

    /// The US Dvorak layout.
    pub fn dvorak_us() -> Self {
        Keyboard::from_rows(
            "dvorak-us",
            &[
                &[
                    ('`', Some('~')),
                    ('1', Some('!')),
                    ('2', Some('@')),
                    ('3', Some('#')),
                    ('4', Some('$')),
                    ('5', Some('%')),
                    ('6', Some('^')),
                    ('7', Some('&')),
                    ('8', Some('*')),
                    ('9', Some('(')),
                    ('0', Some(')')),
                    ('[', Some('{')),
                    (']', Some('}')),
                ],
                &[
                    ('\'', Some('"')),
                    (',', Some('<')),
                    ('.', Some('>')),
                    ('p', Some('P')),
                    ('y', Some('Y')),
                    ('f', Some('F')),
                    ('g', Some('G')),
                    ('c', Some('C')),
                    ('r', Some('R')),
                    ('l', Some('L')),
                    ('/', Some('?')),
                    ('=', Some('+')),
                    ('\\', Some('|')),
                ],
                &[
                    ('a', Some('A')),
                    ('o', Some('O')),
                    ('e', Some('E')),
                    ('u', Some('U')),
                    ('i', Some('I')),
                    ('d', Some('D')),
                    ('h', Some('H')),
                    ('t', Some('T')),
                    ('n', Some('N')),
                    ('s', Some('S')),
                    ('-', Some('_')),
                ],
                &[
                    (';', Some(':')),
                    ('q', Some('Q')),
                    ('j', Some('J')),
                    ('k', Some('K')),
                    ('x', Some('X')),
                    ('b', Some('B')),
                    ('m', Some('M')),
                    ('w', Some('W')),
                    ('v', Some('V')),
                    ('z', Some('Z')),
                ],
                &[(' ', None)],
            ],
        )
    }

    /// The keystroke (key + modifiers) that produces `c`, or `None` if
    /// the layout cannot type it.
    pub fn keystroke_for(&self, c: char) -> Option<Keystroke> {
        for (i, key) in self.keys.iter().enumerate() {
            if key.unmodified == c {
                return Some(Keystroke {
                    key: i,
                    modifiers: Modifiers::NONE,
                });
            }
        }
        for (i, key) in self.keys.iter().enumerate() {
            if key.shifted == Some(c) {
                return Some(Keystroke {
                    key: i,
                    modifiers: Modifiers::SHIFT,
                });
            }
        }
        None
    }

    /// The character a keystroke produces, or `None` when the key has
    /// no character on the requested layer or the index is invalid.
    pub fn char_for(&self, stroke: Keystroke) -> Option<char> {
        let key = self.keys.get(stroke.key)?;
        if stroke.modifiers.shift {
            key.shifted
        } else {
            Some(key.unmodified)
        }
    }

    /// `true` iff the layout can produce `c`.
    pub fn supports(&self, c: char) -> bool {
        self.keystroke_for(c).is_some()
    }

    /// Indices of keys whose centres lie within the neighbour radius
    /// of `key` (excluding `key` itself).
    pub fn neighbors(&self, key: usize) -> Vec<usize> {
        let Some(center) = self.keys.get(key) else {
            return Vec::new();
        };
        self.keys
            .iter()
            .enumerate()
            .filter(|&(i, k)| i != key && key_distance(center, k) <= NEIGHBOR_RADIUS)
            .map(|(i, _)| i)
            .collect()
    }

    /// The paper's substitution/insertion candidate set for `c`: the
    /// characters produced by pressing the keys adjacent to `c`'s key
    /// **with the same modifier state**. Returns an empty vector when
    /// the layout cannot type `c`.
    ///
    /// Results are deduplicated and returned in layout order, so the
    /// set is deterministic for a given layout.
    pub fn nearby_chars(&self, c: char) -> Vec<char> {
        let Some(stroke) = self.keystroke_for(c) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for n in self.neighbors(stroke.key) {
            if let Some(nc) = self.char_for(Keystroke {
                key: n,
                modifiers: stroke.modifiers,
            }) {
                if nc != c && !out.contains(&nc) {
                    out.push(nc);
                }
            }
        }
        out
    }

    /// Flips the case of `c` if the layout maps lowercase and
    /// uppercase forms to the same key's two layers (the Shift
    /// miscoordination model behind case-alteration typos). Returns
    /// `None` for characters without a distinct cased counterpart.
    pub fn case_flip(&self, c: char) -> Option<char> {
        let stroke = self.keystroke_for(c)?;
        let flipped = Keystroke {
            key: stroke.key,
            modifiers: Modifiers {
                shift: !stroke.modifiers.shift,
            },
        };
        let out = self.char_for(flipped)?;
        (out != c).then_some(out)
    }
}

fn key_distance(a: &Key, b: &Key) -> f32 {
    let dx = a.col - b.col;
    let dy = (a.row as f32) - (b.row as f32);
    (dx * dx + dy * dy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qwerty_home_row_neighbors() {
        let kb = Keyboard::qwerty_us();
        let near = kb.nearby_chars('g');
        for expected in ['f', 'h', 't', 'y', 'v', 'b'] {
            assert!(near.contains(&expected), "expected {expected} in {near:?}");
        }
        assert!(!near.contains(&'g'));
        assert!(!near.contains(&'q'));
    }

    #[test]
    fn shifted_neighbors_stay_on_shift_layer() {
        let kb = Keyboard::qwerty_us();
        let near = kb.nearby_chars('G');
        assert!(near.contains(&'F') && near.contains(&'H'));
        assert!(!near.contains(&'f'));
    }

    #[test]
    fn digits_neighbor_digits_and_symbols() {
        let kb = Keyboard::qwerty_us();
        let near = kb.nearby_chars('5');
        assert!(near.contains(&'4') && near.contains(&'6'));
        assert!(near.contains(&'r') || near.contains(&'t'));
    }

    #[test]
    fn keystroke_round_trip_for_every_char() {
        for kb in [
            Keyboard::qwerty_us(),
            Keyboard::qwerty_uk(),
            Keyboard::azerty_fr(),
            Keyboard::dvorak_us(),
        ] {
            for key in kb.keys() {
                for c in std::iter::once(key.unmodified).chain(key.shifted) {
                    let stroke = kb
                        .keystroke_for(c)
                        .unwrap_or_else(|| panic!("{} cannot type {c:?}", kb.name()));
                    assert_eq!(kb.char_for(stroke), Some(c), "layout {}", kb.name());
                }
            }
        }
    }

    #[test]
    fn case_flip_letters_and_non_letters() {
        let kb = Keyboard::qwerty_us();
        assert_eq!(kb.case_flip('a'), Some('A'));
        assert_eq!(kb.case_flip('A'), Some('a'));
        assert_eq!(kb.case_flip('1'), Some('!'));
        assert_eq!(kb.case_flip(' '), None);
    }

    #[test]
    fn azerty_digits_are_shifted() {
        let kb = Keyboard::azerty_fr();
        let s = kb.keystroke_for('1').unwrap();
        assert!(s.modifiers.shift);
        assert_eq!(
            kb.char_for(Keystroke {
                key: s.key,
                modifiers: Modifiers::NONE
            }),
            Some('&')
        );
    }

    #[test]
    fn dvorak_differs_from_qwerty() {
        let q = Keyboard::qwerty_us();
        let d = Keyboard::dvorak_us();
        assert_ne!(q.nearby_chars('e'), d.nearby_chars('e'));
    }

    #[test]
    fn unsupported_chars_yield_empty_sets() {
        let kb = Keyboard::qwerty_us();
        assert!(kb.nearby_chars('é').is_empty());
        assert!(!kb.supports('é'));
        assert!(kb.case_flip('é').is_none());
    }

    #[test]
    fn ascii_printable_coverage_qwerty() {
        let kb = Keyboard::qwerty_us();
        for b in 0x20u8..0x7f {
            let c = b as char;
            assert!(kb.supports(c), "qwerty-us cannot type {c:?}");
        }
    }

    #[test]
    fn neighbor_counts_are_bounded() {
        for kb in [Keyboard::qwerty_us(), Keyboard::dvorak_us()] {
            for i in 0..kb.keys().len() {
                let n = kb.neighbors(i).len();
                assert!(n <= 8, "key {i} of {} has {n} neighbours", kb.name());
            }
        }
    }

    #[test]
    fn neighbors_of_invalid_index_is_empty() {
        assert!(Keyboard::qwerty_us().neighbors(10_000).is_empty());
    }
}
