//! Property tests for the keyboard model: adjacency symmetry,
//! determinism, and layer consistency of the nearby-character sets.

use conferr_keyboard::{Keyboard, Keystroke, Modifiers};
use proptest::prelude::*;

fn layouts() -> Vec<Keyboard> {
    vec![
        Keyboard::qwerty_us(),
        Keyboard::qwerty_uk(),
        Keyboard::azerty_fr(),
        Keyboard::dvorak_us(),
    ]
}

proptest! {
    #[test]
    fn adjacency_is_symmetric(layout_idx in 0usize..4, key in 0usize..60) {
        let kb = &layouts()[layout_idx];
        if key < kb.keys().len() {
            for n in kb.neighbors(key) {
                prop_assert!(
                    kb.neighbors(n).contains(&key),
                    "{}: key {key} neighbours {n} but not vice versa",
                    kb.name()
                );
            }
        }
    }

    #[test]
    fn nearby_chars_is_deterministic(c in proptest::char::range('\u{20}', '\u{7e}')) {
        let kb = Keyboard::qwerty_us();
        prop_assert_eq!(kb.nearby_chars(c), kb.nearby_chars(c));
    }

    #[test]
    fn nearby_chars_never_contains_input(layout_idx in 0usize..4, c in proptest::char::range('\u{20}', '\u{7e}')) {
        let kb = &layouts()[layout_idx];
        prop_assert!(!kb.nearby_chars(c).contains(&c));
    }

    #[test]
    fn nearby_chars_share_modifier_layer(c in proptest::char::range('a', 'z')) {
        // Lowercase letters are unshifted on every shipped layout, so
        // all of their neighbours must be unshifted characters too.
        for kb in layouts() {
            let Some(stroke) = kb.keystroke_for(c) else { continue };
            prop_assert!(!stroke.modifiers.shift);
            for n in kb.nearby_chars(c) {
                let ns = kb.keystroke_for(n).unwrap();
                prop_assert!(
                    !ns.modifiers.shift,
                    "{}: neighbour {n:?} of {c:?} requires shift",
                    kb.name()
                );
            }
        }
    }

    #[test]
    fn case_flip_is_involutive(c in proptest::char::range('a', 'z')) {
        let kb = Keyboard::qwerty_us();
        if let Some(flipped) = kb.case_flip(c) {
            prop_assert_eq!(kb.case_flip(flipped), Some(c));
        }
    }

    #[test]
    fn char_for_handles_all_strokes(key in 0usize..80, shift in any::<bool>()) {
        let kb = Keyboard::qwerty_us();
        let stroke = Keystroke { key, modifiers: Modifiers { shift } };
        // Must never panic; in-range unshifted strokes always produce a char.
        let out = kb.char_for(stroke);
        if key < kb.keys().len() && !shift {
            prop_assert!(out.is_some());
        }
        if key >= kb.keys().len() {
            prop_assert!(out.is_none());
        }
    }
}
