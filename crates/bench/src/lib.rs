//! Benchmark harness regenerating every table and figure of the
//! ConfErr paper's evaluation (§5).
//!
//! # Architecture
//!
//! This crate is the *evaluation layer*, the sink of the workspace DAG
//! `tree → {keyboard, formats, model} → {plugins, sut} → core → bench`:
//! it composes generators, simulators and the campaign drivers into
//! the paper's experiments and the repo's perf-trajectory bench
//! (`bench_campaign` → `BENCH_campaign.json`).
//!
//! | Artifact | Function | Binary |
//! |----------|----------|--------|
//! | Table 1 — resilience to typos | [`table1`] | `cargo run -p conferr-bench --bin table1` |
//! | Table 2 — resilience to structural errors | [`table2`] | `cargo run -p conferr-bench --bin table2` |
//! | Table 3 — resilience to semantic errors | [`table3`] | `cargo run -p conferr-bench --bin table3` |
//! | Figure 3 — MySQL vs Postgres value-typo resilience | [`figure3`] | `cargo run -p conferr-bench --bin fig3` |
//! | §5.2 timing claims | Criterion benches | `cargo bench -p conferr-bench` |
//!
//! Absolute counts differ from the paper (our default configurations
//! are faithful in structure but not byte-identical to the 2008
//! distribution tarballs, and our per-injection cost is microseconds
//! rather than seconds); the *shape* — who detects what, where the
//! bands fall, which faults are inexpressible — is the reproduction
//! target. `EXPERIMENTS.md` records paper-vs-measured side by side.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use std::sync::LazyLock;

use conferr::{
    parallel_value_typo_resilience, sut_factory, value_typo_resilience, Campaign, CampaignBatch,
    CampaignError, CampaignExecutor, ComparisonReport, ExecutorCampaign, InjectionResult,
    ProfileSummary, ResilienceProfile, SutFactory,
};
use conferr_keyboard::Keyboard;
use conferr_model::{
    ConfigSet, ErrorClass, ErrorGenerator, FaultScenario, GeneratedFault, StructuralKind, TreeEdit,
    TypoKind,
};
use conferr_plugins::{
    typos_of_kind, DnsFaultKind, DnsSemanticPlugin, VariationClass, VariationPlugin,
};
use conferr_sut::{
    ApacheSim, BindSim, ConfigPayload, DjbdnsSim, FileText, MySqlSim, PostgresSim, SystemUnderTest,
};
use conferr_tree::{ConfTree, Node, NodeQuery, TreePath};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Typo variants sampled per selected directive in the Table 1
/// protocol (the paper's totals imply roughly this many per
/// directive).
const TYPOS_PER_DIRECTIVE: usize = 6;

/// Directives sampled per configuration file for name typos and for
/// value typos (paper §5.2: "randomly select 10 directives and
/// introduce a typo in each one's name"; Apache's 120-injection total
/// shows the selection was per file, not per nested block).
const DIRECTIVES_PER_FILE: usize = 10;

/// The default deterministic seed used by all bench binaries. Chosen
/// (like any published run) so the §5.2 value samples include the
/// listening-port directives whose typos only functional tests catch.
pub const DEFAULT_SEED: u64 = 1912; // RFC 1912, the DNS error catalogue.

pub use conferr::default_threads;

/// Worker-thread count for the paper binaries: the `CONFERR_THREADS`
/// environment variable when set (and positive), the machine's
/// available parallelism otherwise. An environment variable rather
/// than a positional argument keeps the binaries' `[seed]` CLI stable
/// (and lets `paper_all` forward one seed to every sibling).
pub fn threads_from_env() -> usize {
    std::env::var("CONFERR_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|n| *n > 0)
        .unwrap_or_else(default_threads)
}

/// Reconstructs a configuration tree node by node, without any
/// structural sharing — the per-edited-file cost every
/// [`conferr_model::FaultScenario::apply`] paid before `Node` went
/// `Arc`-backed. The apply benches use this as the whole-tree-copy
/// reference against today's path-proportional copy.
pub fn deep_copy_tree(tree: &ConfTree) -> ConfTree {
    fn deep_copy(node: &Node) -> Node {
        let mut out = Node::new(node.kind());
        for (key, value) in node.attrs() {
            out.set_attr(key, value);
        }
        if let Some(text) = node.text() {
            out.set_text(Some(text.to_string()));
        }
        for child in node.children() {
            out.push_child(deep_copy(child));
        }
        out
    }
    ConfTree::new(deep_copy(tree.root()))
}

/// The `httpd.conf` apply-microbench fixture shared by
/// `bench_campaign` and the criterion `injection` bench: the Apache
/// baseline set and one representative §5.2 value-typo scenario
/// (a leaf edit, the common case) against `httpd.conf`. Both benches
/// must time the *same* edit or their path-copy vs whole-tree-copy
/// numbers silently drift apart.
pub fn httpd_apply_fixture() -> (ConfigSet, FaultScenario) {
    let keyboard = Keyboard::qwerty_us();
    let mut sut = ApacheSim::new();
    let campaign = Campaign::new(&mut sut).expect("apache campaign");
    let baseline = campaign.baseline().clone();
    let faults = table1_faultload(&baseline, &keyboard, DEFAULT_SEED);
    let scenario = faults
        .iter()
        .find_map(|f| match f {
            GeneratedFault::Scenario(s) if s.id.starts_with("t1-value:httpd.conf") => Some(s),
            _ => None,
        })
        .expect("httpd.conf value typo exists")
        .clone();
    (baseline, scenario)
}

/// A lazily enumerated fault space of at least `target` faults built
/// from one eager base load: the base crossed with itself twice
/// (every ordered triple, combined into one 3-edit compound
/// scenario), thinned by a seeded 90% sample, capped at `target`.
/// Memory is O(|base|) however large `target` is — this is the
/// source behind `bench_campaign`'s million-fault bounded-memory
/// smoke run. Deterministic for a fixed base (same faults, same
/// order, any chunking).
pub fn million_fault_source(
    base: Vec<GeneratedFault>,
    target: usize,
) -> impl conferr_model::FaultSource + Send {
    use conferr_model::{EagerSource, FaultSourceExt};
    EagerSource::new(base.clone())
        .product(EagerSource::new(base.clone()))
        .product(EagerSource::new(base))
        .sample(DEFAULT_SEED, 0.9)
        .take(target)
}

/// All five typo submodels applied to one token, concatenated.
pub fn all_typos(keyboard: &Keyboard, token: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for kind in [
        TypoKind::Omission,
        TypoKind::Insertion,
        TypoKind::Substitution,
        TypoKind::CaseAlteration,
        TypoKind::Transposition,
    ] {
        out.extend(typos_of_kind(keyboard, kind, token));
    }
    out
}

/// Builds the paper's §5.2 fault load: deletion of every directive,
/// plus sampled typos in directive names and values (10 directives per
/// file for each, 6 seeded variants per selected directive).
pub fn table1_faultload(set: &ConfigSet, keyboard: &Keyboard, seed: u64) -> Vec<GeneratedFault> {
    /// `//directive`, parsed once per process.
    static DIRECTIVE: LazyLock<NodeQuery> =
        LazyLock::new(|| "//directive".parse().expect("static query"));
    let query: &NodeQuery = &DIRECTIVE;
    let mut out = Vec::new();
    // (a) Deletion of entire directives.
    for (file, tree) in set.iter() {
        for (path, node) in query.select_nodes(tree) {
            out.push(GeneratedFault::Scenario(FaultScenario {
                id: format!("t1-delete:{file}:{path}"),
                description: format!("omit directive {}", node.describe()),
                class: ErrorClass::Structural(StructuralKind::DirectiveOmission),
                edits: vec![TreeEdit::Delete {
                    file: file.to_string(),
                    path,
                }],
            }));
        }
    }
    // (b)+(c) Typos in names and values of sampled directives.
    for (file_idx, (file, tree)) in set.iter().enumerate() {
        let directives: Vec<(TreePath, &Node)> = query.select_nodes(tree);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(file_idx as u64));

        let mut name_targets = directives.clone();
        name_targets.shuffle(&mut rng);
        name_targets.truncate(DIRECTIVES_PER_FILE);
        for (path, node) in name_targets {
            let Some(name) = node.attr("name") else {
                continue;
            };
            let mut variants = all_typos(keyboard, name);
            variants.shuffle(&mut rng);
            variants.truncate(TYPOS_PER_DIRECTIVE);
            for (v, (mutated, label)) in variants.into_iter().enumerate() {
                out.push(GeneratedFault::Scenario(FaultScenario {
                    id: format!("t1-name:{file}:{path}#{v}"),
                    description: format!("name typo: {label}"),
                    class: ErrorClass::Typo(TypoKind::Substitution),
                    edits: vec![TreeEdit::SetAttr {
                        file: file.to_string(),
                        path: path.clone(),
                        key: "name".to_string(),
                        value: mutated,
                    }],
                }));
            }
        }

        let mut value_targets: Vec<(TreePath, &Node)> = directives
            .into_iter()
            .filter(|(_, n)| n.text().is_some_and(|t| !t.is_empty()))
            .collect();
        value_targets.shuffle(&mut rng);
        value_targets.truncate(DIRECTIVES_PER_FILE);
        for (path, node) in value_targets {
            let value = node.text().expect("filtered above");
            let mut variants = all_typos(keyboard, value);
            variants.shuffle(&mut rng);
            variants.truncate(TYPOS_PER_DIRECTIVE);
            for (v, (mutated, label)) in variants.into_iter().enumerate() {
                out.push(GeneratedFault::Scenario(FaultScenario {
                    id: format!("t1-value:{file}:{path}#{v}"),
                    description: format!("value typo: {label}"),
                    class: ErrorClass::Typo(TypoKind::Substitution),
                    edits: vec![TreeEdit::SetText {
                        file: file.to_string(),
                        path: path.clone(),
                        text: Some(mutated),
                    }],
                }));
            }
        }
    }
    out
}

/// One Table 1 column: runs the §5.2 protocol against one system.
///
/// # Errors
///
/// Propagates campaign failures.
pub fn table1_column(
    sut: &mut dyn SystemUnderTest,
    seed: u64,
) -> Result<ResilienceProfile, CampaignError> {
    let keyboard = Keyboard::qwerty_us();
    let mut campaign = Campaign::new(sut)?;
    let faults = table1_faultload(campaign.baseline(), &keyboard, seed);
    campaign.run_faults(faults)
}

/// The full Table 1: MySQL, Postgres and Apache columns.
///
/// # Errors
///
/// Propagates campaign failures.
pub fn table1(seed: u64) -> Result<Vec<(String, ProfileSummary)>, CampaignError> {
    let mut out = Vec::new();
    let mut mysql = MySqlSim::new();
    out.push((
        "MySQL".to_string(),
        table1_column(&mut mysql, seed)?.summary(),
    ));
    let mut postgres = PostgresSim::new();
    out.push((
        "Postgres".to_string(),
        table1_column(&mut postgres, seed)?.summary(),
    ));
    let mut apache = ApacheSim::new();
    out.push((
        "Apache".to_string(),
        table1_column(&mut apache, seed)?.summary(),
    ));
    Ok(out)
}

/// One Table 1 column through the persistent executor. Byte-identical
/// to [`table1_column`] — only wall-clock time differs.
///
/// # Errors
///
/// Propagates campaign failures.
pub fn table1_column_parallel(
    factory: SutFactory,
    seed: u64,
    executor: &CampaignExecutor,
) -> Result<ResilienceProfile, CampaignError> {
    let keyboard = Keyboard::qwerty_us();
    let campaign = ExecutorCampaign::new(factory)?;
    let faults = table1_faultload(campaign.baseline(), &keyboard, seed);
    executor.run_faults(&campaign, faults)
}

/// The three `(label, factory)` pairs of the Table 1 / Table 2
/// systems, in column order.
fn table12_factories() -> [(&'static str, SutFactory); 3] {
    [
        ("MySQL", sut_factory(MySqlSim::new)),
        ("Postgres", sut_factory(PostgresSim::new)),
        ("Apache", sut_factory(ApacheSim::new)),
    ]
}

/// The full Table 1 through the executor, scheduled as **one batch
/// across all three systems**: workers drain a single fault queue, so
/// a worker done with MySQL's faults immediately steals Postgres or
/// Apache work. Identical numbers to [`table1`].
///
/// # Errors
///
/// Propagates campaign failures.
pub fn table1_parallel(
    executor: &CampaignExecutor,
    seed: u64,
) -> Result<Vec<(String, ProfileSummary)>, CampaignError> {
    let keyboard = Keyboard::qwerty_us();
    let mut batch = CampaignBatch::new();
    let mut labels = Vec::new();
    for (label, factory) in table12_factories() {
        let campaign = ExecutorCampaign::new(factory)?;
        let faults = table1_faultload(campaign.baseline(), &keyboard, seed);
        batch.push(&campaign, faults);
        labels.push(label.to_string());
    }
    let profiles = executor.run_batch(batch)?;
    Ok(labels
        .into_iter()
        .zip(profiles)
        .map(|(label, profile)| (label, profile.summary()))
        .collect())
}

/// One cell of Table 2: `Some(true)` = all variants accepted,
/// `Some(false)` = at least one rejected, `None` = not applicable.
pub type Table2Cell = Option<bool>;

/// The Table 2 matrix: for each variation class, the verdict per
/// system, plus the "% of assumptions satisfied" row.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// System names, in column order.
    pub systems: Vec<String>,
    /// `(row label, cells)` in Table 2 row order.
    pub rows: Vec<(String, Vec<Table2Cell>)>,
}

impl Table2 {
    /// The `% of assumptions satisfied` bottom row.
    pub fn satisfied_percentages(&self) -> Vec<f64> {
        (0..self.systems.len())
            .map(|col| {
                let applicable: Vec<bool> = self
                    .rows
                    .iter()
                    .filter_map(|(_, cells)| cells[col])
                    .collect();
                if applicable.is_empty() {
                    0.0
                } else {
                    applicable.iter().filter(|b| **b).count() as f64 * 100.0
                        / applicable.len() as f64
                }
            })
            .collect()
    }
}

/// Runs the §5.3 accepted-variations experiment (10 variant files per
/// class per system) and builds Table 2.
///
/// Apache's section order is reported n/a, as in the paper: the order
/// of Apache's containers has defined semantics (the first matching
/// `VirtualHost` is the default), so reordering is not a neutral
/// variation there.
///
/// # Errors
///
/// Propagates campaign failures.
pub fn table2(seed: u64) -> Result<Table2, CampaignError> {
    let systems = vec![
        "MySQL".to_string(),
        "Postgres".to_string(),
        "Apache".to_string(),
    ];
    let mut rows = Vec::new();
    for class in VariationClass::ALL {
        let mut cells = Vec::new();
        for system in &systems {
            if *system == "Apache" && class == VariationClass::SectionOrder {
                cells.push(None);
                continue;
            }
            let verdict = match system.as_str() {
                "MySQL" => {
                    let mut sut = MySqlSim::new();
                    variation_verdict(&mut sut, class, seed)?
                }
                "Postgres" => {
                    let mut sut = PostgresSim::new();
                    variation_verdict(&mut sut, class, seed)?
                }
                _ => {
                    let mut sut = ApacheSim::new();
                    variation_verdict(&mut sut, class, seed)?
                }
            };
            cells.push(verdict);
        }
        rows.push((class.label().to_string(), cells));
    }
    Ok(Table2 { systems, rows })
}

/// [`table2`] as **one executor batch**: every applicable
/// (class, system) cell becomes a batch entry — 14 small campaigns in
/// one submission, drained off a single queue — with the three
/// systems' engines shared across their five cells each. This is the
/// many-small-campaign workload the persistent pool exists for; the
/// verdicts are identical to the serial run.
///
/// # Errors
///
/// Propagates the first per-cell campaign failure.
pub fn table2_parallel(executor: &CampaignExecutor, seed: u64) -> Result<Table2, CampaignError> {
    let classes = VariationClass::ALL;
    let factories = table12_factories();
    let campaigns = factories
        .iter()
        .map(|(_, factory)| ExecutorCampaign::new(factory.clone()))
        .collect::<Result<Vec<_>, _>>()?;

    // Cells in row-major order; the Apache section-order cell is n/a
    // by construction (see `table2`), classes with no generatable
    // variants are n/a too — neither is scheduled.
    let mut rows: Vec<(String, Vec<Table2Cell>)> = classes
        .iter()
        .map(|class| (class.label().to_string(), vec![None; factories.len()]))
        .collect();
    let mut batch = CampaignBatch::new();
    let mut scheduled: Vec<(usize, usize)> = Vec::new();
    for (row, class) in classes.iter().enumerate() {
        for (col, campaign) in campaigns.iter().enumerate() {
            if factories[col].0 == "Apache" && *class == VariationClass::SectionOrder {
                continue;
            }
            let plugin = VariationPlugin::new(*class, 10, seed);
            let faults = plugin.generate(campaign.baseline())?;
            if faults.is_empty() {
                continue;
            }
            batch.push(campaign, faults);
            scheduled.push((row, col));
        }
    }
    let profiles = executor.run_batch(batch)?;
    for ((row, col), profile) in scheduled.into_iter().zip(profiles) {
        let accepted = profile
            .outcomes()
            .iter()
            .all(|o| matches!(o.result, InjectionResult::Undetected { .. }));
        rows[row].1[col] = Some(accepted);
    }
    Ok(Table2 {
        systems: factories.iter().map(|(s, _)| s.to_string()).collect(),
        rows,
    })
}

/// Runs the 10 variants of one class against one system. `None` when
/// the class does not apply (no scenarios could be generated).
fn variation_verdict(
    sut: &mut dyn SystemUnderTest,
    class: VariationClass,
    seed: u64,
) -> Result<Table2Cell, CampaignError> {
    let mut campaign = Campaign::new(sut)?;
    let plugin = VariationPlugin::new(class, 10, seed);
    let faults = plugin.generate(campaign.baseline())?;
    if faults.is_empty() {
        return Ok(None);
    }
    let profile = campaign.run_faults(faults)?;
    let accepted = profile
        .outcomes()
        .iter()
        .all(|o| matches!(o.result, InjectionResult::Undetected { .. }));
    Ok(Some(accepted))
}

/// One Table 3 verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Table3Verdict {
    /// The system detected the fault (refused to load).
    Found,
    /// The fault was injected and went undetected.
    NotFound,
    /// The fault could not be expressed in the configuration format.
    NotApplicable,
}

impl Table3Verdict {
    /// The cell text used in the paper's Table 3.
    pub fn label(self) -> &'static str {
        match self {
            Table3Verdict::Found => "found",
            Table3Verdict::NotFound => "not found",
            Table3Verdict::NotApplicable => "N/A",
        }
    }
}

/// The Table 3 matrix: RFC-1912 fault classes × (BIND, djbdns).
#[derive(Debug, Clone)]
pub struct Table3 {
    /// `(row number, fault description, bind verdict, djbdns verdict)`.
    pub rows: Vec<(usize, String, Table3Verdict, Table3Verdict)>,
}

/// Runs the §5.4 semantic-error experiment and builds Table 3.
///
/// # Errors
///
/// Propagates campaign failures.
pub fn table3() -> Result<Table3, CampaignError> {
    let kinds = DnsFaultKind::TABLE3;
    let mut bind_verdicts = Vec::new();
    {
        let mut sut = BindSim::new();
        let mut campaign = Campaign::new(&mut sut)?;
        let plugin = DnsSemanticPlugin::bind();
        let faults = plugin.generate(campaign.baseline())?;
        let profile = campaign.run_faults(faults)?;
        for kind in kinds {
            bind_verdicts.push(rule_verdict(&profile, kind.rule()));
        }
    }
    let mut djb_verdicts = Vec::new();
    {
        let mut sut = DjbdnsSim::new();
        let mut campaign = Campaign::new(&mut sut)?;
        let plugin = DnsSemanticPlugin::tinydns();
        let faults = plugin.generate(campaign.baseline())?;
        let profile = campaign.run_faults(faults)?;
        for kind in kinds {
            djb_verdicts.push(rule_verdict(&profile, kind.rule()));
        }
    }
    Ok(Table3 {
        rows: kinds
            .iter()
            .enumerate()
            .map(|(i, kind)| {
                (
                    i + 1,
                    kind.description().to_string(),
                    bind_verdicts[i],
                    djb_verdicts[i],
                )
            })
            .collect(),
    })
}

/// [`table3`] through the executor: both name servers' semantic fault
/// loads go into **one batch**, so workers steal across BIND and
/// djbdns instead of idling at a per-system barrier. Identical
/// verdicts to the serial run.
///
/// # Errors
///
/// Propagates campaign failures.
pub fn table3_parallel(executor: &CampaignExecutor) -> Result<Table3, CampaignError> {
    let kinds = DnsFaultKind::TABLE3;
    let mut batch = CampaignBatch::new();
    for (factory, plugin) in [
        (sut_factory(BindSim::new), DnsSemanticPlugin::bind()),
        (sut_factory(DjbdnsSim::new), DnsSemanticPlugin::tinydns()),
    ] {
        let campaign = ExecutorCampaign::new(factory)?;
        let faults = plugin.generate(campaign.baseline())?;
        batch.push(&campaign, faults);
    }
    let profiles = executor.run_batch(batch)?;
    let verdicts = |profile: &ResilienceProfile| -> Vec<Table3Verdict> {
        kinds
            .iter()
            .map(|kind| rule_verdict(profile, kind.rule()))
            .collect()
    };
    let bind_verdicts = verdicts(&profiles[0]);
    let djb_verdicts = verdicts(&profiles[1]);
    Ok(Table3 {
        rows: kinds
            .iter()
            .enumerate()
            .map(|(i, kind)| {
                (
                    i + 1,
                    kind.description().to_string(),
                    bind_verdicts[i],
                    djb_verdicts[i],
                )
            })
            .collect(),
    })
}

fn rule_verdict(profile: &ResilienceProfile, rule: &str) -> Table3Verdict {
    let outcomes: Vec<&InjectionResult> = profile
        .outcomes()
        .iter()
        .filter(|o| matches!(&o.class, ErrorClass::Semantic { rule: r, .. } if r == rule))
        .map(|o| &o.result)
        .collect();
    if outcomes.is_empty()
        || outcomes
            .iter()
            .all(|r| matches!(r, InjectionResult::Inexpressible { .. }))
    {
        return Table3Verdict::NotApplicable;
    }
    let injected: Vec<&&InjectionResult> = outcomes
        .iter()
        .filter(|r| !matches!(r, InjectionResult::Inexpressible { .. }))
        .collect();
    if injected.iter().all(|r| r.detected()) {
        Table3Verdict::Found
    } else {
        Table3Verdict::NotFound
    }
}

/// Runs the §5.5 comparison (Figure 3): MySQL vs Postgres, 20
/// value-typo experiments per directive over full-coverage
/// configurations, booleans excluded.
///
/// # Errors
///
/// Propagates campaign failures.
pub fn figure3(seed: u64) -> Result<ComparisonReport, CampaignError> {
    let keyboard = Keyboard::qwerty_us();
    let mutator = move |value: &str| all_typos(&keyboard, value);

    let mut systems = Vec::new();
    {
        let mut sut = PostgresSim::new();
        systems.push(value_typo_resilience(
            &mut sut,
            &postgres_full_coverage_payload(),
            &mutator,
            20,
            seed,
            &PostgresSim::boolean_directive_names(),
        )?);
    }
    {
        let mut sut = MySqlSim::new();
        systems.push(value_typo_resilience(
            &mut sut,
            &mysql_full_coverage_payload(),
            &mutator,
            20,
            seed,
            &MySqlSim::boolean_directive_names(),
        )?);
    }
    Ok(ComparisonReport { systems })
}

/// The §5.5 full-coverage Postgres configuration as a startup payload.
fn postgres_full_coverage_payload() -> ConfigPayload {
    let mut configs = ConfigPayload::new();
    configs.insert(
        "postgresql.conf",
        FileText::mutated(PostgresSim::full_coverage_config()),
    );
    configs
}

/// The §5.5 full-coverage MySQL configuration as a startup payload.
fn mysql_full_coverage_payload() -> ConfigPayload {
    let mut configs = ConfigPayload::new();
    configs.insert(
        "my.cnf",
        FileText::mutated(MySqlSim::full_coverage_config()),
    );
    configs
}

/// [`figure3`] through the batched comparison runner
/// ([`parallel_value_typo_resilience`]): each system's full-coverage
/// configuration is parsed into one shared engine, every directive
/// becomes a batch entry, and both systems run on the same persistent
/// executor — the second comparison reuses the workers (and their
/// SUT instances) the first one warmed up. Per-directive seeding
/// depends only on the directive index, so the numbers are identical
/// to the serial run.
///
/// # Errors
///
/// Propagates campaign failures.
pub fn figure3_parallel(
    executor: &CampaignExecutor,
    seed: u64,
) -> Result<ComparisonReport, CampaignError> {
    let keyboard = Keyboard::qwerty_us();
    let mutator = move |value: &str| all_typos(&keyboard, value);

    let systems = vec![
        parallel_value_typo_resilience(
            sut_factory(PostgresSim::new),
            &postgres_full_coverage_payload(),
            &mutator,
            20,
            seed,
            &PostgresSim::boolean_directive_names(),
            executor,
        )?,
        parallel_value_typo_resilience(
            sut_factory(MySqlSim::new),
            &mysql_full_coverage_payload(),
            &mutator,
            20,
            seed,
            &MySqlSim::boolean_directive_names(),
            executor,
        )?,
    ];
    Ok(ComparisonReport { systems })
}

#[cfg(test)]
mod tests {
    use super::*;
    #[test]
    fn table1_shape_matches_the_paper() {
        let columns = table1(DEFAULT_SEED).unwrap();
        let get = |name: &str| {
            columns
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, s)| *s)
                .unwrap()
        };
        let mysql = get("MySQL");
        let postgres = get("Postgres");
        let apache = get("Apache");
        for (name, s) in &columns {
            assert!(s.injected() > 20, "{name} only injected {}", s.injected());
            assert_eq!(s.skipped, 0, "{name} skipped injections");
        }
        // Databases detect most typos at startup; Apache detects far
        // fewer and ignores the most (Table 1's shape).
        assert!(
            postgres.pct(postgres.detected_at_startup) > 65.0,
            "{postgres:?}"
        );
        assert!(
            mysql.pct(mysql.detected_at_startup) > apache.pct(apache.detected_at_startup) + 10.0,
            "mysql must detect clearly more at startup: {mysql:?} vs {apache:?}"
        );
        assert!(
            postgres.pct(postgres.detected_at_startup)
                > apache.pct(apache.detected_at_startup) + 10.0,
            "postgres must detect clearly more at startup: {postgres:?} vs {apache:?}"
        );
        assert!(
            apache.pct(apache.undetected) > mysql.pct(mysql.undetected) + 10.0,
            "apache must ignore clearly more: {apache:?} vs {mysql:?}"
        );
        // Functional tests add only a sliver of detection (§5.2):
        // none for Postgres (socket-based probe), a few for the
        // listening ports of MySQL and Apache.
        assert_eq!(postgres.detected_by_tests, 0, "{postgres:?}");
        assert!(apache.detected_by_tests > 0, "{apache:?}");
        assert!(mysql.detected_by_tests > 0, "{mysql:?}");
        assert!(
            apache.pct(apache.detected_by_tests) < 10.0,
            "functional detection stays a sliver: {apache:?}"
        );
    }

    #[test]
    fn table2_matches_the_paper() {
        let t = table2(DEFAULT_SEED).unwrap();
        let row = |label: &str| {
            t.rows
                .iter()
                .find(|(l, _)| l == label)
                .map(|(_, cells)| cells.clone())
                .unwrap()
        };
        // Columns: MySQL, Postgres, Apache.
        assert_eq!(row("Order of sections"), vec![Some(true), None, None]);
        assert_eq!(
            row("Order of directives"),
            vec![Some(true), Some(true), Some(true)]
        );
        assert_eq!(
            row("Spaces near separators"),
            vec![Some(true), Some(true), Some(true)]
        );
        assert_eq!(
            row("Mixed-case directive names"),
            vec![Some(false), Some(true), Some(true)]
        );
        assert_eq!(
            row("Truncatable directive names"),
            vec![Some(true), Some(false), Some(false)]
        );
        let pct = t.satisfied_percentages();
        assert!((pct[0] - 80.0).abs() < 1e-9, "MySQL {pct:?}");
        assert!((pct[1] - 75.0).abs() < 1e-9, "Postgres {pct:?}");
        assert!((pct[2] - 75.0).abs() < 1e-9, "Apache {pct:?}");
    }

    #[test]
    fn table3_matches_the_paper() {
        let t = table3().unwrap();
        assert_eq!(t.rows.len(), 4);
        let verdicts: Vec<(Table3Verdict, Table3Verdict)> =
            t.rows.iter().map(|(_, _, b, d)| (*b, *d)).collect();
        assert_eq!(
            verdicts[0],
            (Table3Verdict::NotFound, Table3Verdict::NotApplicable),
            "Missing PTR"
        );
        assert_eq!(
            verdicts[1],
            (Table3Verdict::NotFound, Table3Verdict::NotApplicable),
            "PTR to CNAME"
        );
        assert_eq!(
            verdicts[2],
            (Table3Verdict::Found, Table3Verdict::NotFound),
            "NS+CNAME dup"
        );
        assert_eq!(
            verdicts[3],
            (Table3Verdict::Found, Table3Verdict::NotFound),
            "MX to CNAME"
        );
    }

    #[test]
    fn figure3_postgres_beats_mysql() {
        let report = figure3(DEFAULT_SEED).unwrap();
        assert_eq!(report.systems.len(), 2);
        let postgres = &report.systems[0];
        let mysql = &report.systems[1];
        assert!(postgres.system.contains("postgres"));
        assert!(
            postgres.mean_detection_pct() > mysql.mean_detection_pct() + 20.0,
            "postgres {:.1}% vs mysql {:.1}%",
            postgres.mean_detection_pct(),
            mysql.mean_detection_pct()
        );
        // MySQL's modal band is Poor (the paper: MySQL detected <25%
        // of typos in ~45% of its directives); Postgres' Excellent
        // share dwarfs MySQL's (the paper: >75% detection in ~45% of
        // directives).
        let m = mysql.band_percentages();
        let p = postgres.band_percentages();
        let mysql_poor = m[0];
        assert!(
            mysql_poor >= m[1] && mysql_poor >= m[2] && mysql_poor >= m[3],
            "Poor must be MySQL's modal band: {m:?}"
        );
        assert!(mysql_poor > 35.0, "{m:?}");
        assert!(
            p[3] > m[3] + 15.0,
            "postgres Excellent share: {p:?} vs {m:?}"
        );
        assert!(
            p[0] < m[0],
            "postgres Poor share must be smaller: {p:?} vs {m:?}"
        );
    }
}
