//! Regenerates Figure 3: resilience to typos in directive values,
//! MySQL vs Postgres, across all directives (paper §5.5).
//!
//! ```text
//! cargo run -p conferr-bench --bin fig3 [seed]   # CONFERR_THREADS=n to pin workers
//! ```

use conferr::report::stacked_bar;
use conferr::CampaignExecutor;
use conferr::DetectionBand;
use conferr_bench::{figure3_parallel, threads_from_env, DEFAULT_SEED};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    let executor = CampaignExecutor::new(threads_from_env());
    let report = figure3_parallel(&executor, seed).expect("figure 3 comparison failed");

    println!("Figure 3. Resilience to typos in MySQL and Postgres, across all directives");
    println!("(seed {seed}; 20 value-typo experiments per directive; booleans excluded)");
    println!();
    println!("{report}");
    println!(
        "band distribution (E=Excellent 75-100%, G=Good 50-75%, F=Fair 25-50%, P=Poor 0-25%):"
    );
    for system in &report.systems {
        let p = system.band_percentages();
        let bar = stacked_bar(&[('E', p[3]), ('G', p[2]), ('F', p[1]), ('P', p[0])], 50);
        println!("  {:<14} {bar}", system.system);
    }
    println!();
    for system in &report.systems {
        println!(
            "{} mean per-directive detection: {:.1}%",
            system.system,
            system.mean_detection_pct()
        );
    }
    println!();
    println!("per-directive detail:");
    for system in &report.systems {
        println!("  {}:", system.system);
        for d in &system.directives {
            println!(
                "    {:<34} {:>5.1}%  {:?} ({} of {} detected)",
                d.directive,
                d.detection_pct(),
                DetectionBand::of(d.detection_pct()),
                d.detected,
                d.experiments
            );
        }
    }
}
