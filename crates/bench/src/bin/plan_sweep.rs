//! Seeded property sweep over operator-session plans, feeding the
//! committed bug base.
//!
//! ```text
//! cargo run --release -p conferr-bench --bin plan_sweep            # write bugbase/
//! cargo run --release -p conferr-bench --bin plan_sweep -- --check # CI gate
//! ```
//!
//! The sweep is a fixed grid — every built-in workload profile and
//! property, a fixed seed list, three systems, one chaos spec — so its
//! output is a pure function of the codebase. Every plan that violates
//! a property is shrunk to its minimal counterexample and recorded.
//!
//! `--check` (the nightly CI mode) recomputes the grid and requires
//! the produced record set to equal the committed `bugbase/` directory
//! *exactly*: a sweep record missing from the directory means the code
//! grew a new counterexample (a regression to triage — or, after a
//! deliberate behaviour change, a record to re-commit); a committed
//! record the sweep no longer produces means a bug silently stopped
//! reproducing. Both directions fail the gate. Each committed record
//! is also replayed byte-for-byte through its stored selection.

use std::collections::BTreeMap;
use std::process::ExitCode;

use conferr::CampaignExecutor;
use conferr_bench::threads_from_env;
use conferr_plan::{BugBase, BugRecord, ChaosSpec, PlanHarness, Property, WorkloadProfile};

/// Fixed seed list for the broad grid.
const SEEDS: [u64; 4] = [0, 3, 17, 1912];
/// Systems under sweep (a representative subset keeps the gate fast).
const SYSTEMS: [&str; 3] = ["mysql", "postgres", "apache"];
/// Steps per generated plan in the broad grid.
const STEPS: usize = 12;
/// Deep compound-heavy cells: longer sessions at seeds known to grow
/// the detected-then-masked compound shape, so `no-silent-compound`
/// is represented in the committed base alongside the other two
/// properties.
const DEEP_SEEDS: [u64; 2] = [30, 109];
/// Steps per generated plan in the deep cells.
const DEEP_STEPS: usize = 16;
/// One chaos spec for the whole grid: start failures and fabricated
/// test failures at moderate rates, no panics or stalls (those are
/// covered by the robustness suite; here they would only slow the
/// sweep down).
const CHAOS: ChaosSpec = ChaosSpec {
    seed: 7,
    panic_pm: 0,
    stall_pm: 0,
    fail_pm: 350,
    fail_test_pm: 200,
    stall_ms: 5,
};

/// Default bug-base directory, relative to the repo root CI runs from.
const DEFAULT_DIR: &str = "bugbase";

fn sweep_cell(
    executor: &CampaignExecutor,
    harness: &PlanHarness,
    profile: &str,
    seed: u64,
    steps: usize,
    records: &mut Vec<BugRecord>,
) {
    let plan = harness
        .generate(profile, seed, steps)
        .expect("built-in profile");
    let trace = harness.run(executor, &plan).expect("plan run");
    for property in Property::ALL {
        if property.evaluate(&trace).is_none() {
            continue;
        }
        let report = harness
            .shrink(executor, &plan, property)
            .expect("shrink run")
            .expect("a violating plan must shrink to a counterexample");
        let record = harness
            .build_record(
                executor,
                profile,
                seed,
                steps,
                property,
                &plan,
                &report.minimal,
            )
            .expect("record build");
        println!(
            "{} {profile} seed={seed} {}: {} -> {} step(s) in {} run(s)",
            harness.system(),
            property.name(),
            plan.len(),
            report.minimal.len(),
            report.runs
        );
        records.push(record);
    }
}

fn sweep(executor: &CampaignExecutor) -> Vec<BugRecord> {
    let mut records = Vec::new();
    for system in SYSTEMS {
        let harness = PlanHarness::new(system, Some(CHAOS)).expect("built-in system");
        for profile in WorkloadProfile::builtin() {
            for seed in SEEDS {
                sweep_cell(executor, &harness, &profile.name, seed, STEPS, &mut records);
            }
        }
        for seed in DEEP_SEEDS {
            sweep_cell(
                executor,
                &harness,
                "compound-heavy",
                seed,
                DEEP_STEPS,
                &mut records,
            );
        }
    }
    records
}

fn write(base: &BugBase, records: &[BugRecord]) -> ExitCode {
    for record in records {
        let path = base.store(record).expect("store record");
        println!("wrote {}", path.display());
    }
    println!("plan sweep: {} counterexample(s) recorded", records.len());
    ExitCode::SUCCESS
}

fn check(base: &BugBase, executor: &CampaignExecutor, records: &[BugRecord]) -> ExitCode {
    let committed: BTreeMap<String, BugRecord> = base
        .records()
        .expect("readable bug base")
        .into_iter()
        .map(|(path, record)| {
            (
                path.file_name()
                    .and_then(|n| n.to_str())
                    .expect("utf-8 file name")
                    .to_string(),
                record,
            )
        })
        .collect();

    let mut failures = Vec::new();
    for record in records {
        match committed.get(&record.file_name()) {
            None => failures.push(format!(
                "NEW counterexample not in the committed bug base: {}",
                record.file_name()
            )),
            Some(stored) if stored != record => failures.push(format!(
                "counterexample drifted from the committed record: {}",
                record.file_name()
            )),
            Some(_) => {}
        }
    }
    let produced: Vec<String> = records.iter().map(BugRecord::file_name).collect();
    for name in committed.keys() {
        if !produced.contains(name) {
            failures.push(format!(
                "committed record no longer reproduced by the sweep: {name}"
            ));
        }
    }

    // Every committed record must also replay byte-for-byte through
    // its stored kept-step selection.
    for (name, record) in &committed {
        let harness = PlanHarness::from_record(record).expect("record system");
        let result = harness
            .replay_record(executor, record)
            .expect("record replay");
        if !result.matched {
            failures.push(format!("record does not replay byte-for-byte: {name}"));
        }
    }

    if failures.is_empty() {
        println!(
            "plan sweep check: {} record(s), all reproduced and replayed",
            committed.len()
        );
        ExitCode::SUCCESS
    } else {
        for failure in &failures {
            eprintln!("plan sweep check: {failure}");
        }
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut checking = false;
    let mut dir = DEFAULT_DIR.to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => checking = true,
            "--out" => {
                i += 1;
                dir = args.get(i).cloned().expect("--out needs a directory");
            }
            other => {
                eprintln!("plan_sweep: unknown argument {other:?}");
                eprintln!("usage: plan_sweep [--check] [--out <dir>]");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    let executor = CampaignExecutor::new(threads_from_env());
    let base = BugBase::new(&dir);
    let records = sweep(&executor);
    if checking {
        check(&base, &executor, &records)
    } else {
        write(&base, &records)
    }
}
