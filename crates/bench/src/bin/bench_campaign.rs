//! Machine-readable campaign-engine timings — the repo's perf
//! trajectory anchor.
//!
//! Runs the full §5.2 fault load (Table 1 protocol: every-directive
//! deletion plus sampled name/value typos) against MySQL, Postgres
//! and Apache, `repeat` times over, through three configurations:
//!
//! * **serial uncached** — one `Campaign`, one SUT, parse caching
//!   disabled: the reference cold path (every `start` re-parses its
//!   configuration from text, as the pre-PR-3 drivers always did);
//! * **serial** — the same campaign with the SUTs' content-addressed
//!   `ParseCache` on: unchanged files parse once, repeated mutated
//!   texts parse once;
//! * **parallel** — `ParallelCampaign`, one worker and one SUT
//!   instance (with its own cache) per thread, outcomes merged in
//!   fault order.
//!
//! All three profiles are asserted **byte-identical** before any
//! timing is reported — the parse cache and the scheduler must be
//! pure wall-clock optimisations — then the numbers go to
//! `BENCH_campaign.json`. The parallel speedup scales with core
//! count; on a single-core machine it only measures sharding
//! overhead.
//!
//! ```text
//! cargo run --release -p conferr-bench --bin bench_campaign [repeat] [threads]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use conferr::{sut_factory, Campaign, ParallelCampaign, ResilienceProfile};
use conferr_bench::{default_threads, table1_faultload, DEFAULT_SEED};
use conferr_keyboard::Keyboard;
use conferr_model::GeneratedFault;
use conferr_sut::{ApacheSim, MySqlSim, PostgresSim, SystemUnderTest};

/// Fixed reference points of the trajectory, both measured on the
/// committed-run host at `repeat` = 20:
///
/// * pre-PR-2: the deep-clone-everything, serialize-everything serial
///   driver;
/// * PR 2: the copy-on-write engine with cached baseline
///   serialization, still re-parsing every configuration at every
///   `start` (what "serial uncached" reproduces today).
const PRE_PR2_SERIAL_TOTAL_MS: f64 = 1440.0;
const PR2_SERIAL_TOTAL_MS: f64 = 1430.0;
const REFERENCE_REPEAT: usize = 20;

/// Timing row for one system.
struct Row {
    system: String,
    faults: usize,
    serial_uncached_ms: f64,
    serial_ms: f64,
    parallel_ms: f64,
}

/// Builds the repeated §5.2 fault load for one system.
fn faultload(sut: &mut dyn SystemUnderTest, repeat: usize) -> Vec<GeneratedFault> {
    let keyboard = Keyboard::qwerty_us();
    let campaign = Campaign::new(sut).expect("campaign");
    let one = table1_faultload(campaign.baseline(), &keyboard, DEFAULT_SEED);
    let mut out = Vec::with_capacity(one.len() * repeat);
    for _ in 0..repeat {
        out.extend(one.iter().cloned());
    }
    out
}

/// One timed serial run over `faults` with every cache layer (the
/// SUT's parse cache and the engine's fault memo) on or off.
fn timed_serial(
    make_sut: &(dyn Fn() -> Box<dyn SystemUnderTest> + Sync),
    faults: Vec<GeneratedFault>,
    caching: bool,
) -> (ResilienceProfile, f64) {
    let mut sut = make_sut();
    sut.set_parse_caching(caching);
    let mut campaign = Campaign::new(sut.as_mut()).expect("campaign");
    campaign.set_fault_memoization(caching);
    let start = Instant::now();
    let profile = campaign.run_faults(faults).expect("serial run");
    (profile, start.elapsed().as_secs_f64() * 1e3)
}

fn run_system<F>(make_sut: F, repeat: usize, threads: usize) -> Row
where
    F: Fn() -> Box<dyn SystemUnderTest> + Sync,
{
    let mut sut = make_sut();
    let system = sut.name().to_string();
    let faults = faultload(sut.as_mut(), repeat);
    let n = faults.len();

    // All drivers must be measured over identical work (the parallel
    // run below moves `faults`).
    let (uncached, serial_uncached_ms) = timed_serial(&make_sut, faults.clone(), false);
    let (serial, serial_ms) = timed_serial(&make_sut, faults.clone(), true);

    let parallel_campaign = ParallelCampaign::new(&make_sut)
        .expect("campaign")
        .with_threads(threads);
    let start = Instant::now();
    let parallel = parallel_campaign.run_faults(faults).expect("parallel run");
    let parallel_ms = start.elapsed().as_secs_f64() * 1e3;

    assert_profiles_identical(&uncached, &serial, "cached serial");
    assert_profiles_identical(&uncached, &parallel, "parallel");
    Row {
        system,
        faults: n,
        serial_uncached_ms,
        serial_ms,
        parallel_ms,
    }
}

/// The timing comparison is only meaningful if every driver computed
/// the same thing — and the parse cache is only *sound* if cached
/// runs are byte-identical to uncached runs.
fn assert_profiles_identical(reference: &ResilienceProfile, other: &ResilienceProfile, who: &str) {
    assert_eq!(
        conferr::profile_to_json(reference),
        conferr::profile_to_json(other),
        "{who} profile diverged from the uncached serial reference"
    );
}

fn main() {
    let repeat: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let threads: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(default_threads);

    println!("campaign engine, full Table 1 fault load x{repeat}, {threads} thread(s)");
    let rows = [
        run_system(sut_factory(MySqlSim::new), repeat, threads),
        run_system(sut_factory(PostgresSim::new), repeat, threads),
        run_system(sut_factory(ApacheSim::new), repeat, threads),
    ];

    for row in &rows {
        println!(
            "{:<14} {:>6} faults  uncached {:>8.1} ms  serial {:>8.1} ms  parallel {:>8.1} ms  \
             cache {:>5.2}x",
            row.system,
            row.faults,
            row.serial_uncached_ms,
            row.serial_ms,
            row.parallel_ms,
            row.serial_uncached_ms / row.serial_ms
        );
    }
    let total_uncached: f64 = rows.iter().map(|r| r.serial_uncached_ms).sum();
    let total_serial: f64 = rows.iter().map(|r| r.serial_ms).sum();
    let total_parallel: f64 = rows.iter().map(|r| r.parallel_ms).sum();
    println!(
        "{:<14} {:>6}         uncached {total_uncached:>8.1} ms  serial {total_serial:>8.1} ms  \
         parallel {total_parallel:>8.1} ms  cache {:>5.2}x",
        "TOTAL",
        "",
        total_uncached / total_serial
    );
    if repeat == REFERENCE_REPEAT {
        println!(
            "references (same fault load, committed-run host): pre-PR-2 serial \
             {PRE_PR2_SERIAL_TOTAL_MS:.0} ms, PR 2 serial {PR2_SERIAL_TOTAL_MS:.0} ms -> \
             {:.2}x vs cached serial",
            PR2_SERIAL_TOTAL_MS / total_serial
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"conferr-bench-campaign/v2\",");
    let _ = writeln!(json, "  \"repeat\": {repeat},");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(
        json,
        "  \"references\": {{\"pre_pr2_serial_total_ms\": {PRE_PR2_SERIAL_TOTAL_MS}, \
         \"pr2_serial_total_ms\": {PR2_SERIAL_TOTAL_MS}, \"repeat\": {REFERENCE_REPEAT}, \
         \"note\": \"fixed trajectory anchors measured on the committed-run host: the pre-COW \
         deep-clone serial driver and the PR 2 COW serial driver (re-parse on every start)\"}},"
    );
    json.push_str("  \"systems\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"system\": \"{}\", \"faults\": {}, \"serial_uncached_ms\": {:.1}, \
             \"serial_ms\": {:.1}, \"parallel_ms\": {:.1}, \"cache_speedup\": {:.2}}}{comma}",
            row.system,
            row.faults,
            row.serial_uncached_ms,
            row.serial_ms,
            row.parallel_ms,
            row.serial_uncached_ms / row.serial_ms
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"total\": {{\"serial_uncached_ms\": {total_uncached:.1}, \
         \"serial_ms\": {total_serial:.1}, \"parallel_ms\": {total_parallel:.1}, \
         \"cache_speedup\": {:.2}, \"speedup_vs_pr2_serial\": {:.2}}}",
        total_uncached / total_serial,
        PR2_SERIAL_TOTAL_MS / total_serial
    );
    json.push_str("}\n");
    std::fs::write("BENCH_campaign.json", &json).expect("write BENCH_campaign.json");
    println!("wrote BENCH_campaign.json");
}
