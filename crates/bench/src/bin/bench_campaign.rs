//! Machine-readable campaign-engine timings — the repo's perf
//! trajectory anchor.
//!
//! Runs the full §5.2 fault load (Table 1 protocol: every-directive
//! deletion plus sampled name/value typos) against MySQL, Postgres
//! and Apache, `repeat` times over, through both drivers:
//!
//! * **serial** — one `Campaign`, one SUT, one thread (with the
//!   copy-on-write apply and cached baseline serialization);
//! * **parallel** — `ParallelCampaign`, one worker and one SUT
//!   instance per thread, outcomes merged in fault order.
//!
//! The two profiles are asserted identical before any timing is
//! reported, then wall-clock numbers go to `BENCH_campaign.json`.
//! The parallel speedup scales with core count; on a single-core
//! machine it only measures sharding overhead.
//!
//! ```text
//! cargo run --release -p conferr-bench --bin bench_campaign [repeat] [threads]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use conferr::{sut_factory, Campaign, ParallelCampaign, ResilienceProfile};
use conferr_bench::{default_threads, table1_faultload, DEFAULT_SEED};
use conferr_keyboard::Keyboard;
use conferr_model::GeneratedFault;
use conferr_sut::{ApacheSim, MySqlSim, PostgresSim, SystemUnderTest};

/// Pre-PR serial driver total (same host, `repeat` = 20): the
/// deep-clone-everything, serialize-everything engine this PR
/// replaced. Kept as the fixed reference point of the trajectory.
const PRE_PR_SERIAL_TOTAL_MS: f64 = 1440.0;
const PRE_PR_REPEAT: usize = 20;

/// Timing row for one system.
struct Row {
    system: String,
    faults: usize,
    serial_ms: f64,
    parallel_ms: f64,
}

/// Builds the repeated §5.2 fault load for one system.
fn faultload(sut: &mut dyn SystemUnderTest, repeat: usize) -> Vec<GeneratedFault> {
    let keyboard = Keyboard::qwerty_us();
    let campaign = Campaign::new(sut).expect("campaign");
    let one = table1_faultload(campaign.baseline(), &keyboard, DEFAULT_SEED);
    let mut out = Vec::with_capacity(one.len() * repeat);
    for _ in 0..repeat {
        out.extend(one.iter().cloned());
    }
    out
}

fn run_system<F>(make_sut: F, repeat: usize, threads: usize) -> Row
where
    F: Fn() -> Box<dyn SystemUnderTest> + Sync,
{
    let mut sut = make_sut();
    let system = sut.name().to_string();
    let faults = faultload(sut.as_mut(), repeat);
    let n = faults.len();

    let mut campaign = Campaign::new(sut.as_mut()).expect("campaign");
    // Clone outside the timed region: both drivers must be measured
    // over identical work (the parallel run below moves `faults`).
    let serial_faults = faults.clone();
    let start = Instant::now();
    let serial = campaign.run_faults(serial_faults).expect("serial run");
    let serial_ms = start.elapsed().as_secs_f64() * 1e3;

    let parallel_campaign = ParallelCampaign::new(&make_sut)
        .expect("campaign")
        .with_threads(threads);
    let start = Instant::now();
    let parallel = parallel_campaign.run_faults(faults).expect("parallel run");
    let parallel_ms = start.elapsed().as_secs_f64() * 1e3;

    assert_profiles_identical(&serial, &parallel);
    Row {
        system,
        faults: n,
        serial_ms,
        parallel_ms,
    }
}

/// The timing comparison is only meaningful if both drivers computed
/// the same thing.
fn assert_profiles_identical(serial: &ResilienceProfile, parallel: &ResilienceProfile) {
    assert_eq!(
        conferr::profile_to_json(serial),
        conferr::profile_to_json(parallel),
        "parallel profile diverged from serial"
    );
}

fn main() {
    let repeat: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let threads: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(default_threads);

    println!("campaign engine, full Table 1 fault load x{repeat}, {threads} thread(s)");
    let rows = [
        run_system(sut_factory(MySqlSim::new), repeat, threads),
        run_system(sut_factory(PostgresSim::new), repeat, threads),
        run_system(sut_factory(ApacheSim::new), repeat, threads),
    ];

    for row in &rows {
        println!(
            "{:<14} {:>6} faults  serial {:>9.1} ms  parallel {:>9.1} ms  speedup {:>5.2}x",
            row.system,
            row.faults,
            row.serial_ms,
            row.parallel_ms,
            row.serial_ms / row.parallel_ms
        );
    }
    let total_serial: f64 = rows.iter().map(|r| r.serial_ms).sum();
    let total_parallel: f64 = rows.iter().map(|r| r.parallel_ms).sum();
    println!(
        "{:<14} {:>6}         serial {total_serial:>9.1} ms  parallel {total_parallel:>9.1} ms  \
         speedup {:>5.2}x",
        "TOTAL",
        "",
        total_serial / total_parallel
    );
    if repeat == PRE_PR_REPEAT {
        println!(
            "pre-PR serial reference (same fault load): {PRE_PR_SERIAL_TOTAL_MS:.1} ms -> \
             {:.2}x vs parallel",
            PRE_PR_SERIAL_TOTAL_MS / total_parallel
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"conferr-bench-campaign/v1\",");
    let _ = writeln!(json, "  \"repeat\": {repeat},");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(
        json,
        "  \"pre_pr_serial_total_ms\": {{\"value\": {PRE_PR_SERIAL_TOTAL_MS}, \
         \"repeat\": {PRE_PR_REPEAT}, \"note\": \"pre-COW deep-clone serial driver, same host as the committed run\"}},"
    );
    json.push_str("  \"systems\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"system\": \"{}\", \"faults\": {}, \"serial_ms\": {:.1}, \
             \"parallel_ms\": {:.1}, \"speedup\": {:.2}}}{comma}",
            row.system,
            row.faults,
            row.serial_ms,
            row.parallel_ms,
            row.serial_ms / row.parallel_ms
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"total\": {{\"serial_ms\": {total_serial:.1}, \"parallel_ms\": {total_parallel:.1}, \
         \"speedup\": {:.2}}}",
        total_serial / total_parallel
    );
    json.push_str("}\n");
    std::fs::write("BENCH_campaign.json", &json).expect("write BENCH_campaign.json");
    println!("wrote BENCH_campaign.json");
}
