//! Machine-readable campaign-engine timings — the repo's perf
//! trajectory anchor.
//!
//! Runs the full §5.2 fault load (Table 1 protocol: every-directive
//! deletion plus sampled name/value typos) against MySQL, Postgres
//! and Apache, `repeat` times over, through five configurations:
//!
//! * **serial uncached** — one `Campaign`, one SUT, parse caching
//!   disabled: the reference cold path (every `start` re-parses its
//!   configuration from text, as the pre-PR-3 drivers always did);
//! * **serial** — the same campaign with the SUTs' content-addressed
//!   `ParseCache` on: unchanged files parse once, repeated mutated
//!   texts parse once;
//! * **serial pruned** — the cached serial campaign with test-impact
//!   pruning on: functional tests whose schema-declared read-set is
//!   provably disjoint from a fault's statically derived touch map
//!   are skipped (v5);
//! * **parallel** — `ParallelCampaign`, one worker and one SUT
//!   instance (with its own cache) per thread, outcomes merged in
//!   fault order;
//! * **executor** — one persistent `CampaignExecutor` shared by all
//!   three systems: worker threads and per-worker SUT caches are
//!   constructed once and reused across every `run_faults` call;
//! * **batch** — all three systems' fault loads as **one**
//!   `CampaignBatch`, drained off a single campaign-tagged queue
//!   (cross-system work stealing), timed cold (fresh engines and
//!   pool) and warm (resubmitted to the persistent executor);
//! * **streaming** — the same fault load pulled from a live
//!   `FaultSource` chunk by chunk and drained into an `OutcomeSink`
//!   through the executor's bounded reorder window, with the observed
//!   peak buffering asserted against the `chunk × threads` bound.
//!
//! All profiles are asserted **byte-identical** before any timing is
//! reported — caches, the pool, the batch scheduler, the streaming
//! pipeline and test-impact pruning must be pure wall-clock/memory
//! optimisations — then the numbers go to `BENCH_campaign.json`
//! (schema v8). A **scheduler** section (v8) prices the sharded
//! executor core: the warm 3-system batch best-of-5 on the
//! persistent pool, gated no slower than the cached serial total
//! (under the v7 global-lock scheduler the pooled executor *lost* to
//! serial; the fixed v7 anchors ride along in the JSON), a
//! completion-batch `K` sweep (`K` = 1 reproduces per-fault
//! publication), and the static-triage fast path against its
//! `set_static_triage(false)` reference — byte-identity plus the
//! skip-rate gate (at least 50% of the dynamic starts must be
//! replaced). A dedicated **isolation** section times the same
//! serial 1-thread workload in strict mode (no `catch_unwind`, panics
//! poison) and in the default isolated mode (per-fault `catch_unwind`
//! plus watchdog bookkeeping) over five back-to-back pairs, and gates
//! the isolated run at <= 3% over strict — fault isolation must be a
//! safety net, not a tax. The
//! parallel/executor/batch speedups scale with core count; on a
//! single-core machine they only measure scheduling overhead (and the
//! batch profile exercises the executor's serial fast path). A
//! **process** section (v7) prices the process tier: the mean
//! wall-clock of one real spawned-validator start (`proc_start_ms`,
//! sandbox materialization + spawn + supervise + classify, measured
//! against the committed `conferr-stub-apachectl`) and the apache
//! triage→confirm funnel ratio of a mixed-tier `run_tiered` pass; it
//! degrades to `"available": false` when the stub binaries were not
//! built alongside this bench. Two
//! closing benches: a **million-fault smoke run** — a lazily
//! enumerated ≥10^6-fault space streamed into a counting sink, never
//! buffering more than the streaming window — and the
//! `FaultScenario::apply` microbench against a whole-tree deep copy.
//!
//! ```text
//! cargo run --release -p conferr-bench --bin bench_campaign [repeat] [threads]
//! ```
//!
//! `threads` defaults to `CONFERR_THREADS` (or the machine's
//! parallelism). CI runs this binary with `CONFERR_THREADS=2` as a
//! byte-identity gate: any profile diverging from the uncached serial
//! reference — or a streaming window overrun — aborts with a failing
//! assertion.

use std::fmt::Write as _;
use std::time::Instant;

use conferr::{
    sut_factory, Campaign, CampaignBatch, CampaignExecutor, CollectingSink, CountingSink,
    ExecutorCampaign, ParallelCampaign, ResilienceProfile, SutFactory, DEFAULT_COMPLETION_BATCH,
};
use conferr_bench::{
    deep_copy_tree, httpd_apply_fixture, million_fault_source, table1_faultload, threads_from_env,
    DEFAULT_SEED,
};
use conferr_keyboard::Keyboard;
use conferr_model::{EagerSource, ErrorGenerator, GeneratedFault};
use conferr_plugins::StructuralPlugin;
use conferr_proc::{apachectl_spec, process_factory, ProcessSut};
use conferr_sut::{
    default_payload, ApacheSim, Deadline, MySqlSim, PostgresSim, StartOutcome, SystemUnderTest,
};

/// Fixed reference points of the trajectory, all measured on the
/// committed-run host at `repeat` = 20:
///
/// * pre-PR-2: the deep-clone-everything, serialize-everything serial
///   driver;
/// * PR 2: the copy-on-write engine with cached baseline
///   serialization, still re-parsing every configuration at every
///   `start` (what "serial uncached" reproduces today).
const PRE_PR2_SERIAL_TOTAL_MS: f64 = 1440.0;
const PR2_SERIAL_TOTAL_MS: f64 = 1430.0;
const REFERENCE_REPEAT: usize = 20;

/// v7 anchors of the *global-lock* scheduler this PR's sharded
/// scheduler replaced, measured on the committed-run host at
/// `repeat` = 20, 2 threads: every claim, completion and progress
/// update serialized on one producer mutex and one progress lock.
const V7_GLOBAL_LOCK_EXECUTOR_TOTAL_MS: f64 = 140.9;
const V7_GLOBAL_LOCK_BATCH_COLD_MS: f64 = 137.1;
const V7_GLOBAL_LOCK_BATCH_WARM_MS: f64 = 21.6;
const V7_REFERENCE_THREADS: usize = 2;

/// Completion-batch sizes swept by the scheduler section. `K` = 1
/// reproduces the per-fault publication the global-lock scheduler
/// paid on every outcome.
const K_SWEEP: [usize; 5] = [1, 4, 8, 16, 32];

/// Faults in the bounded-memory streaming smoke run.
const SMOKE_TARGET: usize = 1_000_000;

/// Baseline starts averaged for the process tier's per-start price.
const STARTS: usize = 20;

/// Timing row for one system.
struct Row {
    system: String,
    faults: usize,
    serial_uncached_ms: f64,
    serial_ms: f64,
    serial_pruned_ms: f64,
    parallel_ms: f64,
    executor_ms: f64,
    streaming_ms: f64,
    peak_buffered: usize,
}

/// One system's prepared workload: factory, shared campaign, and the
/// repeated §5.2 fault load.
struct Workload {
    factory: SutFactory,
    campaign: ExecutorCampaign,
    faults: Vec<GeneratedFault>,
}

fn workload(factory: SutFactory, repeat: usize) -> Workload {
    let keyboard = Keyboard::qwerty_us();
    let campaign = ExecutorCampaign::new(factory.clone()).expect("campaign");
    let one = table1_faultload(campaign.baseline(), &keyboard, DEFAULT_SEED);
    let mut faults = Vec::with_capacity(one.len() * repeat);
    for _ in 0..repeat {
        faults.extend(one.iter().cloned());
    }
    Workload {
        factory,
        campaign,
        faults,
    }
}

/// One timed serial run over `faults` with every cache layer (the
/// SUT's parse cache and the engine's fault memo) on or off, and
/// test-impact pruning controlled independently so the pruned and
/// unpruned cached profiles are separable.
fn timed_serial(
    factory: &SutFactory,
    faults: Vec<GeneratedFault>,
    caching: bool,
    pruning: bool,
) -> (ResilienceProfile, f64) {
    let mut sut = factory.create();
    sut.set_parse_caching(caching);
    let mut campaign = Campaign::new(sut.as_mut()).expect("campaign");
    campaign.set_fault_memoization(caching);
    campaign.set_impact_pruning(pruning);
    let start = Instant::now();
    let profile = campaign.run_faults(faults).expect("serial run");
    (profile, start.elapsed().as_secs_f64() * 1e3)
}

fn run_system(
    work: &Workload,
    threads: usize,
    executor: &CampaignExecutor,
) -> (Row, ResilienceProfile) {
    let system = work.campaign.system().to_string();
    let n = work.faults.len();

    let (uncached, serial_uncached_ms) =
        timed_serial(&work.factory, work.faults.clone(), false, false);
    let (serial, serial_ms) = timed_serial(&work.factory, work.faults.clone(), true, false);
    let (pruned, serial_pruned_ms) = timed_serial(&work.factory, work.faults.clone(), true, true);

    let parallel_campaign = ParallelCampaign::new(work.factory.clone())
        .expect("campaign")
        .with_threads(threads);
    let start = Instant::now();
    let parallel = parallel_campaign
        .run_faults(work.faults.clone())
        .expect("parallel run");
    let parallel_ms = start.elapsed().as_secs_f64() * 1e3;

    // The persistent pool: threads and per-worker SUT caches already
    // exist (warmed by earlier systems/submissions).
    let start = Instant::now();
    let exec_profile = executor
        .run_faults(&work.campaign, work.faults.clone())
        .expect("executor run");
    let executor_ms = start.elapsed().as_secs_f64() * 1e3;

    // Streaming: the same load pulled from a live source chunk by
    // chunk and drained through the bounded reorder window into a
    // sink — the v4 profile. The source adapter is built outside the
    // timed region, like every other profile's inputs.
    let source = Box::new(EagerSource::new(work.faults.clone()));
    let mut sink = CollectingSink::with_capacity(n);
    let start = Instant::now();
    let stats = executor
        .run_source(&work.campaign, source, &mut sink)
        .expect("streaming run");
    let streaming_ms = start.elapsed().as_secs_f64() * 1e3;
    let streamed = sink.into_profile(work.campaign.system());
    let window = executor.chunk_size() * executor.threads();
    assert!(
        stats.peak_buffered <= window,
        "streaming buffered {} outcomes, window is {window}",
        stats.peak_buffered
    );

    assert_profiles_identical(&uncached, &serial, "cached serial");
    assert_profiles_identical(&uncached, &pruned, "impact-pruned serial");
    assert_profiles_identical(&uncached, &parallel, "parallel");
    assert_profiles_identical(&uncached, &exec_profile, "executor");
    assert_profiles_identical(&uncached, &streamed, "streaming");
    (
        Row {
            system,
            faults: n,
            serial_uncached_ms,
            serial_ms,
            serial_pruned_ms,
            parallel_ms,
            executor_ms,
            streaming_ms,
            peak_buffered: stats.peak_buffered,
        },
        uncached,
    )
}

/// The bounded-memory smoke: a lazily enumerated space of
/// [`SMOKE_TARGET`] compound faults (the MySQL Table 1 load crossed
/// with itself twice, sampled and capped — see
/// [`million_fault_source`]) streamed into a counting sink. The fault
/// space is never materialized, no outcome is retained, and the
/// executor's reorder buffer is asserted to stay within the
/// `chunk × threads` window.
struct SmokeBench {
    faults: usize,
    ms: f64,
    peak_buffered: usize,
    window: usize,
    detected_at_startup: usize,
}

fn million_fault_smoke(threads: usize) -> SmokeBench {
    let keyboard = Keyboard::qwerty_us();
    let campaign = ExecutorCampaign::new(sut_factory(MySqlSim::new)).expect("campaign");
    // A million *distinct* edit lists would only thrash the engine's
    // bounded fault memo; the smoke measures the uncached pipeline.
    campaign.set_fault_memoization(false);
    let base = table1_faultload(campaign.baseline(), &keyboard, DEFAULT_SEED);
    let source = million_fault_source(base, SMOKE_TARGET);

    let executor = CampaignExecutor::new(threads);
    let window = executor.chunk_size() * executor.threads();
    let mut sink = CountingSink::new();
    let start = Instant::now();
    let stats = executor
        .run_source(&campaign, Box::new(source), &mut sink)
        .expect("smoke run");
    let ms = start.elapsed().as_secs_f64() * 1e3;

    let summary = sink.summary();
    assert_eq!(
        stats.outcomes, SMOKE_TARGET,
        "the space holds >= 10^6 faults"
    );
    assert_eq!(summary.total, SMOKE_TARGET);
    assert!(
        stats.peak_buffered <= window,
        "smoke buffered {} outcomes, window is {window}",
        stats.peak_buffered
    );
    SmokeBench {
        faults: SMOKE_TARGET,
        ms,
        peak_buffered: stats.peak_buffered,
        window,
        detected_at_startup: summary.detected_at_startup,
    }
}

/// Strict vs isolated serial executor timings over one system's
/// repeated Table 1 load — the cost of the per-fault `catch_unwind`
/// boundary, deadline bookkeeping and retry plumbing when nothing
/// ever goes wrong.
struct IsolationBench {
    faults: usize,
    serial_strict_ms: f64,
    serial_isolated_ms: f64,
    overhead_pct: f64,
}

fn isolation_bench(repeat: usize) -> IsolationBench {
    // Floor the workload: a warmed serial run is sub-millisecond per
    // few hundred faults, and a 3% gate needs more signal than that.
    let work = workload(sut_factory(MySqlSim::new), repeat.max(50));
    let executor = CampaignExecutor::new(1);
    // Warm the pool, the worker's SUT cache and the engine's fault
    // memo once so both modes time the same steady state.
    let reference = executor
        .run_faults(&work.campaign, work.faults.clone())
        .expect("warm-up run");

    // Back-to-back pairs, alternating which mode goes first, scored
    // per round: a busy machine phase then slows both sides of a pair
    // instead of penalizing whichever mode it happened to overlap.
    // The reported numbers come from the best (least-interfered)
    // round; the gate takes the best per-round overhead.
    let mut serial_strict_ms = f64::INFINITY;
    let mut serial_isolated_ms = f64::INFINITY;
    let mut overhead_pct = f64::INFINITY;
    for round in 0..5 {
        let timed = |isolate: bool| {
            executor.set_fault_isolation(isolate);
            let start = Instant::now();
            let profile = executor
                .run_faults(&work.campaign, work.faults.clone())
                .expect("timed run");
            let ms = start.elapsed().as_secs_f64() * 1e3;
            let who = if isolate {
                "isolated serial"
            } else {
                "strict serial"
            };
            assert_profiles_identical(&reference, &profile, who);
            ms
        };
        let (strict, isolated) = if round % 2 == 0 {
            let s = timed(false);
            (s, timed(true))
        } else {
            let i = timed(true);
            (timed(false), i)
        };
        let round_pct = (isolated - strict) / strict * 100.0;
        if round_pct < overhead_pct {
            overhead_pct = round_pct;
            serial_strict_ms = strict;
            serial_isolated_ms = isolated;
        }
    }
    executor.set_fault_isolation(true);
    // The perf gate: isolation-on must cost <= 3% over the strict
    // serial bench (plus 1 ms of slack for timer noise on runs this
    // short).
    assert!(
        serial_isolated_ms <= serial_strict_ms * 1.03 + 1.0,
        "fault isolation costs {overhead_pct:.1}% over strict \
         ({serial_isolated_ms:.1} ms vs {serial_strict_ms:.1} ms); the gate is 3%"
    );
    IsolationBench {
        faults: work.faults.len(),
        serial_strict_ms,
        serial_isolated_ms,
        overhead_pct,
    }
}

/// Process-tier pricing: the mean wall-clock of one real
/// spawned-validator start and the apache triage→confirm funnel of a
/// mixed-tier pass. `available` is `false` (and every number zero)
/// when the committed stubs were not built next to this bench.
struct ProcessBench {
    available: bool,
    proc_start_ms: f64,
    tiered_ms: f64,
    triaged: usize,
    confirmed: usize,
    funnel_ratio: f64,
}

fn process_bench(threads: usize) -> ProcessBench {
    let unavailable = ProcessBench {
        available: false,
        proc_start_ms: 0.0,
        tiered_ms: 0.0,
        triaged: 0,
        confirmed: 0,
        funnel_ratio: 0.0,
    };
    let Some(stub) = std::env::current_exe()
        .ok()
        .and_then(|exe| exe.parent().map(|dir| dir.join("conferr-stub-apachectl")))
        .filter(|stub| stub.is_file())
    else {
        return unavailable;
    };

    // Per-start cost: sandbox materialization + spawn + supervise +
    // classify, on the baseline payload the scout uses.
    let mut sut = ProcessSut::new(apachectl_spec(stub.clone()));
    let payload = default_payload(&sut);
    let deadline = Deadline::unlimited();
    for _ in 0..3 {
        assert!(matches!(
            sut.start(&payload, &deadline),
            StartOutcome::Started
        ));
    }
    let start = Instant::now();
    for _ in 0..STARTS {
        assert!(matches!(
            sut.start(&payload, &deadline),
            StartOutcome::Started
        ));
    }
    let proc_start_ms = start.elapsed().as_secs_f64() * 1e3 / STARTS as f64;

    // The mixed-tier funnel: simulator triage over the apache
    // structural load, interesting faults confirmed on the spawned
    // stub.
    let executor = CampaignExecutor::new(threads);
    let triage = ExecutorCampaign::new(sut_factory(ApacheSim::new)).expect("triage campaign");
    let confirm =
        ExecutorCampaign::new(process_factory(apachectl_spec(stub))).expect("confirm campaign");
    let faults = StructuralPlugin::new()
        .generate(triage.baseline())
        .expect("structural load");
    let start = Instant::now();
    let report = executor
        .run_tiered(&triage, &confirm, faults)
        .expect("tiered run");
    let tiered_ms = start.elapsed().as_secs_f64() * 1e3;
    ProcessBench {
        available: true,
        proc_start_ms,
        tiered_ms,
        triaged: report.triage.len(),
        confirmed: report.selected,
        funnel_ratio: report.funnel_ratio(),
    }
}

/// The sharded-scheduler section (v8): the warm 3-system batch
/// re-timed best-of-5 on the persistent pool and gated at no slower
/// than the cached serial total, a completion-batch `K` sweep (`K` =
/// 1 reproduces per-fault publication), and the static-triage fast
/// path priced against its `set_static_triage(false)` reference with
/// byte-identity and the >= 50% skip-rate gate asserted.
struct SchedulerBench {
    warm_batch_ms: f64,
    warm_vs_serial_ratio: f64,
    k_sweep: Vec<(usize, f64)>,
    triage_off_ms: f64,
    triage_on_ms: f64,
    triage_speedup: f64,
    dynamic_starts: usize,
    synthesized_starts: usize,
    skip_rate: f64,
}

fn scheduler_bench(
    workloads: &[Workload],
    references: &[ResilienceProfile],
    batch_executor: &CampaignExecutor,
    make_batch: &dyn Fn() -> CampaignBatch,
    total_serial: f64,
) -> SchedulerBench {
    // Warm 3-system batch, best of 5 rounds (the least-interfered
    // round scores, like the isolation gate): every cache and thread
    // already exists, so this is the steady-state scheduling cost the
    // sharded producer shards + batched completions pay for.
    let mut warm_batch_ms = f64::INFINITY;
    for _ in 0..5 {
        let batch = make_batch();
        let start = Instant::now();
        let profiles = batch_executor.run_batch(batch).expect("warm batch");
        warm_batch_ms = warm_batch_ms.min(start.elapsed().as_secs_f64() * 1e3);
        for (reference, profile) in references.iter().zip(&profiles) {
            assert_profiles_identical(reference, profile, "scheduler warm batch");
        }
    }
    // The v8 acceptance gate: the pooled warm batch must be no slower
    // than the cached serial total (<= 1.0x, plus 1 ms of timer
    // slack) — under the v7 global-lock scheduler the pooled executor
    // lost to serial outright.
    assert!(
        warm_batch_ms <= total_serial + 1.0,
        "warm 3-system batch {warm_batch_ms:.1} ms is slower than the cached serial \
         total {total_serial:.1} ms; the sharded scheduler must close the v7 gap"
    );

    // Completion-batch sweep: the same warm batch at each K, best of
    // 3 rounds per point, byte-identity asserted at every K.
    let mut k_sweep = Vec::new();
    for k in K_SWEEP {
        batch_executor.set_completion_batch(k);
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let batch = make_batch();
            let start = Instant::now();
            let profiles = batch_executor.run_batch(batch).expect("swept batch");
            best = best.min(start.elapsed().as_secs_f64() * 1e3);
            for (reference, profile) in references.iter().zip(&profiles) {
                assert_profiles_identical(reference, profile, "completion-batch sweep");
            }
        }
        k_sweep.push((k, best));
    }
    batch_executor.set_completion_batch(DEFAULT_COMPLETION_BATCH);

    // Static triage: the 3-system serial load with the fast path off
    // (the reference knob) and on, byte-identity asserted per system,
    // start counters summed across systems.
    let mut triage_off_ms = 0.0;
    let mut triage_on_ms = 0.0;
    let mut dynamic_starts = 0;
    let mut synthesized_starts = 0;
    for (work, reference) in workloads.iter().zip(references) {
        let timed = |triage: bool| {
            let mut sut = work.factory.create();
            let mut campaign = Campaign::new(sut.as_mut()).expect("campaign");
            campaign.set_static_triage(triage);
            let start = Instant::now();
            let profile = campaign
                .run_faults(work.faults.clone())
                .expect("triage run");
            let ms = start.elapsed().as_secs_f64() * 1e3;
            let stats = campaign.triage_stats();
            (profile, ms, stats)
        };
        let (off, off_ms, (_, off_synth)) = timed(false);
        assert_eq!(off_synth, 0, "triage off = every start dynamic");
        let (on, on_ms, (dynamic, synthesized)) = timed(true);
        assert_profiles_identical(reference, &off, "triage-off serial");
        assert_profiles_identical(reference, &on, "triaged serial");
        triage_off_ms += off_ms;
        triage_on_ms += on_ms;
        dynamic_starts += dynamic;
        synthesized_starts += synthesized;
    }
    let skip_rate = synthesized_starts as f64 / (dynamic_starts + synthesized_starts) as f64;
    // The second v8 acceptance gate: triage must cut dynamic starts
    // on the Table 1 load by at least half.
    assert!(
        skip_rate >= 0.5,
        "static triage skipped only {skip_rate:.3} of the Table 1 starts \
         ({synthesized_starts} synthesized vs {dynamic_starts} dynamic); the gate is 50%"
    );
    SchedulerBench {
        warm_batch_ms,
        warm_vs_serial_ratio: warm_batch_ms / total_serial,
        k_sweep,
        triage_off_ms,
        triage_on_ms,
        triage_speedup: triage_off_ms / triage_on_ms,
        dynamic_starts,
        synthesized_starts,
        skip_rate,
    }
}

/// The timing comparison is only meaningful if every driver computed
/// the same thing — and the caches and schedulers are only *sound* if
/// their runs are byte-identical to the uncached serial reference.
fn assert_profiles_identical(reference: &ResilienceProfile, other: &ResilienceProfile, who: &str) {
    assert_eq!(
        conferr::profile_to_json(reference),
        conferr::profile_to_json(other),
        "{who} profile diverged from the uncached serial reference"
    );
}

/// Timings (in microseconds) of one `httpd.conf` scenario apply: the
/// current path-proportional copy vs the old whole-tree deep copy.
struct ApplyBench {
    nodes: usize,
    deep_copy_us: f64,
    path_apply_us: f64,
}

fn apply_bench() -> ApplyBench {
    let (baseline, scenario) = httpd_apply_fixture();
    let tree = baseline.get("httpd.conf").expect("httpd.conf parsed");
    let nodes = tree.root().subtree_len();

    const ITERS: u32 = 2000;
    let time_us = |f: &mut dyn FnMut()| {
        // Warm up, then time.
        for _ in 0..50 {
            f();
        }
        let start = Instant::now();
        for _ in 0..ITERS {
            f();
        }
        start.elapsed().as_secs_f64() * 1e6 / f64::from(ITERS)
    };

    let deep_copy_us = time_us(&mut || {
        let copy = deep_copy_tree(tree);
        std::hint::black_box(&copy);
    });
    let path_apply_us = time_us(&mut || {
        let mutated = scenario.apply(&baseline).expect("apply");
        std::hint::black_box(&mutated);
    });
    ApplyBench {
        nodes,
        deep_copy_us,
        path_apply_us,
    }
}

fn main() {
    let repeat: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let threads: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(threads_from_env);

    println!("campaign engine, full Table 1 fault load x{repeat}, {threads} thread(s)");

    // One persistent pool for the executor profile — its workers and
    // SUT caches survive across all three systems.
    let executor = CampaignExecutor::new(threads);
    let workloads = [
        workload(sut_factory(MySqlSim::new), repeat),
        workload(sut_factory(PostgresSim::new), repeat),
        workload(sut_factory(ApacheSim::new), repeat),
    ];

    let mut rows = Vec::new();
    let mut references = Vec::new();
    for work in &workloads {
        let (row, reference) = run_system(work, threads, &executor);
        rows.push(row);
        references.push(reference);
    }

    // Batch profile, cold: all three systems through one
    // campaign-tagged queue, with *fresh* engines and a fresh pool so
    // the number measures batch-scheduling cost with every cache as
    // cold as the serial runs'. Best of 3 rounds (cold state rebuilt
    // each round, construction untimed), because this one carries a
    // gate.
    //
    // The cold gate's reference is the *parallel* total, not the
    // serial one: a multi-worker cold batch keeps one SUT (and one
    // parse cache) per worker, so each distinct mutated text parses
    // once per worker instead of once overall — work a 1-worker
    // serial run never does, and exactly the structure
    // `ParallelCampaign` shares. (The old "<= 3% vs serial" note
    // predates per-worker caches and was measured at 1 thread, where
    // the two references coincide.) Against the matching reference,
    // batch scheduling — cross-system queue, producer shards, reorder
    // windows — must be cheap.
    let total_parallel: f64 = rows.iter().map(|r| r.parallel_ms).sum();
    let mut batch_cold_ms = f64::INFINITY;
    let mut batch_executor = CampaignExecutor::new(threads);
    let mut cold_campaigns: Vec<ExecutorCampaign> = Vec::new();
    for _ in 0..3 {
        let executor = CampaignExecutor::new(threads);
        let campaigns: Vec<ExecutorCampaign> = workloads
            .iter()
            .map(|work| ExecutorCampaign::new(work.factory.clone()).expect("campaign"))
            .collect();
        let mut batch = CampaignBatch::new();
        for (work, campaign) in workloads.iter().zip(&campaigns) {
            batch.push(campaign, work.faults.clone());
        }
        let start = Instant::now();
        let batch_profiles = executor.run_batch(batch).expect("batch run");
        batch_cold_ms = batch_cold_ms.min(start.elapsed().as_secs_f64() * 1e3);
        for (reference, profile) in references.iter().zip(&batch_profiles) {
            assert_profiles_identical(reference, profile, "batch (cold)");
        }
        // The last round's pool and engines stay warm for the warm
        // rerun below.
        batch_executor = executor;
        cold_campaigns = campaigns;
    }
    let batch_vs_parallel_pct = (batch_cold_ms - total_parallel) / total_parallel * 100.0;
    assert!(
        batch_cold_ms <= total_parallel * 1.15 + 2.0,
        "cold 3-system batch {batch_cold_ms:.1} ms is {batch_vs_parallel_pct:+.1}% over the \
         parallel total {total_parallel:.1} ms; the gate is 15% (+ 2 ms timer slack)"
    );
    let make_batch = || {
        // Built (fault lists cloned) outside the timed region, like
        // every other profile's inputs.
        let mut batch = CampaignBatch::new();
        for (work, campaign) in workloads.iter().zip(&cold_campaigns) {
            batch.push(campaign, work.faults.clone());
        }
        batch
    };

    // Batch profile, warm: the identical batch resubmitted to the
    // same executor — fault memos, parse caches, SUT instances and
    // worker threads all persist. This is the steady state of a
    // table2-style many-campaign workload.
    let batch = make_batch();
    let start = Instant::now();
    let warm_profiles = batch_executor.run_batch(batch).expect("warm batch");
    let batch_warm_ms = start.elapsed().as_secs_f64() * 1e3;
    for (reference, profile) in references.iter().zip(&warm_profiles) {
        assert_profiles_identical(reference, profile, "batch (warm)");
    }

    let total_serial: f64 = rows.iter().map(|r| r.serial_ms).sum();
    let scheduler = scheduler_bench(
        &workloads,
        &references,
        &batch_executor,
        &make_batch,
        total_serial,
    );

    for row in &rows {
        println!(
            "{:<14} {:>6} faults  uncached {:>8.1} ms  serial {:>8.1} ms  pruned {:>8.1} ms  \
             parallel {:>8.1} ms  executor {:>8.1} ms  streaming {:>8.1} ms (peak buf {})  \
             cache {:>5.2}x",
            row.system,
            row.faults,
            row.serial_uncached_ms,
            row.serial_ms,
            row.serial_pruned_ms,
            row.parallel_ms,
            row.executor_ms,
            row.streaming_ms,
            row.peak_buffered,
            row.serial_uncached_ms / row.serial_ms
        );
    }
    let total_uncached: f64 = rows.iter().map(|r| r.serial_uncached_ms).sum();
    let total_pruned: f64 = rows.iter().map(|r| r.serial_pruned_ms).sum();
    let total_executor: f64 = rows.iter().map(|r| r.executor_ms).sum();
    let batch_overhead_pct = (batch_cold_ms - total_serial) / total_serial * 100.0;
    println!(
        "{:<14} {:>6}         uncached {total_uncached:>8.1} ms  serial {total_serial:>8.1} ms  \
         pruned {total_pruned:>8.1} ms  parallel {total_parallel:>8.1} ms  \
         executor {total_executor:>8.1} ms  cache {:>5.2}x  prune {:>5.2}x",
        "TOTAL",
        "",
        total_uncached / total_serial,
        total_serial / total_pruned
    );
    println!(
        "batch (all systems, one queue): cold {batch_cold_ms:.1} ms \
         ({batch_overhead_pct:+.1}% vs serial total, {batch_vs_parallel_pct:+.1}% vs parallel \
         total, gate 15%), warm rerun {batch_warm_ms:.1} ms ({:.2}x vs serial total)",
        total_serial / batch_warm_ms
    );
    if repeat == REFERENCE_REPEAT {
        println!(
            "references (same fault load, committed-run host): pre-PR-2 serial \
             {PRE_PR2_SERIAL_TOTAL_MS:.0} ms, PR 2 serial {PR2_SERIAL_TOTAL_MS:.0} ms -> \
             {:.2}x vs cached serial",
            PR2_SERIAL_TOTAL_MS / total_serial
        );
    }

    let mut sweep = String::new();
    for (k, ms) in &scheduler.k_sweep {
        let _ = write!(sweep, " K={k}: {ms:.1} ms");
    }
    println!(
        "scheduler (sharded producers, batched completions): warm batch best {:.1} ms \
         ({:.2}x vs serial total, gate <= 1.0x; v7 global lock: cold {:.0} ms, warm {:.0} ms \
         at {} threads);{sweep}",
        scheduler.warm_batch_ms,
        scheduler.warm_vs_serial_ratio,
        V7_GLOBAL_LOCK_BATCH_COLD_MS,
        V7_GLOBAL_LOCK_BATCH_WARM_MS,
        V7_REFERENCE_THREADS,
    );
    println!(
        "static triage (3-system Table 1): off {:.1} ms, on {:.1} ms ({:.2}x), \
         {} of {} starts synthesized (skip rate {:.3}, gate 0.5)",
        scheduler.triage_off_ms,
        scheduler.triage_on_ms,
        scheduler.triage_speedup,
        scheduler.synthesized_starts,
        scheduler.dynamic_starts + scheduler.synthesized_starts,
        scheduler.skip_rate,
    );

    let isolation = isolation_bench(repeat);
    println!(
        "fault isolation (serial, 1 thread, {} faults): strict {:.1} ms, \
         isolated {:.1} ms ({:+.1}%, gate 3%)",
        isolation.faults,
        isolation.serial_strict_ms,
        isolation.serial_isolated_ms,
        isolation.overhead_pct
    );

    let process = process_bench(threads);
    if process.available {
        println!(
            "process tier (apache structural load): one spawned start {:.2} ms, \
             {} triaged -> {} confirmed (funnel {:.3}) in {:.1} ms",
            process.proc_start_ms,
            process.triaged,
            process.confirmed,
            process.funnel_ratio,
            process.tiered_ms
        );
    } else {
        println!(
            "process tier: stubs not built next to this bench \
             (cargo build --release -p conferr-proc --bins) — section skipped"
        );
    }

    let smoke = million_fault_smoke(threads);
    println!(
        "streaming smoke: {} faults through a counting sink in {:.0} ms \
         ({:.0}k faults/s), peak buffered outcomes {} (window {}), \
         {} detected at startup",
        smoke.faults,
        smoke.ms,
        smoke.faults as f64 / smoke.ms,
        smoke.peak_buffered,
        smoke.window,
        smoke.detected_at_startup,
    );

    let apply = apply_bench();
    println!(
        "scenario apply on httpd.conf ({} nodes): whole-tree deep copy {:.2} us, \
         path-proportional apply {:.2} us -> {:.1}x",
        apply.nodes,
        apply.deep_copy_us,
        apply.path_apply_us,
        apply.deep_copy_us / apply.path_apply_us
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"conferr-bench-campaign/v8\",");
    let _ = writeln!(json, "  \"repeat\": {repeat},");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(
        json,
        "  \"references\": {{\"pre_pr2_serial_total_ms\": {PRE_PR2_SERIAL_TOTAL_MS}, \
         \"pr2_serial_total_ms\": {PR2_SERIAL_TOTAL_MS}, \"repeat\": {REFERENCE_REPEAT}, \
         \"note\": \"fixed trajectory anchors measured on the committed-run host: the pre-COW \
         deep-clone serial driver and the PR 2 COW serial driver (re-parse on every start)\"}},"
    );
    json.push_str("  \"systems\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"system\": \"{}\", \"faults\": {}, \"serial_uncached_ms\": {:.1}, \
             \"serial_ms\": {:.1}, \"serial_pruned_ms\": {:.1}, \"parallel_ms\": {:.1}, \
             \"executor_ms\": {:.1}, \"streaming_ms\": {:.1}, \"streaming_peak_buffered\": {}, \
             \"cache_speedup\": {:.2}, \"prune_speedup\": {:.2}}}{comma}",
            row.system,
            row.faults,
            row.serial_uncached_ms,
            row.serial_ms,
            row.serial_pruned_ms,
            row.parallel_ms,
            row.executor_ms,
            row.streaming_ms,
            row.peak_buffered,
            row.serial_uncached_ms / row.serial_ms,
            row.serial_ms / row.serial_pruned_ms
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"total\": {{\"serial_uncached_ms\": {total_uncached:.1}, \
         \"serial_ms\": {total_serial:.1}, \"serial_pruned_ms\": {total_pruned:.1}, \
         \"parallel_ms\": {total_parallel:.1}, \"executor_ms\": {total_executor:.1}, \
         \"cache_speedup\": {:.2}, \"prune_speedup\": {:.2}, \
         \"speedup_vs_pr2_serial\": {:.2}}},",
        total_uncached / total_serial,
        total_serial / total_pruned,
        PR2_SERIAL_TOTAL_MS / total_serial
    );
    let _ = writeln!(
        json,
        "  \"batch\": {{\"cold_ms\": {batch_cold_ms:.1}, \
         \"overhead_vs_serial_pct\": {batch_overhead_pct:.1}, \
         \"overhead_vs_parallel_pct\": {batch_vs_parallel_pct:.1}, \
         \"warm_ms\": {batch_warm_ms:.1}, \"warm_speedup_vs_serial\": {:.2}, \
         \"note\": \"all three systems' fault loads as one CampaignBatch: cold = fresh \
         engines and pool, best of 3 rounds, gated <= 15% over the *parallel* total — the \
         reference with the same one-SUT-cache-per-worker structure, which a multi-worker \
         cold run duplicates parse work against serial by design; warm = same batch \
         resubmitted to the persistent executor (fault memos, parse caches, SUTs and \
         threads reused); byte-identity vs the uncached serial reference asserted for \
         both\"}},",
        total_serial / batch_warm_ms
    );
    json.push_str("  \"scheduler\": {\n");
    let _ = writeln!(
        json,
        "    \"warm_batch_ms\": {:.1}, \"warm_vs_serial_ratio\": {:.2},",
        scheduler.warm_batch_ms, scheduler.warm_vs_serial_ratio
    );
    let _ = writeln!(
        json,
        "    \"v7_global_lock\": {{\"executor_total_ms\": {V7_GLOBAL_LOCK_EXECUTOR_TOTAL_MS}, \
         \"batch_cold_ms\": {V7_GLOBAL_LOCK_BATCH_COLD_MS}, \
         \"batch_warm_ms\": {V7_GLOBAL_LOCK_BATCH_WARM_MS}, \
         \"threads\": {V7_REFERENCE_THREADS}, \
         \"note\": \"fixed anchors measured on the committed-run host before sharding: one \
         global producer mutex and one progress lock serialized every claim, completion and \
         drain\"}},"
    );
    json.push_str("    \"completion_batch_sweep\": [");
    for (i, (k, ms)) in scheduler.k_sweep.iter().enumerate() {
        let comma = if i + 1 < scheduler.k_sweep.len() {
            ", "
        } else {
            ""
        };
        let _ = write!(json, "{{\"k\": {k}, \"warm_batch_ms\": {ms:.1}}}{comma}");
    }
    json.push_str("],\n");
    let _ = writeln!(
        json,
        "    \"triage\": {{\"off_ms\": {:.1}, \"on_ms\": {:.1}, \"speedup\": {:.2}, \
         \"dynamic_starts\": {}, \"synthesized_starts\": {}, \"skip_rate\": {:.3}, \
         \"note\": \"3-system serial Table 1 load with the static-triage fast path off (the \
         reference knob) and on: WillFail* verdicts synthesize DetectedAtStartup, \
         SemanticallySilent synthesizes a warning-free Undetected, everything else starts \
         dynamically; byte-identity asserted per system and skip_rate gated >= 0.5\"}},",
        scheduler.triage_off_ms,
        scheduler.triage_on_ms,
        scheduler.triage_speedup,
        scheduler.dynamic_starts,
        scheduler.synthesized_starts,
        scheduler.skip_rate
    );
    let _ = writeln!(
        json,
        "    \"note\": \"per-entry producer shards + atomic entry cursor + drain-every-K \
         completion batching: warm_batch_ms is the best of 5 warm 3-system batches on the \
         persistent pool, gated no slower than the cached serial total; the K sweep re-times \
         the same batch at each completion-batch size (K = 1 reproduces the per-fault \
         publication the global-lock scheduler paid)\"\n  }},"
    );
    let _ = writeln!(
        json,
        "  \"isolation\": {{\"faults\": {}, \"serial_strict_ms\": {:.1}, \
         \"serial_isolated_ms\": {:.1}, \"overhead_pct\": {:.1}, \
         \"note\": \"the same serial 1-thread MySQL workload with fault isolation off \
         (strict mode: panics poison the run) and on (the default: per-fault catch_unwind, \
         deadline bookkeeping, retry/quarantine plumbing), min of 3 runs each on a warmed \
         pool; the binary asserts isolated <= strict x 1.03\"}},",
        isolation.faults,
        isolation.serial_strict_ms,
        isolation.serial_isolated_ms,
        isolation.overhead_pct
    );
    if process.available {
        let _ = writeln!(
            json,
            "  \"process\": {{\"available\": true, \"proc_start_ms\": {:.2}, \
             \"tiered_ms\": {:.1}, \"triaged\": {}, \"confirmed\": {}, \
             \"funnel_ratio\": {:.3}, \
             \"note\": \"the process tier priced against the committed conferr-stub-apachectl: \
             proc_start_ms is the mean of {STARTS} baseline starts (sandbox materialization + \
             spawn + supervision + exit/stderr classification); the funnel is a run_tiered pass \
             over the apache structural load — simulator triage, interesting faults confirmed \
             on the spawned stub\"}},",
            process.proc_start_ms,
            process.tiered_ms,
            process.triaged,
            process.confirmed,
            process.funnel_ratio
        );
    } else {
        let _ = writeln!(
            json,
            "  \"process\": {{\"available\": false, \
             \"note\": \"stub binaries not built next to this bench; run \
             cargo build --release -p conferr-proc --bins first\"}},"
        );
    }
    let _ = writeln!(
        json,
        "  \"streaming_smoke\": {{\"faults\": {}, \"ms\": {:.0}, \"faults_per_sec\": {:.0}, \
         \"peak_buffered\": {}, \"window\": {}, \"threads\": {threads}, \
         \"note\": \"a lazily enumerated space of 10^6 compound faults (MySQL Table 1 load \
         crossed with itself twice, seeded 90% sample, capped) streamed into a counting \
         sink: the fault space is never materialized, no outcome is retained, and the \
         executor's reorder buffer is asserted to stay within chunk_size x threads\"}},",
        smoke.faults,
        smoke.ms,
        smoke.faults as f64 / (smoke.ms / 1e3),
        smoke.peak_buffered,
        smoke.window,
    );
    let _ = writeln!(
        json,
        "  \"apply\": {{\"file\": \"httpd.conf\", \"nodes\": {}, \"deep_copy_us\": {:.2}, \
         \"path_apply_us\": {:.2}, \"speedup\": {:.1}, \
         \"note\": \"one value-typo FaultScenario::apply (Arc-backed path copy) vs the \
         whole-tree deep copy it replaced\"}}",
        apply.nodes,
        apply.deep_copy_us,
        apply.path_apply_us,
        apply.deep_copy_us / apply.path_apply_us
    );
    json.push_str("}\n");
    std::fs::write("BENCH_campaign.json", &json).expect("write BENCH_campaign.json");
    println!("wrote BENCH_campaign.json");
}
