//! Machine-readable campaign-engine timings — the repo's perf
//! trajectory anchor.
//!
//! Runs the full §5.2 fault load (Table 1 protocol: every-directive
//! deletion plus sampled name/value typos) against MySQL, Postgres
//! and Apache, `repeat` times over, through five configurations:
//!
//! * **serial uncached** — one `Campaign`, one SUT, parse caching
//!   disabled: the reference cold path (every `start` re-parses its
//!   configuration from text, as the pre-PR-3 drivers always did);
//! * **serial** — the same campaign with the SUTs' content-addressed
//!   `ParseCache` on: unchanged files parse once, repeated mutated
//!   texts parse once;
//! * **serial pruned** — the cached serial campaign with test-impact
//!   pruning on: functional tests whose schema-declared read-set is
//!   provably disjoint from a fault's statically derived touch map
//!   are skipped (v5);
//! * **parallel** — `ParallelCampaign`, one worker and one SUT
//!   instance (with its own cache) per thread, outcomes merged in
//!   fault order;
//! * **executor** — one persistent `CampaignExecutor` shared by all
//!   three systems: worker threads and per-worker SUT caches are
//!   constructed once and reused across every `run_faults` call;
//! * **batch** — all three systems' fault loads as **one**
//!   `CampaignBatch`, drained off a single campaign-tagged queue
//!   (cross-system work stealing), timed cold (fresh engines and
//!   pool) and warm (resubmitted to the persistent executor);
//! * **streaming** — the same fault load pulled from a live
//!   `FaultSource` chunk by chunk and drained into an `OutcomeSink`
//!   through the executor's bounded reorder window, with the observed
//!   peak buffering asserted against the `chunk × threads` bound.
//!
//! All profiles are asserted **byte-identical** before any timing is
//! reported — caches, the pool, the batch scheduler, the streaming
//! pipeline and test-impact pruning must be pure wall-clock/memory
//! optimisations — then the numbers go to `BENCH_campaign.json`
//! (schema v7). A dedicated **isolation** section times the same
//! serial 1-thread workload in strict mode (no `catch_unwind`, panics
//! poison) and in the default isolated mode (per-fault `catch_unwind`
//! plus watchdog bookkeeping) over five back-to-back pairs, and gates
//! the isolated run at <= 3% over strict — fault isolation must be a
//! safety net, not a tax. The
//! parallel/executor/batch speedups scale with core count; on a
//! single-core machine they only measure scheduling overhead (and the
//! batch profile exercises the executor's serial fast path). A
//! **process** section (v7) prices the process tier: the mean
//! wall-clock of one real spawned-validator start (`proc_start_ms`,
//! sandbox materialization + spawn + supervise + classify, measured
//! against the committed `conferr-stub-apachectl`) and the apache
//! triage→confirm funnel ratio of a mixed-tier `run_tiered` pass; it
//! degrades to `"available": false` when the stub binaries were not
//! built alongside this bench. Two
//! closing benches: a **million-fault smoke run** — a lazily
//! enumerated ≥10^6-fault space streamed into a counting sink, never
//! buffering more than the streaming window — and the
//! `FaultScenario::apply` microbench against a whole-tree deep copy.
//!
//! ```text
//! cargo run --release -p conferr-bench --bin bench_campaign [repeat] [threads]
//! ```
//!
//! `threads` defaults to `CONFERR_THREADS` (or the machine's
//! parallelism). CI runs this binary with `CONFERR_THREADS=2` as a
//! byte-identity gate: any profile diverging from the uncached serial
//! reference — or a streaming window overrun — aborts with a failing
//! assertion.

use std::fmt::Write as _;
use std::time::Instant;

use conferr::{
    sut_factory, Campaign, CampaignBatch, CampaignExecutor, CollectingSink, CountingSink,
    ExecutorCampaign, ParallelCampaign, ResilienceProfile, SutFactory,
};
use conferr_bench::{
    deep_copy_tree, httpd_apply_fixture, million_fault_source, table1_faultload, threads_from_env,
    DEFAULT_SEED,
};
use conferr_keyboard::Keyboard;
use conferr_model::{EagerSource, ErrorGenerator, GeneratedFault};
use conferr_plugins::StructuralPlugin;
use conferr_proc::{apachectl_spec, process_factory, ProcessSut};
use conferr_sut::{
    default_payload, ApacheSim, Deadline, MySqlSim, PostgresSim, StartOutcome, SystemUnderTest,
};

/// Fixed reference points of the trajectory, all measured on the
/// committed-run host at `repeat` = 20:
///
/// * pre-PR-2: the deep-clone-everything, serialize-everything serial
///   driver;
/// * PR 2: the copy-on-write engine with cached baseline
///   serialization, still re-parsing every configuration at every
///   `start` (what "serial uncached" reproduces today).
const PRE_PR2_SERIAL_TOTAL_MS: f64 = 1440.0;
const PR2_SERIAL_TOTAL_MS: f64 = 1430.0;
const REFERENCE_REPEAT: usize = 20;

/// Faults in the bounded-memory streaming smoke run.
const SMOKE_TARGET: usize = 1_000_000;

/// Baseline starts averaged for the process tier's per-start price.
const STARTS: usize = 20;

/// Timing row for one system.
struct Row {
    system: String,
    faults: usize,
    serial_uncached_ms: f64,
    serial_ms: f64,
    serial_pruned_ms: f64,
    parallel_ms: f64,
    executor_ms: f64,
    streaming_ms: f64,
    peak_buffered: usize,
}

/// One system's prepared workload: factory, shared campaign, and the
/// repeated §5.2 fault load.
struct Workload {
    factory: SutFactory,
    campaign: ExecutorCampaign,
    faults: Vec<GeneratedFault>,
}

fn workload(factory: SutFactory, repeat: usize) -> Workload {
    let keyboard = Keyboard::qwerty_us();
    let campaign = ExecutorCampaign::new(factory.clone()).expect("campaign");
    let one = table1_faultload(campaign.baseline(), &keyboard, DEFAULT_SEED);
    let mut faults = Vec::with_capacity(one.len() * repeat);
    for _ in 0..repeat {
        faults.extend(one.iter().cloned());
    }
    Workload {
        factory,
        campaign,
        faults,
    }
}

/// One timed serial run over `faults` with every cache layer (the
/// SUT's parse cache and the engine's fault memo) on or off, and
/// test-impact pruning controlled independently so the pruned and
/// unpruned cached profiles are separable.
fn timed_serial(
    factory: &SutFactory,
    faults: Vec<GeneratedFault>,
    caching: bool,
    pruning: bool,
) -> (ResilienceProfile, f64) {
    let mut sut = factory.create();
    sut.set_parse_caching(caching);
    let mut campaign = Campaign::new(sut.as_mut()).expect("campaign");
    campaign.set_fault_memoization(caching);
    campaign.set_impact_pruning(pruning);
    let start = Instant::now();
    let profile = campaign.run_faults(faults).expect("serial run");
    (profile, start.elapsed().as_secs_f64() * 1e3)
}

fn run_system(
    work: &Workload,
    threads: usize,
    executor: &CampaignExecutor,
) -> (Row, ResilienceProfile) {
    let system = work.campaign.system().to_string();
    let n = work.faults.len();

    let (uncached, serial_uncached_ms) =
        timed_serial(&work.factory, work.faults.clone(), false, false);
    let (serial, serial_ms) = timed_serial(&work.factory, work.faults.clone(), true, false);
    let (pruned, serial_pruned_ms) = timed_serial(&work.factory, work.faults.clone(), true, true);

    let parallel_campaign = ParallelCampaign::new(work.factory.clone())
        .expect("campaign")
        .with_threads(threads);
    let start = Instant::now();
    let parallel = parallel_campaign
        .run_faults(work.faults.clone())
        .expect("parallel run");
    let parallel_ms = start.elapsed().as_secs_f64() * 1e3;

    // The persistent pool: threads and per-worker SUT caches already
    // exist (warmed by earlier systems/submissions).
    let start = Instant::now();
    let exec_profile = executor
        .run_faults(&work.campaign, work.faults.clone())
        .expect("executor run");
    let executor_ms = start.elapsed().as_secs_f64() * 1e3;

    // Streaming: the same load pulled from a live source chunk by
    // chunk and drained through the bounded reorder window into a
    // sink — the v4 profile. The source adapter is built outside the
    // timed region, like every other profile's inputs.
    let source = Box::new(EagerSource::new(work.faults.clone()));
    let mut sink = CollectingSink::with_capacity(n);
    let start = Instant::now();
    let stats = executor
        .run_source(&work.campaign, source, &mut sink)
        .expect("streaming run");
    let streaming_ms = start.elapsed().as_secs_f64() * 1e3;
    let streamed = sink.into_profile(work.campaign.system());
    let window = executor.chunk_size() * executor.threads();
    assert!(
        stats.peak_buffered <= window,
        "streaming buffered {} outcomes, window is {window}",
        stats.peak_buffered
    );

    assert_profiles_identical(&uncached, &serial, "cached serial");
    assert_profiles_identical(&uncached, &pruned, "impact-pruned serial");
    assert_profiles_identical(&uncached, &parallel, "parallel");
    assert_profiles_identical(&uncached, &exec_profile, "executor");
    assert_profiles_identical(&uncached, &streamed, "streaming");
    (
        Row {
            system,
            faults: n,
            serial_uncached_ms,
            serial_ms,
            serial_pruned_ms,
            parallel_ms,
            executor_ms,
            streaming_ms,
            peak_buffered: stats.peak_buffered,
        },
        uncached,
    )
}

/// The bounded-memory smoke: a lazily enumerated space of
/// [`SMOKE_TARGET`] compound faults (the MySQL Table 1 load crossed
/// with itself twice, sampled and capped — see
/// [`million_fault_source`]) streamed into a counting sink. The fault
/// space is never materialized, no outcome is retained, and the
/// executor's reorder buffer is asserted to stay within the
/// `chunk × threads` window.
struct SmokeBench {
    faults: usize,
    ms: f64,
    peak_buffered: usize,
    window: usize,
    detected_at_startup: usize,
}

fn million_fault_smoke(threads: usize) -> SmokeBench {
    let keyboard = Keyboard::qwerty_us();
    let campaign = ExecutorCampaign::new(sut_factory(MySqlSim::new)).expect("campaign");
    // A million *distinct* edit lists would only thrash the engine's
    // bounded fault memo; the smoke measures the uncached pipeline.
    campaign.set_fault_memoization(false);
    let base = table1_faultload(campaign.baseline(), &keyboard, DEFAULT_SEED);
    let source = million_fault_source(base, SMOKE_TARGET);

    let executor = CampaignExecutor::new(threads);
    let window = executor.chunk_size() * executor.threads();
    let mut sink = CountingSink::new();
    let start = Instant::now();
    let stats = executor
        .run_source(&campaign, Box::new(source), &mut sink)
        .expect("smoke run");
    let ms = start.elapsed().as_secs_f64() * 1e3;

    let summary = sink.summary();
    assert_eq!(
        stats.outcomes, SMOKE_TARGET,
        "the space holds >= 10^6 faults"
    );
    assert_eq!(summary.total, SMOKE_TARGET);
    assert!(
        stats.peak_buffered <= window,
        "smoke buffered {} outcomes, window is {window}",
        stats.peak_buffered
    );
    SmokeBench {
        faults: SMOKE_TARGET,
        ms,
        peak_buffered: stats.peak_buffered,
        window,
        detected_at_startup: summary.detected_at_startup,
    }
}

/// Strict vs isolated serial executor timings over one system's
/// repeated Table 1 load — the cost of the per-fault `catch_unwind`
/// boundary, deadline bookkeeping and retry plumbing when nothing
/// ever goes wrong.
struct IsolationBench {
    faults: usize,
    serial_strict_ms: f64,
    serial_isolated_ms: f64,
    overhead_pct: f64,
}

fn isolation_bench(repeat: usize) -> IsolationBench {
    // Floor the workload: a warmed serial run is sub-millisecond per
    // few hundred faults, and a 3% gate needs more signal than that.
    let work = workload(sut_factory(MySqlSim::new), repeat.max(50));
    let executor = CampaignExecutor::new(1);
    // Warm the pool, the worker's SUT cache and the engine's fault
    // memo once so both modes time the same steady state.
    let reference = executor
        .run_faults(&work.campaign, work.faults.clone())
        .expect("warm-up run");

    // Back-to-back pairs, alternating which mode goes first, scored
    // per round: a busy machine phase then slows both sides of a pair
    // instead of penalizing whichever mode it happened to overlap.
    // The reported numbers come from the best (least-interfered)
    // round; the gate takes the best per-round overhead.
    let mut serial_strict_ms = f64::INFINITY;
    let mut serial_isolated_ms = f64::INFINITY;
    let mut overhead_pct = f64::INFINITY;
    for round in 0..5 {
        let timed = |isolate: bool| {
            executor.set_fault_isolation(isolate);
            let start = Instant::now();
            let profile = executor
                .run_faults(&work.campaign, work.faults.clone())
                .expect("timed run");
            let ms = start.elapsed().as_secs_f64() * 1e3;
            let who = if isolate {
                "isolated serial"
            } else {
                "strict serial"
            };
            assert_profiles_identical(&reference, &profile, who);
            ms
        };
        let (strict, isolated) = if round % 2 == 0 {
            let s = timed(false);
            (s, timed(true))
        } else {
            let i = timed(true);
            (timed(false), i)
        };
        let round_pct = (isolated - strict) / strict * 100.0;
        if round_pct < overhead_pct {
            overhead_pct = round_pct;
            serial_strict_ms = strict;
            serial_isolated_ms = isolated;
        }
    }
    executor.set_fault_isolation(true);
    // The perf gate: isolation-on must cost <= 3% over the strict
    // serial bench (plus 1 ms of slack for timer noise on runs this
    // short).
    assert!(
        serial_isolated_ms <= serial_strict_ms * 1.03 + 1.0,
        "fault isolation costs {overhead_pct:.1}% over strict \
         ({serial_isolated_ms:.1} ms vs {serial_strict_ms:.1} ms); the gate is 3%"
    );
    IsolationBench {
        faults: work.faults.len(),
        serial_strict_ms,
        serial_isolated_ms,
        overhead_pct,
    }
}

/// Process-tier pricing: the mean wall-clock of one real
/// spawned-validator start and the apache triage→confirm funnel of a
/// mixed-tier pass. `available` is `false` (and every number zero)
/// when the committed stubs were not built next to this bench.
struct ProcessBench {
    available: bool,
    proc_start_ms: f64,
    tiered_ms: f64,
    triaged: usize,
    confirmed: usize,
    funnel_ratio: f64,
}

fn process_bench(threads: usize) -> ProcessBench {
    let unavailable = ProcessBench {
        available: false,
        proc_start_ms: 0.0,
        tiered_ms: 0.0,
        triaged: 0,
        confirmed: 0,
        funnel_ratio: 0.0,
    };
    let Some(stub) = std::env::current_exe()
        .ok()
        .and_then(|exe| exe.parent().map(|dir| dir.join("conferr-stub-apachectl")))
        .filter(|stub| stub.is_file())
    else {
        return unavailable;
    };

    // Per-start cost: sandbox materialization + spawn + supervise +
    // classify, on the baseline payload the scout uses.
    let mut sut = ProcessSut::new(apachectl_spec(stub.clone()));
    let payload = default_payload(&sut);
    let deadline = Deadline::unlimited();
    for _ in 0..3 {
        assert!(matches!(
            sut.start(&payload, &deadline),
            StartOutcome::Started
        ));
    }
    let start = Instant::now();
    for _ in 0..STARTS {
        assert!(matches!(
            sut.start(&payload, &deadline),
            StartOutcome::Started
        ));
    }
    let proc_start_ms = start.elapsed().as_secs_f64() * 1e3 / STARTS as f64;

    // The mixed-tier funnel: simulator triage over the apache
    // structural load, interesting faults confirmed on the spawned
    // stub.
    let executor = CampaignExecutor::new(threads);
    let triage = ExecutorCampaign::new(sut_factory(ApacheSim::new)).expect("triage campaign");
    let confirm =
        ExecutorCampaign::new(process_factory(apachectl_spec(stub))).expect("confirm campaign");
    let faults = StructuralPlugin::new()
        .generate(triage.baseline())
        .expect("structural load");
    let start = Instant::now();
    let report = executor
        .run_tiered(&triage, &confirm, faults)
        .expect("tiered run");
    let tiered_ms = start.elapsed().as_secs_f64() * 1e3;
    ProcessBench {
        available: true,
        proc_start_ms,
        tiered_ms,
        triaged: report.triage.len(),
        confirmed: report.selected,
        funnel_ratio: report.funnel_ratio(),
    }
}

/// The timing comparison is only meaningful if every driver computed
/// the same thing — and the caches and schedulers are only *sound* if
/// their runs are byte-identical to the uncached serial reference.
fn assert_profiles_identical(reference: &ResilienceProfile, other: &ResilienceProfile, who: &str) {
    assert_eq!(
        conferr::profile_to_json(reference),
        conferr::profile_to_json(other),
        "{who} profile diverged from the uncached serial reference"
    );
}

/// Timings (in microseconds) of one `httpd.conf` scenario apply: the
/// current path-proportional copy vs the old whole-tree deep copy.
struct ApplyBench {
    nodes: usize,
    deep_copy_us: f64,
    path_apply_us: f64,
}

fn apply_bench() -> ApplyBench {
    let (baseline, scenario) = httpd_apply_fixture();
    let tree = baseline.get("httpd.conf").expect("httpd.conf parsed");
    let nodes = tree.root().subtree_len();

    const ITERS: u32 = 2000;
    let time_us = |f: &mut dyn FnMut()| {
        // Warm up, then time.
        for _ in 0..50 {
            f();
        }
        let start = Instant::now();
        for _ in 0..ITERS {
            f();
        }
        start.elapsed().as_secs_f64() * 1e6 / f64::from(ITERS)
    };

    let deep_copy_us = time_us(&mut || {
        let copy = deep_copy_tree(tree);
        std::hint::black_box(&copy);
    });
    let path_apply_us = time_us(&mut || {
        let mutated = scenario.apply(&baseline).expect("apply");
        std::hint::black_box(&mutated);
    });
    ApplyBench {
        nodes,
        deep_copy_us,
        path_apply_us,
    }
}

fn main() {
    let repeat: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let threads: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(threads_from_env);

    println!("campaign engine, full Table 1 fault load x{repeat}, {threads} thread(s)");

    // One persistent pool for the executor profile — its workers and
    // SUT caches survive across all three systems.
    let executor = CampaignExecutor::new(threads);
    let workloads = [
        workload(sut_factory(MySqlSim::new), repeat),
        workload(sut_factory(PostgresSim::new), repeat),
        workload(sut_factory(ApacheSim::new), repeat),
    ];

    let mut rows = Vec::new();
    let mut references = Vec::new();
    for work in &workloads {
        let (row, reference) = run_system(work, threads, &executor);
        rows.push(row);
        references.push(reference);
    }

    // Batch profile, cold: all three systems through one
    // campaign-tagged queue, with *fresh* engines and a fresh pool so
    // the number measures pure batch-scheduling overhead against the
    // cached serial total (every cache starts as cold as the serial
    // runs').
    let batch_executor = CampaignExecutor::new(threads);
    let cold_campaigns: Vec<ExecutorCampaign> = workloads
        .iter()
        .map(|work| ExecutorCampaign::new(work.factory.clone()).expect("campaign"))
        .collect();
    let make_batch = || {
        // Built (fault lists cloned) outside the timed region, like
        // every other profile's inputs.
        let mut batch = CampaignBatch::new();
        for (work, campaign) in workloads.iter().zip(&cold_campaigns) {
            batch.push(campaign, work.faults.clone());
        }
        batch
    };
    let batch = make_batch();
    let start = Instant::now();
    let batch_profiles = batch_executor.run_batch(batch).expect("batch run");
    let batch_cold_ms = start.elapsed().as_secs_f64() * 1e3;
    for (reference, profile) in references.iter().zip(&batch_profiles) {
        assert_profiles_identical(reference, profile, "batch (cold)");
    }

    // Batch profile, warm: the identical batch resubmitted to the
    // same executor — fault memos, parse caches, SUT instances and
    // worker threads all persist. This is the steady state of a
    // table2-style many-campaign workload.
    let batch = make_batch();
    let start = Instant::now();
    let warm_profiles = batch_executor.run_batch(batch).expect("warm batch");
    let batch_warm_ms = start.elapsed().as_secs_f64() * 1e3;
    for (reference, profile) in references.iter().zip(&warm_profiles) {
        assert_profiles_identical(reference, profile, "batch (warm)");
    }

    for row in &rows {
        println!(
            "{:<14} {:>6} faults  uncached {:>8.1} ms  serial {:>8.1} ms  pruned {:>8.1} ms  \
             parallel {:>8.1} ms  executor {:>8.1} ms  streaming {:>8.1} ms (peak buf {})  \
             cache {:>5.2}x",
            row.system,
            row.faults,
            row.serial_uncached_ms,
            row.serial_ms,
            row.serial_pruned_ms,
            row.parallel_ms,
            row.executor_ms,
            row.streaming_ms,
            row.peak_buffered,
            row.serial_uncached_ms / row.serial_ms
        );
    }
    let total_uncached: f64 = rows.iter().map(|r| r.serial_uncached_ms).sum();
    let total_serial: f64 = rows.iter().map(|r| r.serial_ms).sum();
    let total_pruned: f64 = rows.iter().map(|r| r.serial_pruned_ms).sum();
    let total_parallel: f64 = rows.iter().map(|r| r.parallel_ms).sum();
    let total_executor: f64 = rows.iter().map(|r| r.executor_ms).sum();
    let batch_overhead_pct = (batch_cold_ms - total_serial) / total_serial * 100.0;
    println!(
        "{:<14} {:>6}         uncached {total_uncached:>8.1} ms  serial {total_serial:>8.1} ms  \
         pruned {total_pruned:>8.1} ms  parallel {total_parallel:>8.1} ms  \
         executor {total_executor:>8.1} ms  cache {:>5.2}x  prune {:>5.2}x",
        "TOTAL",
        "",
        total_uncached / total_serial,
        total_serial / total_pruned
    );
    println!(
        "batch (all systems, one queue): cold {batch_cold_ms:.1} ms \
         ({batch_overhead_pct:+.1}% vs serial total), warm rerun {batch_warm_ms:.1} ms \
         ({:.2}x vs serial total)",
        total_serial / batch_warm_ms
    );
    if repeat == REFERENCE_REPEAT {
        println!(
            "references (same fault load, committed-run host): pre-PR-2 serial \
             {PRE_PR2_SERIAL_TOTAL_MS:.0} ms, PR 2 serial {PR2_SERIAL_TOTAL_MS:.0} ms -> \
             {:.2}x vs cached serial",
            PR2_SERIAL_TOTAL_MS / total_serial
        );
    }

    let isolation = isolation_bench(repeat);
    println!(
        "fault isolation (serial, 1 thread, {} faults): strict {:.1} ms, \
         isolated {:.1} ms ({:+.1}%, gate 3%)",
        isolation.faults,
        isolation.serial_strict_ms,
        isolation.serial_isolated_ms,
        isolation.overhead_pct
    );

    let process = process_bench(threads);
    if process.available {
        println!(
            "process tier (apache structural load): one spawned start {:.2} ms, \
             {} triaged -> {} confirmed (funnel {:.3}) in {:.1} ms",
            process.proc_start_ms,
            process.triaged,
            process.confirmed,
            process.funnel_ratio,
            process.tiered_ms
        );
    } else {
        println!(
            "process tier: stubs not built next to this bench \
             (cargo build --release -p conferr-proc --bins) — section skipped"
        );
    }

    let smoke = million_fault_smoke(threads);
    println!(
        "streaming smoke: {} faults through a counting sink in {:.0} ms \
         ({:.0}k faults/s), peak buffered outcomes {} (window {}), \
         {} detected at startup",
        smoke.faults,
        smoke.ms,
        smoke.faults as f64 / smoke.ms,
        smoke.peak_buffered,
        smoke.window,
        smoke.detected_at_startup,
    );

    let apply = apply_bench();
    println!(
        "scenario apply on httpd.conf ({} nodes): whole-tree deep copy {:.2} us, \
         path-proportional apply {:.2} us -> {:.1}x",
        apply.nodes,
        apply.deep_copy_us,
        apply.path_apply_us,
        apply.deep_copy_us / apply.path_apply_us
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"conferr-bench-campaign/v7\",");
    let _ = writeln!(json, "  \"repeat\": {repeat},");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(
        json,
        "  \"references\": {{\"pre_pr2_serial_total_ms\": {PRE_PR2_SERIAL_TOTAL_MS}, \
         \"pr2_serial_total_ms\": {PR2_SERIAL_TOTAL_MS}, \"repeat\": {REFERENCE_REPEAT}, \
         \"note\": \"fixed trajectory anchors measured on the committed-run host: the pre-COW \
         deep-clone serial driver and the PR 2 COW serial driver (re-parse on every start)\"}},"
    );
    json.push_str("  \"systems\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"system\": \"{}\", \"faults\": {}, \"serial_uncached_ms\": {:.1}, \
             \"serial_ms\": {:.1}, \"serial_pruned_ms\": {:.1}, \"parallel_ms\": {:.1}, \
             \"executor_ms\": {:.1}, \"streaming_ms\": {:.1}, \"streaming_peak_buffered\": {}, \
             \"cache_speedup\": {:.2}, \"prune_speedup\": {:.2}}}{comma}",
            row.system,
            row.faults,
            row.serial_uncached_ms,
            row.serial_ms,
            row.serial_pruned_ms,
            row.parallel_ms,
            row.executor_ms,
            row.streaming_ms,
            row.peak_buffered,
            row.serial_uncached_ms / row.serial_ms,
            row.serial_ms / row.serial_pruned_ms
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"total\": {{\"serial_uncached_ms\": {total_uncached:.1}, \
         \"serial_ms\": {total_serial:.1}, \"serial_pruned_ms\": {total_pruned:.1}, \
         \"parallel_ms\": {total_parallel:.1}, \"executor_ms\": {total_executor:.1}, \
         \"cache_speedup\": {:.2}, \"prune_speedup\": {:.2}, \
         \"speedup_vs_pr2_serial\": {:.2}}},",
        total_uncached / total_serial,
        total_serial / total_pruned,
        PR2_SERIAL_TOTAL_MS / total_serial
    );
    let _ = writeln!(
        json,
        "  \"batch\": {{\"cold_ms\": {batch_cold_ms:.1}, \
         \"overhead_vs_serial_pct\": {batch_overhead_pct:.1}, \
         \"warm_ms\": {batch_warm_ms:.1}, \"warm_speedup_vs_serial\": {:.2}, \
         \"note\": \"all three systems' fault loads as one CampaignBatch: cold = fresh \
         engines and pool (pure scheduling overhead vs cached serial), warm = same batch \
         resubmitted to the persistent executor (fault memos, parse caches, SUTs and \
         threads reused); byte-identity vs the uncached serial reference asserted for \
         both\"}},",
        total_serial / batch_warm_ms
    );
    let _ = writeln!(
        json,
        "  \"isolation\": {{\"faults\": {}, \"serial_strict_ms\": {:.1}, \
         \"serial_isolated_ms\": {:.1}, \"overhead_pct\": {:.1}, \
         \"note\": \"the same serial 1-thread MySQL workload with fault isolation off \
         (strict mode: panics poison the run) and on (the default: per-fault catch_unwind, \
         deadline bookkeeping, retry/quarantine plumbing), min of 3 runs each on a warmed \
         pool; the binary asserts isolated <= strict x 1.03\"}},",
        isolation.faults,
        isolation.serial_strict_ms,
        isolation.serial_isolated_ms,
        isolation.overhead_pct
    );
    if process.available {
        let _ = writeln!(
            json,
            "  \"process\": {{\"available\": true, \"proc_start_ms\": {:.2}, \
             \"tiered_ms\": {:.1}, \"triaged\": {}, \"confirmed\": {}, \
             \"funnel_ratio\": {:.3}, \
             \"note\": \"the process tier priced against the committed conferr-stub-apachectl: \
             proc_start_ms is the mean of {STARTS} baseline starts (sandbox materialization + \
             spawn + supervision + exit/stderr classification); the funnel is a run_tiered pass \
             over the apache structural load — simulator triage, interesting faults confirmed \
             on the spawned stub\"}},",
            process.proc_start_ms,
            process.tiered_ms,
            process.triaged,
            process.confirmed,
            process.funnel_ratio
        );
    } else {
        let _ = writeln!(
            json,
            "  \"process\": {{\"available\": false, \
             \"note\": \"stub binaries not built next to this bench; run \
             cargo build --release -p conferr-proc --bins first\"}},"
        );
    }
    let _ = writeln!(
        json,
        "  \"streaming_smoke\": {{\"faults\": {}, \"ms\": {:.0}, \"faults_per_sec\": {:.0}, \
         \"peak_buffered\": {}, \"window\": {}, \"threads\": {threads}, \
         \"note\": \"a lazily enumerated space of 10^6 compound faults (MySQL Table 1 load \
         crossed with itself twice, seeded 90% sample, capped) streamed into a counting \
         sink: the fault space is never materialized, no outcome is retained, and the \
         executor's reorder buffer is asserted to stay within chunk_size x threads\"}},",
        smoke.faults,
        smoke.ms,
        smoke.faults as f64 / (smoke.ms / 1e3),
        smoke.peak_buffered,
        smoke.window,
    );
    let _ = writeln!(
        json,
        "  \"apply\": {{\"file\": \"httpd.conf\", \"nodes\": {}, \"deep_copy_us\": {:.2}, \
         \"path_apply_us\": {:.2}, \"speedup\": {:.1}, \
         \"note\": \"one value-typo FaultScenario::apply (Arc-backed path copy) vs the \
         whole-tree deep copy it replaced\"}}",
        apply.nodes,
        apply.deep_copy_us,
        apply.path_apply_us,
        apply.deep_copy_us / apply.path_apply_us
    );
    json.push_str("}\n");
    std::fs::write("BENCH_campaign.json", &json).expect("write BENCH_campaign.json");
    println!("wrote BENCH_campaign.json");
}
