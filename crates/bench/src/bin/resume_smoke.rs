//! Kill-and-resume smoke: a *real* process death in the middle of a
//! streamed campaign, recovered from the on-disk checkpoint journal.
//!
//! The integration suite proves resume identity in-process; this
//! binary proves it across an actual `std::process::exit` — no `Drop`
//! runs, no final journal record is written, the OS closes the files.
//!
//! ```text
//! cargo run --release -p conferr-bench --bin resume_smoke
//! ```
//!
//! The driver (no arguments) runs three phases:
//!
//! 1. an uninterrupted in-process reference run, exported as JSONL;
//! 2. a child process (`--child <dir> <kill_after>`, this same
//!    binary) streaming the same fault load through a
//!    `CheckpointSink`-wrapped `JsonlSink`, hard-exiting mid-campaign
//!    after `kill_after` outcomes — deliberately *between* checkpoint
//!    intervals;
//! 3. recovery: `Checkpoint::from_journal` over the child's journal
//!    file, then `CampaignExecutor::resume_from` continuing into a
//!    fresh JSONL sink.
//!
//! The smoke passes iff the first `completed` lines of the killed
//! run's JSONL plus the resumed run's JSONL are **byte-identical** to
//! the uninterrupted reference, and the resumed final checkpoint
//! carries the reference summary. CI runs this after the robustness
//! suite.

use std::fs::{self, File};
use std::path::{Path, PathBuf};
use std::process::Command;

use conferr::{
    sut_factory, CampaignExecutor, Checkpoint, CheckpointSink, ExecutorCampaign, InjectionOutcome,
    JsonlSink, OutcomeSink,
};
use conferr_bench::{table1_faultload, threads_from_env, DEFAULT_SEED};
use conferr_keyboard::Keyboard;
use conferr_model::{EagerSource, GeneratedFault};
use conferr_sut::MySqlSim;

/// Checkpoint every 16 outcomes — small enough that the kill point
/// always has a durable record behind it and fresh work after it.
const CHECKPOINT_INTERVAL: usize = 16;

/// The child's exit code when the kill switch fires as intended.
const KILLED_EXIT: i32 = 3;

fn fixture() -> (ExecutorCampaign, Vec<GeneratedFault>) {
    let campaign = ExecutorCampaign::new(sut_factory(MySqlSim::new)).expect("campaign");
    let faults = table1_faultload(campaign.baseline(), &Keyboard::qwerty_us(), DEFAULT_SEED);
    (campaign, faults)
}

/// Forwards to the wrapped sink, then kills the whole process after
/// `remaining` outcomes — mid-stream, with no unwinding and no final
/// checkpoint record.
struct KillSwitch<S> {
    inner: S,
    remaining: usize,
}

impl<S: OutcomeSink> OutcomeSink for KillSwitch<S> {
    fn accept(&mut self, outcome: InjectionOutcome) {
        self.inner.accept(outcome);
        self.remaining = self.remaining.saturating_sub(1);
        if self.remaining == 0 {
            std::process::exit(KILLED_EXIT);
        }
    }

    fn take_error(&mut self) -> Option<std::io::Error> {
        self.inner.take_error()
    }
}

/// The child: stream the load into `<dir>/killed.jsonl` with a
/// journal at `<dir>/journal.jsonl`, and die after `kill_after`
/// outcomes. Never returns normally.
fn child(dir: &Path, kill_after: usize) -> ! {
    let (campaign, faults) = fixture();
    let executor = CampaignExecutor::new(threads_from_env());
    let outcomes = File::create(dir.join("killed.jsonl")).expect("create killed.jsonl");
    let journal = File::create(dir.join("journal.jsonl")).expect("create journal.jsonl");
    let mut sink = KillSwitch {
        inner: CheckpointSink::new(
            JsonlSink::new(campaign.system(), outcomes),
            journal,
            CHECKPOINT_INTERVAL,
        ),
        remaining: kill_after,
    };
    executor
        .run_source(&campaign, Box::new(EagerSource::new(faults)), &mut sink)
        .expect("child run");
    eprintln!("child completed all faults without being killed");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--child") {
        let dir = PathBuf::from(args.get(2).expect("--child <dir> <kill_after>"));
        let kill_after: usize = args
            .get(3)
            .and_then(|s| s.parse().ok())
            .expect("--child <dir> <kill_after>");
        child(&dir, kill_after);
    }

    let (campaign, faults) = fixture();
    let executor = CampaignExecutor::new(threads_from_env());

    // Phase 1: the uninterrupted reference, same executor shape.
    let mut reference_sink = JsonlSink::new(campaign.system(), Vec::new());
    let stats = executor
        .run_source(
            &campaign,
            Box::new(EagerSource::new(faults.clone())),
            &mut reference_sink,
        )
        .expect("reference run");
    let reference =
        String::from_utf8(reference_sink.finish().expect("reference jsonl")).expect("utf8");
    assert_eq!(stats.outcomes, faults.len());

    // Phase 2: kill a child mid-campaign, between interval boundaries.
    let mut kill_after = faults.len() / 2 + 3;
    if kill_after % CHECKPOINT_INTERVAL == 0 {
        kill_after += 1;
    }
    let dir = std::env::temp_dir().join(format!("conferr-resume-smoke-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("scratch dir");
    let status = Command::new(std::env::current_exe().expect("current exe"))
        .arg("--child")
        .arg(&dir)
        .arg(kill_after.to_string())
        .status()
        .expect("spawn child");
    assert_eq!(
        status.code(),
        Some(KILLED_EXIT),
        "the child must die mid-campaign, not finish or crash: {status}"
    );

    // Phase 3: recover and resume. The journal's last durable record
    // trails the kill point — at-least-once, never ahead of the sink.
    let journal = fs::read_to_string(dir.join("journal.jsonl")).expect("read journal");
    let recovered = Checkpoint::from_journal(&journal).expect("a durable checkpoint");
    assert!(
        recovered.completed > 0 && recovered.completed <= kill_after,
        "recovered {} of {} after a kill at {kill_after}",
        recovered.completed,
        faults.len()
    );
    let killed = fs::read_to_string(dir.join("killed.jsonl")).expect("read killed.jsonl");
    assert_eq!(killed.lines().count(), kill_after, "one line per accept");

    let mut resumed_sink = CheckpointSink::resume(
        JsonlSink::new(campaign.system(), Vec::new()),
        Vec::new(),
        CHECKPOINT_INTERVAL,
        &recovered,
    );
    executor
        .resume_from(
            &campaign,
            Box::new(EagerSource::new(faults.clone())),
            &recovered,
            &mut resumed_sink,
        )
        .expect("resumed run");
    let final_checkpoint = resumed_sink.checkpoint();
    assert_eq!(final_checkpoint.completed, faults.len());
    let (resumed_jsonl, _journal) = resumed_sink.finish().expect("resumed sink");
    let resumed = String::from_utf8(resumed_jsonl.finish().expect("resumed jsonl")).expect("utf8");

    // The identity: completed prefix of the killed run + resumed run
    // == uninterrupted run, byte for byte.
    let mut spliced: String = killed
        .lines()
        .take(recovered.completed)
        .map(|l| format!("{l}\n"))
        .collect();
    spliced.push_str(&resumed);
    assert_eq!(
        spliced, reference,
        "spliced killed+resumed JSONL diverged from the uninterrupted reference"
    );

    println!(
        "resume smoke: {} faults, child killed after {kill_after} (journal at {}), \
         resumed {} -> spliced output byte-identical to the uninterrupted run",
        faults.len(),
        recovered.completed,
        faults.len() - recovered.completed
    );
    fs::remove_dir_all(&dir).ok();
}
