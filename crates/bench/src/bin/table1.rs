//! Regenerates Table 1: resilience to typos for MySQL, Postgres and
//! Apache (paper §5.2).
//!
//! ```text
//! cargo run -p conferr-bench --bin table1 [seed]   # CONFERR_THREADS=n to pin workers
//! ```

use conferr::report::summary_table;
use conferr::CampaignExecutor;
use conferr_bench::{table1_parallel, threads_from_env, DEFAULT_SEED};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    let threads = threads_from_env();
    let executor = CampaignExecutor::new(threads);
    let columns = table1_parallel(&executor, seed).expect("table 1 campaign failed");

    println!("Table 1. Resilience to typos (seed {seed}, {threads} worker thread(s))");
    println!("(deletion of every directive + sampled typos in directive names and values)");
    println!();
    print!("{}", summary_table(&columns).render());
    println!();
    println!(
        "paper reported: MySQL 327 injected (83% / <1% / 17%), Postgres 98 (78% / 0% / 22%), \
         Apache 120 (38% / 5% / 57%)"
    );
}
