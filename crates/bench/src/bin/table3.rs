//! Regenerates Table 3: resilience to semantic (RFC-1912) DNS errors
//! for BIND and djbdns (paper §5.4).
//!
//! ```text
//! cargo run -p conferr-bench --bin table3   # CONFERR_THREADS=n to pin workers
//! ```

use conferr::report::TextTable;
use conferr::CampaignExecutor;
use conferr_bench::{table3_parallel, threads_from_env};

fn main() {
    let executor = CampaignExecutor::new(threads_from_env());
    let t3 = table3_parallel(&executor).expect("table 3 campaign failed");

    println!("Table 3. Resilience to semantic errors");
    println!();
    let mut t = TextTable::new(vec!["Err#", "Description of fault", "BIND", "djbdns"]);
    for (num, description, bind, djb) in &t3.rows {
        t.add_row(vec![
            format!("{num}."),
            description.clone(),
            bind.label().to_string(),
            djb.label().to_string(),
        ]);
    }
    print!("{}", t.render());
    println!();
    println!(
        "paper reported: (1) not found/N/A, (2) not found/N/A, (3) found/not found, \
         (4) found/not found"
    );
}
