//! Runs the complete evaluation — every table and figure of the paper
//! — in one go, printing each artifact in order. Useful for refreshing
//! `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run -p conferr-bench --bin paper_all [seed]
//! ```
//!
//! Every sibling binary runs its campaigns on the parallel engine,
//! one worker per core; set `CONFERR_THREADS=n` (inherited by the
//! spawned binaries) to pin the worker count.

use std::process::Command;

fn main() {
    let seed = std::env::args().nth(1).unwrap_or_default();
    let bins = ["table1", "table2", "table3", "fig3"];
    for bin in bins {
        println!("{}", "=".repeat(72));
        let mut cmd = Command::new(std::env::current_exe().map_or_else(
            |_| "cargo".to_string(),
            |p| {
                p.parent().map_or_else(
                    || "cargo".to_string(),
                    |d| d.join(bin).display().to_string(),
                )
            },
        ));
        if !seed.is_empty() {
            cmd.arg(&seed);
        }
        match cmd.status() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                eprintln!("{bin} exited with {status}");
                std::process::exit(1);
            }
            Err(_) => {
                // Sibling binary not built (e.g. `cargo run --bin
                // paper_all` without building the others): fall back
                // to cargo.
                let status = Command::new("cargo")
                    .args(["run", "-q", "-p", "conferr-bench", "--bin", bin])
                    .args(if seed.is_empty() {
                        vec![]
                    } else {
                        vec![seed.clone()]
                    })
                    .status()
                    .expect("failed to spawn cargo");
                if !status.success() {
                    std::process::exit(1);
                }
            }
        }
        println!();
    }
    println!("{}", "=".repeat(72));
    println!("all paper artifacts regenerated");
}
