//! Regenerates Table 2: resilience to structural errors — which
//! semantically neutral configuration variations each system accepts
//! (paper §5.3).
//!
//! ```text
//! cargo run -p conferr-bench --bin table2 [seed]   # CONFERR_THREADS=n to pin workers
//! ```

use conferr::report::TextTable;
use conferr::CampaignExecutor;
use conferr_bench::{table2_parallel, threads_from_env, DEFAULT_SEED};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    let executor = CampaignExecutor::new(threads_from_env());
    let t2 = table2_parallel(&executor, seed).expect("table 2 campaign failed");

    println!("Table 2. Resilience to structural errors (seed {seed}; 10 variant files per class)");
    println!();
    let mut t = TextTable::new(vec!["", &t2.systems[0], &t2.systems[1], &t2.systems[2]]);
    for (label, cells) in &t2.rows {
        let mut row = vec![label.clone()];
        for cell in cells {
            row.push(
                match cell {
                    Some(true) => "Yes",
                    Some(false) => "No",
                    None => "n/a",
                }
                .to_string(),
            );
        }
        t.add_row(row);
    }
    let mut pct_row = vec!["% of assumptions satisfied".to_string()];
    for pct in t2.satisfied_percentages() {
        pct_row.push(format!("{pct:.0}%"));
    }
    t.add_row(pct_row);
    print!("{}", t.render());
    println!();
    println!("paper reported: MySQL 80%, Postgres 75%, Apache 75%");
}
