//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! 1. **Keyboard-aware vs uniform-random substitutions** — the paper
//!    grounds substitutions in keyboard geometry. The ablation
//!    compares the *distribution of outcomes* (a uniform-random
//!    substitution is much more likely to be garbage, inflating
//!    detection rates and making systems look more robust than they
//!    are against realistic slips) and the generation cost.
//! 2. **Hierarchical class sampling vs uniform-random fault choice** —
//!    paper §5.1 claims the class hierarchy "is considerably more
//!    efficient at finding flaws". The ablation counts distinct
//!    undetected flaw sites discovered within a fixed injection
//!    budget.

use std::collections::BTreeSet;

use conferr::{Campaign, InjectionResult};
use conferr_bench::{all_typos, table1_faultload, DEFAULT_SEED};
use conferr_keyboard::Keyboard;
use conferr_model::{ErrorClass, FaultScenario, GeneratedFault, TreeEdit, TypoKind};
use conferr_sut::MySqlSim;
use conferr_tree::NodeQuery;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// Uniform-random single-character substitutions (the unrealistic
/// baseline).
fn uniform_substitutions(word: &str, rng: &mut StdRng, count: usize) -> Vec<(String, String)> {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789-_./";
    let chars: Vec<char> = word.chars().collect();
    let mut out = Vec::new();
    if chars.is_empty() {
        return out;
    }
    for _ in 0..count {
        let pos = rng.gen_range(0..chars.len());
        let replacement = ALPHABET[rng.gen_range(0..ALPHABET.len())] as char;
        if replacement == chars[pos] {
            continue;
        }
        let mut mutated = chars.clone();
        mutated[pos] = replacement;
        out.push((
            mutated.into_iter().collect(),
            format!("uniform substitution at {pos}"),
        ));
    }
    out
}

type SeededMutator<'m> = &'m dyn Fn(&str, &mut StdRng) -> Vec<(String, String)>;

/// Builds value-typo faults for every directive using the given
/// mutator, capped per directive.
fn value_faults(
    campaign: &Campaign<'_>,
    mutator: SeededMutator<'_>,
    per_directive: usize,
    seed: u64,
) -> Vec<GeneratedFault> {
    static DIRECTIVE: std::sync::LazyLock<NodeQuery> =
        std::sync::LazyLock::new(|| "//directive".parse().expect("static query"));
    let query: &NodeQuery = &DIRECTIVE;
    let mut out = Vec::new();
    let mut rng = StdRng::seed_from_u64(seed);
    for (file, tree) in campaign.baseline().iter() {
        for (path, node) in query.select_nodes(tree) {
            let Some(value) = node.text() else { continue };
            if value.is_empty() {
                continue;
            }
            let mut variants = mutator(value, &mut rng);
            variants.truncate(per_directive);
            for (i, (mutated, label)) in variants.into_iter().enumerate() {
                out.push(GeneratedFault::Scenario(FaultScenario {
                    id: format!("abl:{file}:{path}#{i}"),
                    description: label,
                    class: ErrorClass::Typo(TypoKind::Substitution),
                    edits: vec![TreeEdit::SetText {
                        file: file.to_string(),
                        path: path.clone(),
                        text: Some(mutated),
                    }],
                }));
            }
        }
    }
    out
}

fn detection_rate(campaign: &mut Campaign<'_>, faults: Vec<GeneratedFault>) -> f64 {
    let profile = campaign.run_faults(faults).expect("run");
    profile.summary().detection_rate()
}

fn report_substitution_realism() {
    let keyboard = Keyboard::qwerty_us();
    let mut sut = MySqlSim::new();
    let mut campaign = Campaign::new(&mut sut).expect("campaign");
    let kb_faults = value_faults(
        &campaign,
        &|v, rng| {
            let mut variants = all_typos(&keyboard, v).into_iter().collect::<Vec<_>>();
            variants.shuffle(rng);
            variants
        },
        8,
        DEFAULT_SEED,
    );
    let uniform_faults = value_faults(
        &campaign,
        &|v, rng| uniform_substitutions(v, rng, 8),
        8,
        DEFAULT_SEED,
    );
    let kb_rate = detection_rate(&mut campaign, kb_faults);
    let uniform_rate = detection_rate(&mut campaign, uniform_faults);
    println!("== ablation: substitution realism (MySQL, value typos) ==");
    println!("keyboard-aware detection rate:  {:>5.1}%", kb_rate * 100.0);
    println!(
        "uniform-random detection rate:  {:>5.1}%",
        uniform_rate * 100.0
    );
    println!(
        "uniform-random substitutions overstate resilience by {:+.1} points",
        (uniform_rate - kb_rate) * 100.0
    );
}

/// Distinct undetected-flaw sites (directive paths whose mutation was
/// silently absorbed) discovered within the first `budget` injections.
fn distinct_flaws(
    campaign: &mut Campaign<'_>,
    faults: Vec<GeneratedFault>,
    budget: usize,
) -> usize {
    let faults: Vec<GeneratedFault> = faults.into_iter().take(budget).collect();
    let profile = campaign.run_faults(faults).expect("run");
    let mut sites = BTreeSet::new();
    for o in profile.outcomes() {
        if matches!(o.result, InjectionResult::Undetected { .. }) {
            // The flaw site: the injected location (id minus the
            // variant suffix).
            let site =
                o.id.rsplit_once('#')
                    .map_or_else(|| o.id.clone(), |(s, _)| s.to_string());
            sites.insert(site);
        }
    }
    sites.len()
}

fn report_hierarchy_efficiency() {
    const BUDGET: usize = 60;
    let keyboard = Keyboard::qwerty_us();
    let mut sut = MySqlSim::new();
    let mut campaign = Campaign::new(&mut sut).expect("campaign");

    // Hierarchical: ConfErr's class-structured fault load (spread over
    // directives and error classes).
    let hierarchical = table1_faultload(campaign.baseline(), &keyboard, DEFAULT_SEED);

    // Uniform: the flattened variant pool, shuffled without class
    // structure (redundant variants of the same site cluster).
    let mut uniform = value_faults(
        &campaign,
        &|v, _| all_typos(&keyboard, v),
        usize::MAX,
        DEFAULT_SEED,
    );
    let mut rng = StdRng::seed_from_u64(DEFAULT_SEED);
    uniform.shuffle(&mut rng);

    let h = distinct_flaws(&mut campaign, hierarchical, BUDGET);
    let u = distinct_flaws(&mut campaign, uniform, BUDGET);
    println!("== ablation: fault-space sampling (MySQL, {BUDGET}-injection budget) ==");
    println!("hierarchical class sampling: {h} distinct undetected flaw sites");
    println!("uniform random sampling:     {u} distinct undetected flaw sites");
}

fn bench_generation_strategies(c: &mut Criterion) {
    report_substitution_realism();
    report_hierarchy_efficiency();

    let keyboard = Keyboard::qwerty_us();
    let mut group = c.benchmark_group("substitution_generation");
    group.bench_function("keyboard_aware", |b| {
        b.iter(|| black_box(all_typos(&keyboard, "max_allowed_packet").len()));
    });
    group.bench_function("uniform_random", |b| {
        let mut rng = StdRng::seed_from_u64(DEFAULT_SEED);
        b.iter(|| black_box(uniform_substitutions("max_allowed_packet", &mut rng, 40).len()));
    });
    group.finish();
}

criterion_group!(benches, bench_generation_strategies);
criterion_main!(benches);
