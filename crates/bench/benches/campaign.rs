//! Campaign-engine throughput: the serial driver (copy-on-write
//! apply, cached baseline serialization) versus the persistent
//! executor-backed parallel driver, over the full §5.2 fault load.
//! The parallel numbers scale with core count; on a single-core
//! machine they only show the sharding overhead (and the executor's
//! serial fast path).

use conferr::{sut_factory, Campaign, ParallelCampaign};
use conferr_bench::{default_threads, table1_faultload, DEFAULT_SEED};
use conferr_keyboard::Keyboard;
use conferr_model::GeneratedFault;
use conferr_sut::{MySqlSim, PostgresSim};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn postgres_faultload() -> Vec<GeneratedFault> {
    let keyboard = Keyboard::qwerty_us();
    let mut sut = PostgresSim::new();
    let campaign = Campaign::new(&mut sut).expect("campaign");
    table1_faultload(campaign.baseline(), &keyboard, DEFAULT_SEED)
}

fn bench_serial_vs_parallel(c: &mut Criterion) {
    let faults = postgres_faultload();
    let mut group = c.benchmark_group("campaign_engine");
    group.sample_size(10);

    group.bench_function("serial_postgres_table1", |b| {
        b.iter(|| {
            let mut sut = PostgresSim::new();
            let mut campaign = Campaign::new(&mut sut).expect("campaign");
            let profile = campaign.run_faults(black_box(faults.clone())).expect("run");
            black_box(profile.summary())
        });
    });

    let threads = default_threads();
    group.bench_function("parallel_postgres_table1", |b| {
        let campaign = ParallelCampaign::new(sut_factory(PostgresSim::new))
            .expect("campaign")
            .with_threads(threads);
        b.iter(|| {
            let profile = campaign.run_faults(black_box(faults.clone())).expect("run");
            black_box(profile.summary())
        });
    });
    group.finish();
}

fn bench_cow_apply(c: &mut Criterion) {
    // The injection front half in isolation: applying a single-edit
    // scenario must cost proportional to the edit (copy-on-write of
    // one file), not to the configuration size.
    let mut sut = MySqlSim::new();
    let campaign = Campaign::new(&mut sut).expect("campaign");
    let baseline = campaign.baseline().clone();
    let keyboard = Keyboard::qwerty_us();
    let faults = table1_faultload(&baseline, &keyboard, DEFAULT_SEED);
    let scenario = faults
        .iter()
        .find_map(|f| f.scenario())
        .expect("at least one scenario")
        .clone();

    let mut group = c.benchmark_group("scenario_apply");
    group.bench_function("cow_single_edit", |b| {
        b.iter(|| black_box(scenario.apply(black_box(&baseline)).expect("apply")));
    });
    group.finish();
}

criterion_group!(benches, bench_serial_vs_parallel, bench_cow_apply);
criterion_main!(benches);
