//! Parse and serialize throughput for all six configuration formats,
//! measured on each simulator's default configuration.

use conferr_formats::format_by_name;
use conferr_sut::{ApacheSim, BindSim, DjbdnsSim, MySqlSim, PostgresSim, SystemUnderTest};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn corpus() -> Vec<(String, String, String)> {
    let mut out = Vec::new();
    let suts: Vec<Box<dyn SystemUnderTest>> = vec![
        Box::new(MySqlSim::new()),
        Box::new(PostgresSim::new()),
        Box::new(ApacheSim::new()),
        Box::new(BindSim::new()),
        Box::new(DjbdnsSim::new()),
    ];
    for sut in suts {
        for spec in sut.config_files() {
            out.push((spec.name, spec.format, spec.default_contents));
        }
    }
    out
}

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("parse");
    for (name, format_name, text) in corpus() {
        let format = format_by_name(&format_name).expect("known format");
        group.throughput(Throughput::Bytes(text.len() as u64));
        group.bench_function(format!("{format_name}/{name}"), |b| {
            b.iter(|| black_box(format.parse(&text).expect("parse")));
        });
    }
    group.finish();
}

fn bench_serialize(c: &mut Criterion) {
    let mut group = c.benchmark_group("serialize");
    for (name, format_name, text) in corpus() {
        let format = format_by_name(&format_name).expect("known format");
        let tree = format.parse(&text).expect("parse");
        group.throughput(Throughput::Bytes(text.len() as u64));
        group.bench_function(format!("{format_name}/{name}"), |b| {
            b.iter(|| black_box(format.serialize(&tree).expect("serialize")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parse, bench_serialize);
criterion_main!(benches);
