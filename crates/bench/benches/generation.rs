//! Fault-scenario generation throughput for the three plugins.

use conferr::Campaign;
use conferr_keyboard::Keyboard;
use conferr_model::ErrorGenerator;
use conferr_plugins::{DnsSemanticPlugin, StructuralPlugin, TokenClass, TypoPlugin};
use conferr_sut::{ApacheSim, BindSim, DjbdnsSim, MySqlSim};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_typo_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate_typos");
    let baseline = {
        let mut sut = ApacheSim::new();
        Campaign::new(&mut sut)
            .expect("campaign")
            .baseline()
            .clone()
    };
    for (label, class) in [
        ("names", TokenClass::DirectiveNames),
        ("values", TokenClass::DirectiveValues),
    ] {
        let plugin = TypoPlugin::new(Keyboard::qwerty_us(), class);
        group.bench_function(label, |b| {
            b.iter(|| black_box(plugin.generate(&baseline).expect("generate").len()));
        });
    }
    group.finish();
}

fn bench_structural_generation(c: &mut Criterion) {
    let baseline = {
        let mut sut = MySqlSim::new();
        Campaign::new(&mut sut)
            .expect("campaign")
            .baseline()
            .clone()
    };
    let plugin = StructuralPlugin::new();
    c.bench_function("generate_structural", |b| {
        b.iter(|| black_box(plugin.generate(&baseline).expect("generate").len()));
    });
}

fn bench_dns_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate_dns_semantic");
    {
        let baseline = {
            let mut sut = BindSim::new();
            Campaign::new(&mut sut)
                .expect("campaign")
                .baseline()
                .clone()
        };
        let plugin = DnsSemanticPlugin::bind();
        group.bench_function("bind", |b| {
            b.iter(|| black_box(plugin.generate(&baseline).expect("generate").len()));
        });
    }
    {
        let baseline = {
            let mut sut = DjbdnsSim::new();
            Campaign::new(&mut sut)
                .expect("campaign")
                .baseline()
                .clone()
        };
        let plugin = DnsSemanticPlugin::tinydns();
        group.bench_function("tinydns", |b| {
            b.iter(|| black_box(plugin.generate(&baseline).expect("generate").len()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_typo_generation,
    bench_structural_generation,
    bench_dns_generation
);
criterion_main!(benches);
