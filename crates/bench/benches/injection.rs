//! Per-injection end-to-end latency, the analogue of the paper's §5.2
//! timing claim ("each error injection experiment took on the order of
//! seconds: 2.2 s for MySQL, 6 s for Postgres and 1.1 s for Apache").
//! Our systems are simulated in-process, so the absolute numbers are
//! microseconds; the bench demonstrates the same end-to-end cycle:
//! mutate → serialize → start → functional tests → classify.

use conferr::Campaign;
use conferr_bench::{deep_copy_tree, httpd_apply_fixture, table1_faultload, DEFAULT_SEED};
use conferr_keyboard::Keyboard;
use conferr_sut::{default_payload, ApacheSim, MySqlSim, PostgresSim, SystemUnderTest};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_single_injection(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_injection");
    let keyboard = Keyboard::qwerty_us();

    let cases: Vec<(&str, Box<dyn SystemUnderTest>)> = vec![
        ("mysql", Box::new(MySqlSim::new())),
        ("postgres", Box::new(PostgresSim::new())),
        ("apache", Box::new(ApacheSim::new())),
    ];
    for (name, mut sut) in cases {
        let mut campaign = Campaign::new(sut.as_mut()).expect("campaign");
        let faults = table1_faultload(campaign.baseline(), &keyboard, DEFAULT_SEED);
        // One representative value-typo injection, run end to end.
        let one = vec![faults
            .iter()
            .find(|f| f.id().starts_with("t1-value"))
            .expect("value typo exists")
            .clone()];
        group.bench_function(name, |b| {
            b.iter(|| {
                let profile = campaign.run_faults(black_box(one.clone())).expect("run");
                black_box(profile.summary());
            });
        });
    }
    group.finish();
}

fn bench_startup_only(c: &mut Criterion) {
    // Cached: repeated starts from the same payload hit the parse
    // cache after the first iteration — the campaign steady state for
    // unchanged files. Uncached: the reference cold path, a full
    // parse-and-validate per start.
    for (suffix, caching) in [("cached", true), ("uncached", false)] {
        let mut group = c.benchmark_group(format!("sut_startup_{suffix}"));
        let cases: Vec<(&str, Box<dyn SystemUnderTest>)> = vec![
            ("mysql", Box::new(MySqlSim::new())),
            ("postgres", Box::new(PostgresSim::new())),
            ("apache", Box::new(ApacheSim::new())),
        ];
        for (name, mut sut) in cases {
            sut.set_parse_caching(caching);
            let payload = default_payload(sut.as_ref());
            let deadline = conferr_sut::Deadline::unlimited();
            group.bench_function(name, |b| {
                b.iter(|| black_box(sut.start(&payload, &deadline)));
            });
        }
        group.finish();
    }
}

fn bench_apply_path_vs_deep_copy(c: &mut Criterion) {
    // The injection front half on the largest configuration
    // (httpd.conf): applying one value-typo scenario copies only the
    // root-to-edit path of the Arc-backed tree. The deep-copy
    // function reproduces what every apply paid per edited file
    // before the structural sharing — the reference the >=5x
    // acceptance gate in BENCH_campaign.json compares against.
    let (baseline, scenario) = httpd_apply_fixture();
    let tree = baseline.get("httpd.conf").expect("httpd.conf parsed");

    let mut group = c.benchmark_group("apply_httpd");
    group.bench_function("path_copy_apply", |b| {
        b.iter(|| black_box(scenario.apply(black_box(&baseline)).expect("apply")));
    });
    group.bench_function("whole_tree_deep_copy", |b| {
        b.iter(|| black_box(deep_copy_tree(black_box(tree))));
    });
    group.finish();
}

fn bench_full_campaign(c: &mut Criterion) {
    // The paper's headline: "testing each SUT took less than one
    // hour". The whole Table 1 column runs in milliseconds here.
    let mut group = c.benchmark_group("full_table1_column");
    group.sample_size(10);
    let keyboard = Keyboard::qwerty_us();
    group.bench_function("postgres", |b| {
        b.iter(|| {
            let mut sut = PostgresSim::new();
            let mut campaign = Campaign::new(&mut sut).expect("campaign");
            let faults = table1_faultload(campaign.baseline(), &keyboard, DEFAULT_SEED);
            let profile = campaign.run_faults(faults).expect("run");
            black_box(profile.summary())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_single_injection,
    bench_startup_only,
    bench_apply_path_vs_deep_copy,
    bench_full_campaign
);
criterion_main!(benches);
