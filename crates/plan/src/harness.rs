//! End-to-end plan harness: name a system, get a campaign that can
//! generate, run, check, shrink and replay plans.
//!
//! [`PlanHarness`] is the glue the CLI, the sweep binary and the
//! integration gates share. Every SUT is wrapped in a
//! [`conferr_sut::ChaosSut`] — with all-zero rates when no chaos is
//! requested, which delegates identically to the bare system — so a
//! bug-base record's chaos spec is always sufficient to reconstruct
//! the exact SUT a counterexample was found against.
//!
//! Replay has two entry points with different trust levels:
//!
//! * [`PlanHarness::replay_record`] — *by file*: re-derive the minimal
//!   plan from the record's seed + kept-step selection, run it, and
//!   diff the rendered trace byte-for-byte against the stored one.
//! * [`PlanHarness::replay_seed`] — *by seed*: rerun the whole
//!   pipeline (generate → check → shrink) from the bare seed and
//!   rebuild the record from scratch; it must reproduce the stored
//!   record exactly.

use std::time::Duration;

use conferr::{
    sut_factory, CampaignError, CampaignExecutor, ExecutorCampaign, PlanTrace, SutFactory,
};
use conferr_model::FaultPlan;
use conferr_sut::{
    ApacheSim, AppServerSim, BindSim, ChaosConfig, ChaosSut, DjbdnsSim, MySqlSim, PostgresSim,
};

use crate::bugbase::{BugRecord, ChaosSpec};
use crate::generate::{PlanContext, PlanGenerator, WorkloadProfile};
use crate::property::{Property, Violation};
use crate::shrink::{shrink, Selection, ShrinkReport};

/// The systems a harness can target, by short name.
pub const SYSTEMS: [&str; 6] = ["mysql", "postgres", "apache", "bind", "djbdns", "appserver"];

/// Errors from harness construction and replay.
#[derive(Debug)]
pub enum PlanError {
    /// The system name is not one of [`SYSTEMS`].
    UnknownSystem(String),
    /// The workload-profile name is not one of the built-ins.
    UnknownProfile(String),
    /// The property name is not one of [`Property::ALL`].
    UnknownProperty(String),
    /// Plan execution failed in the campaign layer.
    Campaign(CampaignError),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::UnknownSystem(name) => {
                write!(f, "unknown system {name:?} (expected one of {SYSTEMS:?})")
            }
            PlanError::UnknownProfile(name) => write!(f, "unknown workload profile {name:?}"),
            PlanError::UnknownProperty(name) => write!(f, "unknown property {name:?}"),
            PlanError::Campaign(e) => write!(f, "plan execution failed: {e}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<CampaignError> for PlanError {
    fn from(e: CampaignError) -> Self {
        PlanError::Campaign(e)
    }
}

/// The outcome of a by-file replay: did the rerun reproduce the
/// stored counterexample?
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayResult {
    /// `true` iff the rerun's trace matches the record byte-for-byte
    /// *and* still violates the record's property.
    pub matched: bool,
    /// `true` iff the rerun still violates the record's property.
    pub violated: bool,
    /// The rerun's rendered trace lines.
    pub trace: Vec<String>,
}

fn chaos_factory(system: &str, config: ChaosConfig) -> Option<SutFactory> {
    Some(match system {
        "mysql" => sut_factory(move || ChaosSut::new(MySqlSim::new(), config)),
        "postgres" => sut_factory(move || ChaosSut::new(PostgresSim::new(), config)),
        "apache" => sut_factory(move || ChaosSut::new(ApacheSim::new(), config)),
        "bind" => sut_factory(move || ChaosSut::new(BindSim::new(), config)),
        "djbdns" => sut_factory(move || ChaosSut::new(DjbdnsSim::new(), config)),
        "appserver" => sut_factory(move || ChaosSut::new(AppServerSim::new(), config)),
        _ => return None,
    })
}

/// One system's plan-testing session: campaign, workload context and
/// the generate / run / check / shrink / replay pipeline.
#[derive(Debug)]
pub struct PlanHarness {
    system: String,
    chaos: Option<ChaosSpec>,
    deadline_ms: u64,
    campaign: ExecutorCampaign,
    tests: Vec<String>,
}

impl PlanHarness {
    /// Builds a harness for one of [`SYSTEMS`], optionally wrapped in
    /// seeded chaos.
    pub fn new(system: &str, chaos: Option<ChaosSpec>) -> Result<Self, PlanError> {
        let config = chaos.map_or_else(ChaosConfig::default, ChaosSpec::to_config);
        let factory = chaos_factory(system, config)
            .ok_or_else(|| PlanError::UnknownSystem(system.to_string()))?;
        let campaign = ExecutorCampaign::new(factory)?;
        let tests = campaign.factory().create().test_names();
        Ok(PlanHarness {
            system: system.to_string(),
            chaos,
            deadline_ms: 0,
            campaign,
            tests,
        })
    }

    /// Rebuilds the exact harness a bug record was produced on.
    pub fn from_record(record: &BugRecord) -> Result<Self, PlanError> {
        let mut harness = Self::new(&record.system, record.chaos)?;
        harness.set_deadline_ms(record.deadline_ms);
        Ok(harness)
    }

    /// The short system name this harness targets.
    pub fn system(&self) -> &str {
        &self.system
    }

    /// The wrapped system's functional-test names (the `RunTest` pool).
    pub fn tests(&self) -> &[String] {
        &self.tests
    }

    /// The underlying executor campaign.
    pub fn campaign(&self) -> &ExecutorCampaign {
        &self.campaign
    }

    /// Sets the per-fault deadline in milliseconds (`0` = unlimited).
    pub fn set_deadline_ms(&mut self, ms: u64) {
        self.deadline_ms = ms;
        self.campaign
            .set_fault_deadline((ms > 0).then(|| Duration::from_millis(ms)));
    }

    /// Generates the deterministic plan for `(profile, seed, steps)`.
    pub fn generate(&self, profile: &str, seed: u64, steps: usize) -> Result<FaultPlan, PlanError> {
        let profile = WorkloadProfile::by_name(profile)
            .ok_or_else(|| PlanError::UnknownProfile(profile.to_string()))?;
        let ctx = PlanContext {
            baseline: self.campaign.baseline(),
            tests: &self.tests,
        };
        Ok(PlanGenerator::new(profile).generate(&ctx, seed, steps))
    }

    /// Executes a plan and returns its trace.
    pub fn run(
        &self,
        executor: &CampaignExecutor,
        plan: &FaultPlan,
    ) -> Result<PlanTrace, CampaignError> {
        executor.run_plan(&self.campaign, plan)
    }

    /// Executes a plan and evaluates one property over its trace.
    pub fn check(
        &self,
        executor: &CampaignExecutor,
        plan: &FaultPlan,
        property: Property,
    ) -> Result<Option<Violation>, CampaignError> {
        Ok(property.evaluate(&self.run(executor, plan)?))
    }

    /// Shrinks a failing plan to a minimal counterexample for
    /// `property` (`None` if the plan does not fail it).
    pub fn shrink(
        &self,
        executor: &CampaignExecutor,
        plan: &FaultPlan,
        property: Property,
    ) -> Result<Option<ShrinkReport>, CampaignError> {
        shrink(plan, |candidate| self.check(executor, candidate, property))
    }

    /// Builds the bug-base record for a shrunken counterexample,
    /// rerunning the minimal plan to capture its canonical trace.
    #[allow(clippy::too_many_arguments)] // one argument per record provenance field
    pub fn build_record(
        &self,
        executor: &CampaignExecutor,
        profile: &str,
        seed: u64,
        steps: usize,
        property: Property,
        original: &FaultPlan,
        minimal: &FaultPlan,
    ) -> Result<BugRecord, CampaignError> {
        let selection = Selection::of(original, minimal);
        let trace = self.run(executor, minimal)?.render_lines();
        Ok(BugRecord {
            system: self.system.clone(),
            profile: profile.to_string(),
            seed,
            steps,
            property: property.name().to_string(),
            deadline_ms: self.deadline_ms,
            chaos: self.chaos,
            kept: selection.kept,
            kept_edits: selection.kept_edits,
            trace,
        })
    }

    /// Replay *by file*: re-derive the minimal plan from the record's
    /// seed and kept-step selection, run it, and compare the rendered
    /// trace byte-for-byte.
    pub fn replay_record(
        &self,
        executor: &CampaignExecutor,
        record: &BugRecord,
    ) -> Result<ReplayResult, PlanError> {
        let property = Property::by_name(&record.property)
            .ok_or_else(|| PlanError::UnknownProperty(record.property.clone()))?;
        let full = self.generate(&record.profile, record.seed, record.steps)?;
        let selection = Selection {
            kept: record.kept.clone(),
            kept_edits: record.kept_edits.clone(),
        };
        let minimal = selection.apply(&full);
        let trace = self.run(executor, &minimal)?;
        let violated = property.evaluate(&trace).is_some();
        let lines = trace.render_lines();
        Ok(ReplayResult {
            matched: violated && lines == record.trace,
            violated,
            trace: lines,
        })
    }

    /// Replay *by seed*: rerun generate → check → shrink from the bare
    /// seed and rebuild the record from scratch. Returns `None` if the
    /// regenerated plan no longer violates the property; otherwise the
    /// rebuilt record, which must equal the stored one for the replay
    /// to count as reproduced.
    pub fn replay_seed(
        &self,
        executor: &CampaignExecutor,
        record: &BugRecord,
    ) -> Result<Option<BugRecord>, PlanError> {
        let property = Property::by_name(&record.property)
            .ok_or_else(|| PlanError::UnknownProperty(record.property.clone()))?;
        let full = self.generate(&record.profile, record.seed, record.steps)?;
        let Some(report) = self.shrink(executor, &full, property)? else {
            return Ok(None);
        };
        Ok(Some(self.build_record(
            executor,
            &record.profile,
            record.seed,
            record.steps,
            property,
            &full,
            &report.minimal,
        )?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_names_are_rejected_up_front() {
        assert!(matches!(
            PlanHarness::new("oracle", None),
            Err(PlanError::UnknownSystem(_))
        ));
        let harness = PlanHarness::new("mysql", None).unwrap();
        assert!(matches!(
            harness.generate("nope", 1, 4),
            Err(PlanError::UnknownProfile(_))
        ));
    }

    #[test]
    fn zero_rate_chaos_wrapper_runs_plans_cleanly() {
        let harness = PlanHarness::new("postgres", None).unwrap();
        assert!(!harness.tests().is_empty());
        let executor = CampaignExecutor::new(1);
        let plan = harness.generate("operator-default", 3, 6).unwrap();
        let trace = harness.run(&executor, &plan).unwrap();
        assert_eq!(trace.records.len(), plan.len());
    }

    #[test]
    fn generation_is_deterministic_per_harness() {
        let harness = PlanHarness::new("apache", None).unwrap();
        let a = harness.generate("compound-heavy", 9, 10).unwrap();
        let b = harness.generate("compound-heavy", 9, 10).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, harness.generate("compound-heavy", 10, 10).unwrap());
    }
}
