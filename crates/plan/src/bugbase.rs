//! The replayable bug base: a directory of JSON counterexample records.
//!
//! Every record stores *recipes*, not serialized faults: the system
//! name, workload profile, generator seed and step count reproduce the
//! full plan; the shrinker's [`Selection`](crate::Selection) (kept
//! step ids + kept edit indices) reproduces the minimal plan; the
//! optional chaos spec and deadline reproduce the SUT. The expected
//! trace lines ride along so replay can diff byte-for-byte.
//!
//! Records are single-line JSON, written whole with a trailing
//! newline. Like the campaign checkpoint journal, loading is
//! torn-write safe: a record that does not end with the full closing
//! delimiter (`]}}` — the trace array is always the final field) or is
//! missing required fields is rejected as
//! [`BugBaseError::Malformed`], never misread.

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

use conferr_sut::ChaosConfig;

/// Seeded chaos rates in integer *per-mille* (so records never print
/// floats and replay is exact). Converts to [`ChaosConfig`] for
/// execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosSpec {
    /// Seed mixed into every per-fault roll.
    pub seed: u64,
    /// `start` panic rate, per mille.
    pub panic_pm: u32,
    /// `start` stall rate, per mille.
    pub stall_pm: u32,
    /// `start` failure rate, per mille.
    pub fail_pm: u32,
    /// Fabricated functional-test failure rate, per mille.
    pub fail_test_pm: u32,
    /// How long a stall sleeps, in milliseconds.
    pub stall_ms: u64,
}

impl ChaosSpec {
    /// The executable [`ChaosConfig`] these rates describe.
    pub fn to_config(self) -> ChaosConfig {
        ChaosConfig {
            seed: self.seed,
            panic_rate: f64::from(self.panic_pm) / 1000.0,
            stall_rate: f64::from(self.stall_pm) / 1000.0,
            fail_rate: f64::from(self.fail_pm) / 1000.0,
            fail_test_rate: f64::from(self.fail_test_pm) / 1000.0,
            stall_for: Duration::from_millis(self.stall_ms),
        }
    }
}

/// One bug-base record: everything needed to regenerate a failing
/// plan, its minimal counterexample, and the trace both must produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BugRecord {
    /// SUT name (`mysql`, `postgres`, ...).
    pub system: String,
    /// Workload-profile name the plan was generated with.
    pub profile: String,
    /// Generator seed.
    pub seed: u64,
    /// Step count the plan was generated with.
    pub steps: usize,
    /// The violated property's name.
    pub property: String,
    /// Per-fault deadline in milliseconds, `0` for unlimited.
    pub deadline_ms: u64,
    /// Chaos rates, when the failure needs a chaos wrapper.
    pub chaos: Option<ChaosSpec>,
    /// Stable ids of the minimal plan's steps.
    pub kept: Vec<usize>,
    /// Simplified inject steps, each encoded `"<step id>:<kept edit
    /// indices, comma separated>"`.
    pub kept_edits: Vec<(usize, Vec<usize>)>,
    /// Rendered trace lines of the *minimal* plan.
    pub trace: Vec<String>,
}

/// Escapes a string for JSON (mirror of the core exporter).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Reverses [`json_string`]'s escapes.
fn json_unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                if let Some(c) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    out.push(c);
                }
            }
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

/// Extracts the unsigned integer following `"key":`.
fn json_u64_field(line: &str, key: &str) -> Option<u64> {
    let marker = format!("\"{key}\":");
    let at = line.find(&marker)? + marker.len();
    let digits: String = line[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Extracts and unescapes the string following `"key":"`.
fn json_str_field(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":\"");
    let start = line.find(&marker)? + marker.len();
    let mut end = None;
    let mut escaped = false;
    for (i, c) in line[start..].char_indices() {
        if escaped {
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '"' {
            end = Some(start + i);
            break;
        }
    }
    Some(json_unescape(&line[start..end?]))
}

/// Extracts the raw text between `"key":[` and its matching `]`
/// (strings inside the array are skipped escape-aware).
fn json_array_body<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let marker = format!("\"{key}\":[");
    let start = line.find(&marker)? + marker.len();
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line[start..].char_indices() {
        if escaped {
            escaped = false;
        } else if in_string {
            match c {
                '\\' => escaped = true,
                '"' => in_string = false,
                _ => {}
            }
        } else {
            match c {
                '"' => in_string = true,
                ']' => return Some(&line[start..start + i]),
                _ => {}
            }
        }
    }
    None
}

/// Parses an array of unsigned integers.
fn parse_usize_array(body: &str) -> Option<Vec<usize>> {
    let body = body.trim();
    if body.is_empty() {
        return Some(Vec::new());
    }
    body.split(',')
        .map(|piece| piece.trim().parse().ok())
        .collect()
}

/// Parses an array of JSON strings (each unescaped).
fn parse_string_array(body: &str) -> Option<Vec<String>> {
    let mut out = Vec::new();
    let mut rest = body.trim_start();
    while !rest.is_empty() {
        if !rest.starts_with('"') {
            return None;
        }
        let inner = &rest[1..];
        let mut end = None;
        let mut escaped = false;
        for (i, c) in inner.char_indices() {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            }
        }
        let end = end?;
        out.push(json_unescape(&inner[..end]));
        rest = inner[end + 1..].trim_start();
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
    }
    Some(out)
}

/// Parses one `"<step id>:<i>,<i>,..."` kept-edits entry.
fn parse_kept_edits(entry: &str) -> Option<(usize, Vec<usize>)> {
    let (id, indices) = entry.split_once(':')?;
    let indices = if indices.is_empty() {
        Vec::new()
    } else {
        parse_usize_array(indices)?
    };
    Some((id.parse().ok()?, indices))
}

impl BugRecord {
    /// Renders the record as its single-line JSON form (no trailing
    /// newline; [`BugBase::store`] appends one).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"bug\":{");
        let _ = write!(
            out,
            "\"system\":{},\"profile\":{},\"seed\":{},\"steps\":{},\"property\":{},\"deadline_ms\":{}",
            json_string(&self.system),
            json_string(&self.profile),
            self.seed,
            self.steps,
            json_string(&self.property),
            self.deadline_ms,
        );
        match &self.chaos {
            Some(c) => {
                let _ = write!(
                    out,
                    ",\"chaos\":{{\"seed\":{},\"panic_pm\":{},\"stall_pm\":{},\"fail_pm\":{},\"fail_test_pm\":{},\"stall_ms\":{}}}",
                    c.seed, c.panic_pm, c.stall_pm, c.fail_pm, c.fail_test_pm, c.stall_ms,
                );
            }
            None => out.push_str(",\"chaos\":null"),
        }
        let kept: Vec<String> = self.kept.iter().map(ToString::to_string).collect();
        let _ = write!(out, ",\"kept\":[{}]", kept.join(","));
        let kept_edits: Vec<String> = self
            .kept_edits
            .iter()
            .map(|(id, indices)| {
                let indices: Vec<String> = indices.iter().map(ToString::to_string).collect();
                json_string(&format!("{id}:{}", indices.join(",")))
            })
            .collect();
        let _ = write!(out, ",\"kept_edits\":[{}]", kept_edits.join(","));
        // The trace array is deliberately the final field: the
        // torn-write check keys on the record's closing `]}}`.
        let trace: Vec<String> = self.trace.iter().map(|l| json_string(l)).collect();
        let _ = write!(out, ",\"trace\":[{}]}}}}", trace.join(","));
        out
    }

    /// Parses one record, `None` if the text is not a complete record
    /// (torn by a crash mid-write, or not a bug record at all).
    pub fn parse_record(line: &str) -> Option<BugRecord> {
        if !line.contains("\"bug\"") || !line.trim_end().ends_with("]}}") {
            return None;
        }
        let chaos = if line.contains("\"chaos\":null") {
            None
        } else {
            let body_at = line.find("\"chaos\":{")?;
            let body = &line[body_at..];
            Some(ChaosSpec {
                seed: json_u64_field(body, "seed")?,
                panic_pm: u32::try_from(json_u64_field(body, "panic_pm")?).ok()?,
                stall_pm: u32::try_from(json_u64_field(body, "stall_pm")?).ok()?,
                fail_pm: u32::try_from(json_u64_field(body, "fail_pm")?).ok()?,
                fail_test_pm: u32::try_from(json_u64_field(body, "fail_test_pm")?).ok()?,
                stall_ms: json_u64_field(body, "stall_ms")?,
            })
        };
        Some(BugRecord {
            system: json_str_field(line, "system")?,
            profile: json_str_field(line, "profile")?,
            // The chaos object nests its own "seed"/"steps"-free
            // fields after the top-level ones, so first-match wins
            // and stays unambiguous.
            seed: json_u64_field(line, "seed")?,
            steps: usize::try_from(json_u64_field(line, "steps")?).ok()?,
            property: json_str_field(line, "property")?,
            deadline_ms: json_u64_field(line, "deadline_ms")?,
            chaos,
            kept: parse_usize_array(json_array_body(line, "kept")?)?,
            kept_edits: parse_string_array(json_array_body(line, "kept_edits")?)?
                .iter()
                .map(|entry| parse_kept_edits(entry))
                .collect::<Option<Vec<_>>>()?,
            trace: parse_string_array(json_array_body(line, "trace")?)?,
        })
    }

    /// The record's canonical file name within a bug base.
    pub fn file_name(&self) -> String {
        format!(
            "bug-{}-{}-{}-{}.json",
            self.system, self.property, self.profile, self.seed
        )
    }
}

/// Why a bug-base record failed to load.
#[derive(Debug)]
pub enum BugBaseError {
    /// The file could not be read or written.
    Io(io::Error),
    /// The file's contents are not a complete bug record (torn write,
    /// truncation, or foreign content).
    Malformed {
        /// The offending file.
        path: PathBuf,
    },
}

impl std::fmt::Display for BugBaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BugBaseError::Io(e) => write!(f, "bug base i/o error: {e}"),
            BugBaseError::Malformed { path } => {
                write!(f, "malformed bug record: {}", path.display())
            }
        }
    }
}

impl std::error::Error for BugBaseError {}

impl From<io::Error> for BugBaseError {
    fn from(e: io::Error) -> Self {
        BugBaseError::Io(e)
    }
}

/// A directory of [`BugRecord`] files, one record per file.
#[derive(Debug, Clone)]
pub struct BugBase {
    dir: PathBuf,
}

impl BugBase {
    /// Opens (without creating) a bug base rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        BugBase { dir: dir.into() }
    }

    /// The base directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The path a record stores to.
    pub fn path_for(&self, record: &BugRecord) -> PathBuf {
        self.dir.join(record.file_name())
    }

    /// Writes (or overwrites) a record, creating the directory if
    /// needed. Returns the path written.
    pub fn store(&self, record: &BugRecord) -> Result<PathBuf, BugBaseError> {
        std::fs::create_dir_all(&self.dir)?;
        let path = self.path_for(record);
        std::fs::write(&path, record.to_json() + "\n")?;
        Ok(path)
    }

    /// Loads one record from an explicit path.
    pub fn load(path: &Path) -> Result<BugRecord, BugBaseError> {
        let text = std::fs::read_to_string(path)?;
        BugRecord::parse_record(&text).ok_or(BugBaseError::Malformed {
            path: path.to_path_buf(),
        })
    }

    /// Loads every record in the base, sorted by file name (so sweeps
    /// iterate deterministically). A missing directory is an empty
    /// base.
    pub fn records(&self) -> Result<Vec<(PathBuf, BugRecord)>, BugBaseError> {
        let mut paths: Vec<PathBuf> = match std::fs::read_dir(&self.dir) {
            Ok(entries) => entries
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
                .collect(),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        paths.sort();
        paths
            .into_iter()
            .map(|path| Self::load(&path).map(|record| (path, record)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BugRecord {
        BugRecord {
            system: "mysql".to_string(),
            profile: "operator-default".to_string(),
            seed: 42,
            steps: 12,
            property: "recovers-after-revert".to_string(),
            deadline_ms: 0,
            chaos: Some(ChaosSpec {
                seed: 7,
                panic_pm: 0,
                stall_pm: 0,
                fail_pm: 350,
                fail_test_pm: 200,
                stall_ms: 5,
            }),
            kept: vec![0, 3, 7],
            kept_edits: vec![(3, vec![0, 2]), (7, vec![])],
            trace: vec![
                "step 0 inject f0 active=[0] -> undetected".to_string(),
                "line with \"quotes\" and\nnewline".to_string(),
            ],
        }
    }

    #[test]
    fn records_round_trip_including_escapes_and_empty_indices() {
        let record = sample();
        let json = record.to_json();
        assert!(json.starts_with("{\"bug\":{"));
        assert!(json.ends_with("]}}"));
        assert!(!json.contains('\n'), "single line");
        assert_eq!(BugRecord::parse_record(&json), Some(record));

        let no_chaos = BugRecord {
            chaos: None,
            kept_edits: vec![],
            trace: vec![],
            ..sample()
        };
        assert_eq!(BugRecord::parse_record(&no_chaos.to_json()), Some(no_chaos));
    }

    #[test]
    fn torn_and_foreign_lines_are_rejected() {
        let json = sample().to_json();
        for cut in [1, json.len() / 2, json.len() - 1] {
            assert_eq!(BugRecord::parse_record(&json[..cut]), None, "cut at {cut}");
        }
        assert_eq!(BugRecord::parse_record("{\"checkpoint\":{}}"), None);
        assert_eq!(BugRecord::parse_record(""), None);
    }

    #[test]
    fn store_load_and_enumerate() {
        let dir = std::env::temp_dir().join(format!("conferr-bugbase-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let base = BugBase::new(&dir);
        assert!(base.records().unwrap().is_empty(), "missing dir is empty");

        let record = sample();
        let path = base.store(&record).unwrap();
        assert_eq!(BugBase::load(&path).unwrap(), record);
        let listed = base.records().unwrap();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].1, record);

        std::fs::write(dir.join("torn.json"), &record.to_json()[..40]).unwrap();
        assert!(matches!(
            base.records(),
            Err(BugBaseError::Malformed { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
