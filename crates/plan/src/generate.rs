//! Seeded plan generation from workload-weight profiles.
//!
//! A [`PlanGenerator`] derives a [`FaultPlan`] as a pure function of
//! `(baseline, tests, profile, seed, steps)`: fault pools are built
//! deterministically from the baseline (Table 1-style directive
//! deletions and keyboard typos, compound pairs, masking pairs) and a
//! SplitMix64 stream drawn from the seed picks weighted actions. The
//! same seed therefore always yields the byte-identical plan — which
//! is what lets bug-base records replay from a bare seed.

use conferr_keyboard::Keyboard;
use conferr_model::{
    ConfigSet, DeleteTemplate, ErrorClass, ErrorGenerator, FaultPlan, FaultScenario,
    GeneratedFault, PlanAction, StructuralKind, Template,
};
use conferr_plugins::{compound_pairs, masking_pairs, TokenClass, TypoPlugin};

use crate::property::Property;

/// Cap on the single-fault pool: keeps generation O(baseline) while
/// leaving plenty of variety per seed.
const MAX_SINGLES: usize = 64;
/// Cap on the compound and masking pools.
const MAX_COMPOUNDS: usize = 24;
/// Salt separating the compound-pool sampling stream from the action
/// stream.
const COMPOUND_SALT: u64 = 0xc0_4d70_11d5;

/// A deterministic SplitMix64 stream (same finalizer as the model
/// layer's seeded sampling).
#[derive(Debug)]
struct PlanRng {
    state: u64,
}

impl PlanRng {
    fn new(seed: u64) -> Self {
        PlanRng { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n` must be non-zero).
    fn below(&mut self, n: usize) -> usize {
        usize::try_from(self.next_u64() % n as u64).unwrap_or(0)
    }
}

/// Relative weights for each step shape a generated session draws
/// from. Weights are plain `u32`s; a zero weight disables the shape.
///
/// Two shapes are multi-step *templates*: `inject_masking` appends a
/// corrupt-then-delete pair (two inject steps on the same directive)
/// and `partial_fix` appends inject-compound → revert → re-inject-half
/// (an operator who reverted everything, then re-made part of the
/// mistake).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadProfile {
    /// Profile name, as stored in bug-base records.
    pub name: String,
    /// Weight of a single Table 1-style mistake.
    pub inject_single: u32,
    /// Weight of a two-edit compound mistake in one step.
    pub inject_compound: u32,
    /// Weight of the two-step masking template.
    pub inject_masking: u32,
    /// Weight of the three-step partial-fix template.
    pub partial_fix: u32,
    /// Weight of reverting a still-active mistake.
    pub revert: u32,
    /// Weight of a plain restart.
    pub restart: u32,
    /// Weight of re-running one named functional test.
    pub run_test: u32,
    /// Weight of an observe (property marker) step.
    pub observe: u32,
}

impl WorkloadProfile {
    /// The default operator session: mostly single mistakes with
    /// regular reverts, restarts and smoke tests.
    pub fn operator_default() -> Self {
        WorkloadProfile {
            name: "operator-default".to_string(),
            inject_single: 6,
            inject_compound: 2,
            inject_masking: 2,
            partial_fix: 1,
            revert: 4,
            restart: 2,
            run_test: 2,
            observe: 1,
        }
    }

    /// A compound-heavy session: stacked and masking mistakes
    /// dominate — the profile most likely to trip
    /// `degraded-still-diagnosed` and `no-silent-compound`.
    pub fn compound_heavy() -> Self {
        WorkloadProfile {
            name: "compound-heavy".to_string(),
            inject_single: 2,
            inject_compound: 5,
            inject_masking: 5,
            partial_fix: 3,
            revert: 2,
            restart: 1,
            run_test: 1,
            observe: 1,
        }
    }

    /// A revert-happy session: every mistake is soon undone — the
    /// profile most likely to trip `recovers-after-revert`.
    pub fn revert_happy() -> Self {
        WorkloadProfile {
            name: "revert-happy".to_string(),
            inject_single: 5,
            inject_compound: 1,
            inject_masking: 1,
            partial_fix: 1,
            revert: 8,
            restart: 2,
            run_test: 2,
            observe: 1,
        }
    }

    /// All built-in profiles, in stable order.
    pub fn builtin() -> Vec<WorkloadProfile> {
        vec![
            WorkloadProfile::operator_default(),
            WorkloadProfile::compound_heavy(),
            WorkloadProfile::revert_happy(),
        ]
    }

    /// Looks a built-in profile up by name.
    pub fn by_name(name: &str) -> Option<WorkloadProfile> {
        WorkloadProfile::builtin()
            .into_iter()
            .find(|p| p.name == name)
    }
}

/// What a plan generates against: the campaign's pristine baseline and
/// the SUT's functional-test names.
#[derive(Debug, Clone, Copy)]
pub struct PlanContext<'a> {
    /// The campaign baseline configuration.
    pub baseline: &'a ConfigSet,
    /// The SUT's functional tests (for `RunTest` steps).
    pub tests: &'a [String],
}

/// The deterministic single-fault pool a plan draws inject steps
/// from: deletion of every directive (Table 1's omission class) plus
/// keyboard typos in directive values, capped at a fixed pool size.
pub fn single_faults(baseline: &ConfigSet) -> Vec<GeneratedFault> {
    let query: conferr_tree::NodeQuery = "//directive".parse().expect("static query");
    let mut pool: Vec<GeneratedFault> = DeleteTemplate::new(
        query,
        ErrorClass::Structural(StructuralKind::DirectiveOmission),
    )
    .generate(baseline)
    .into_iter()
    .map(GeneratedFault::Scenario)
    .collect();
    let typos = TypoPlugin::new(Keyboard::qwerty_us(), TokenClass::DirectiveValues)
        .generate(baseline)
        .unwrap_or_default();
    pool.extend(typos);
    pool.truncate(MAX_SINGLES);
    pool
}

/// One step shape the weighted picker can choose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Choice {
    Single,
    Compound,
    Masking,
    PartialFix,
    Revert,
    Restart,
    RunTest,
    Observe,
}

/// Derives [`FaultPlan`]s from seeds and a [`WorkloadProfile`].
///
/// # Examples
///
/// Generation is a pure function of the context, seed and step count —
/// the same inputs always produce the byte-identical plan:
///
/// ```
/// use conferr_model::ConfigSet;
/// use conferr_plan::{PlanContext, PlanGenerator, WorkloadProfile};
/// use conferr_tree::{ConfTree, Node};
///
/// let mut baseline = ConfigSet::new();
/// baseline.insert(
///     "app.conf",
///     ConfTree::new(
///         Node::new("config")
///             .with_child(Node::new("directive").with_attr("name", "port").with_text("80"))
///             .with_child(Node::new("directive").with_attr("name", "host").with_text("a")),
///     ),
/// );
/// let tests = vec!["ping".to_string()];
/// let ctx = PlanContext { baseline: &baseline, tests: &tests };
/// let generator = PlanGenerator::new(WorkloadProfile::operator_default());
///
/// let plan = generator.generate(&ctx, 42, 10);
/// assert!(plan.len() >= 10);
/// assert_eq!(plan, generator.generate(&ctx, 42, 10));
/// assert_ne!(plan, generator.generate(&ctx, 43, 10));
/// ```
#[derive(Debug, Clone)]
pub struct PlanGenerator {
    profile: WorkloadProfile,
}

impl PlanGenerator {
    /// Creates a generator for one workload profile.
    pub fn new(profile: WorkloadProfile) -> Self {
        PlanGenerator { profile }
    }

    /// The generator's profile.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Picks one weighted step shape among those currently available.
    fn pick(
        &self,
        rng: &mut PlanRng,
        active: bool,
        singles: bool,
        compounds: bool,
        maskings: bool,
        tests: bool,
    ) -> Choice {
        let p = &self.profile;
        let mut table: Vec<(Choice, u32)> = Vec::with_capacity(8);
        if singles {
            table.push((Choice::Single, p.inject_single));
        }
        if compounds {
            table.push((Choice::Compound, p.inject_compound));
            table.push((Choice::PartialFix, p.partial_fix));
        }
        if maskings {
            table.push((Choice::Masking, p.inject_masking));
        }
        if active {
            table.push((Choice::Revert, p.revert));
        }
        table.push((Choice::Restart, p.restart));
        if tests {
            table.push((Choice::RunTest, p.run_test));
        }
        table.push((Choice::Observe, p.observe));
        let total: u32 = table.iter().map(|(_, w)| w).sum();
        if total == 0 {
            return Choice::Restart;
        }
        let mut roll = rng.below(total as usize) as u32;
        for (choice, weight) in table {
            if roll < weight {
                return choice;
            }
            roll -= weight;
        }
        Choice::Restart
    }

    /// Generates a plan of at least `steps` steps (multi-step
    /// templates may overshoot by up to two).
    pub fn generate(&self, ctx: &PlanContext<'_>, seed: u64, steps: usize) -> FaultPlan {
        let singles = single_faults(ctx.baseline);
        let compounds = compound_pairs(&singles, seed ^ COMPOUND_SALT, MAX_COMPOUNDS);
        let maskings = masking_pairs(ctx.baseline, MAX_COMPOUNDS);
        let mut rng = PlanRng::new(seed);
        let mut actions: Vec<PlanAction> = Vec::with_capacity(steps + 2);
        // Mirrors PlanSource's bookkeeping: which inject step ids are
        // still active (ids are positions, assigned by FaultPlan::new).
        let mut active: Vec<usize> = Vec::new();

        while actions.len() < steps {
            let choice = self.pick(
                &mut rng,
                !active.is_empty(),
                !singles.is_empty(),
                !compounds.is_empty(),
                !maskings.is_empty(),
                !ctx.tests.is_empty(),
            );
            match choice {
                Choice::Single => {
                    let fault = singles[rng.below(singles.len())].clone();
                    active.push(actions.len());
                    actions.push(PlanAction::Inject(fault));
                }
                Choice::Compound => {
                    let fault = compounds[rng.below(compounds.len())].clone();
                    active.push(actions.len());
                    actions.push(PlanAction::Inject(fault));
                }
                Choice::Masking => {
                    let (corrupt, delete) = maskings[rng.below(maskings.len())].clone();
                    active.push(actions.len());
                    actions.push(PlanAction::Inject(corrupt));
                    active.push(actions.len());
                    actions.push(PlanAction::Inject(delete));
                }
                Choice::PartialFix => {
                    let fault = compounds[rng.below(compounds.len())].clone();
                    let half = fault.scenario().map(|s| FaultScenario {
                        id: format!("{}~partial", s.id.replace('+', "&")),
                        description: format!("re-make part of the mistake: {}", s.description),
                        class: s.class.clone(),
                        edits: s.edits.iter().take(1).cloned().collect(),
                    });
                    let id = actions.len();
                    actions.push(PlanAction::Inject(fault));
                    actions.push(PlanAction::Revert { of: id });
                    if let Some(half) = half {
                        active.push(actions.len());
                        actions.push(PlanAction::Inject(GeneratedFault::Scenario(half)));
                    }
                }
                Choice::Revert => {
                    let of = active[rng.below(active.len())];
                    active.retain(|id| *id != of);
                    actions.push(PlanAction::Revert { of });
                }
                Choice::Restart => actions.push(PlanAction::Restart),
                Choice::RunTest => {
                    let test = ctx.tests[rng.below(ctx.tests.len())].clone();
                    actions.push(PlanAction::RunTest(test));
                }
                Choice::Observe => {
                    let oracle = Property::ALL[rng.below(Property::ALL.len())];
                    actions.push(PlanAction::Observe(oracle.name().to_string()));
                }
            }
        }
        FaultPlan::new(seed, actions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conferr_tree::{ConfTree, Node};

    fn baseline() -> ConfigSet {
        let mut set = ConfigSet::new();
        set.insert(
            "app.conf",
            ConfTree::new(
                Node::new("config")
                    .with_child(Node::new("directive").with_attr("name", "a").with_text("1"))
                    .with_child(Node::new("directive").with_attr("name", "b").with_text("2"))
                    .with_child(Node::new("directive").with_attr("name", "c").with_text("3")),
            ),
        );
        set
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let set = baseline();
        let tests = vec!["ping".to_string(), "query".to_string()];
        let ctx = PlanContext {
            baseline: &set,
            tests: &tests,
        };
        for profile in WorkloadProfile::builtin() {
            let generator = PlanGenerator::new(profile);
            let a = generator.generate(&ctx, 9, 16);
            let b = generator.generate(&ctx, 9, 16);
            assert_eq!(a, b);
            assert!(a.len() >= 16 && a.len() <= 18);
            assert_ne!(a, generator.generate(&ctx, 10, 16));
        }
    }

    #[test]
    fn reverts_only_target_previously_active_injects() {
        let set = baseline();
        let ctx = PlanContext {
            baseline: &set,
            tests: &[],
        };
        let generator = PlanGenerator::new(WorkloadProfile::revert_happy());
        for seed in 0..24 {
            let plan = generator.generate(&ctx, seed, 20);
            for (pos, step) in plan.steps.iter().enumerate() {
                if let PlanAction::Revert { of } = &step.action {
                    assert!(
                        *of < pos && matches!(plan.steps[*of].action, PlanAction::Inject(_)),
                        "seed {seed}: revert at {pos} targets {of}"
                    );
                }
            }
        }
    }

    #[test]
    fn profiles_resolve_by_name() {
        for profile in WorkloadProfile::builtin() {
            assert_eq!(WorkloadProfile::by_name(&profile.name), Some(profile));
        }
        assert_eq!(WorkloadProfile::by_name("nope"), None);
    }

    #[test]
    fn single_pool_is_nonempty_and_capped() {
        let pool = single_faults(&baseline());
        assert!(!pool.is_empty());
        assert!(pool.len() <= MAX_SINGLES);
    }
}
