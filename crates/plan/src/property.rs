//! Named property oracles over plan traces.
//!
//! A [`Property`] is a predicate over a whole [`PlanTrace`] — the
//! recovery-centric invariants flat single-shot injection cannot
//! express. Evaluation is pure and deterministic: the same trace
//! always yields the same verdict, which is what makes shrinking and
//! bug-base replay sound.
//!
//! Obligations only attach to steps that actually drove the SUT:
//! `Skipped` and `Inexpressible` outcomes (e.g. stacked edits whose
//! combined scenario no longer applies) are exempt, so the oracles
//! never blame the harness for faults it could not inject.

use std::collections::BTreeSet;

use conferr::{InjectionResult, PlanTrace, StaticVerdict};
use conferr_model::StepKind;

/// A property violation: which oracle failed, at which step, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The violated property's name.
    pub property: &'static str,
    /// The stable id of the step the violation anchors to.
    pub step: usize,
    /// Human-readable explanation.
    pub reason: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "property {} violated at step {}: {}",
            self.property, self.step, self.reason
        )
    }
}

/// `true` iff the result reflects an actual start-and-classify cycle
/// (as opposed to a fault the harness could not inject).
fn drove_sut(result: &InjectionResult) -> bool {
    !matches!(
        result,
        InjectionResult::Skipped { .. } | InjectionResult::Inexpressible { .. }
    )
}

/// `true` iff the system absorbed the step without any signal at all.
fn silent(result: &InjectionResult) -> bool {
    matches!(result, InjectionResult::Undetected { warnings } if warnings.is_empty())
}

/// The built-in property oracles.
///
/// # Examples
///
/// Properties resolve by stable kebab-case name:
///
/// ```
/// use conferr_plan::Property;
///
/// assert_eq!(Property::ALL.len(), 3);
/// for p in Property::ALL {
///     assert_eq!(Property::by_name(p.name()), Some(p));
/// }
/// assert_eq!(Property::by_name("recovers-after-revert"),
///            Some(Property::RecoversAfterRevert));
/// assert_eq!(Property::by_name("nope"), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Property {
    /// After a `Revert`, if every *remaining* active fault was
    /// individually absorbed without complaint at its own inject step
    /// (or nothing remains active), the system must come back up
    /// clean: anything but an undetected (running) outcome — a start
    /// failure, a failed smoke test, a timeout, a harness panic — is
    /// a violation. "The server recovers after the typo is reverted."
    RecoversAfterRevert,
    /// Once a fault has been *diagnosed* (detected at startup or by a
    /// functional test at its inject step), every later step executed
    /// while that fault is still active must also be detected. A
    /// later step that is silently absorbed means a second mistake
    /// *masked* a known-bad configuration; a timeout or harness
    /// failure means the diagnosis was lost. "A second fault on a
    /// degraded config is still diagnosed."
    DegradedStillDiagnosed,
    /// A compound inject (fault id contains `+`) must not be
    /// completely silent while either (a) the static linter says the
    /// configuration will fail to parse or validate, or (b) one of
    /// its components was previously detected *alone* in this trace.
    NoSilentCompound,
}

impl Property {
    /// Every built-in property, in stable order.
    pub const ALL: [Property; 3] = [
        Property::RecoversAfterRevert,
        Property::DegradedStillDiagnosed,
        Property::NoSilentCompound,
    ];

    /// The property's stable kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            Property::RecoversAfterRevert => "recovers-after-revert",
            Property::DegradedStillDiagnosed => "degraded-still-diagnosed",
            Property::NoSilentCompound => "no-silent-compound",
        }
    }

    /// Looks a property up by its [`Property::name`].
    pub fn by_name(name: &str) -> Option<Property> {
        Property::ALL.into_iter().find(|p| p.name() == name)
    }

    /// Evaluates the property over a trace, returning the first
    /// violation (in step order), if any.
    pub fn evaluate(self, trace: &PlanTrace) -> Option<Violation> {
        match self {
            Property::RecoversAfterRevert => self.recovers_after_revert(trace),
            Property::DegradedStillDiagnosed => self.degraded_still_diagnosed(trace),
            Property::NoSilentCompound => self.no_silent_compound(trace),
        }
    }

    fn recovers_after_revert(self, trace: &PlanTrace) -> Option<Violation> {
        for record in &trace.records {
            if record.kind != StepKind::Revert {
                continue;
            }
            let Some(outcome) = &record.outcome else {
                continue;
            };
            if !drove_sut(&outcome.result) {
                continue;
            }
            // The revert's obligation is conditional: only when every
            // fault left active was itself absorbed silently does the
            // operator expect a clean comeback.
            let benign = record.active.iter().all(|id| {
                trace
                    .inject_result(*id)
                    .is_none_or(|r| matches!(r, InjectionResult::Undetected { .. }))
            });
            if benign && !matches!(outcome.result, InjectionResult::Undetected { .. }) {
                return Some(Violation {
                    property: self.name(),
                    step: record.id,
                    reason: format!(
                        "revert left only silently-absorbed faults active \
                         (remaining: {:?}) but the system did not come back: {}",
                        record.active, outcome.result
                    ),
                });
            }
        }
        None
    }

    fn degraded_still_diagnosed(self, trace: &PlanTrace) -> Option<Violation> {
        let mut diagnosed: BTreeSet<usize> = BTreeSet::new();
        for record in &trace.records {
            if record.kind == StepKind::Observe {
                continue;
            }
            let Some(outcome) = &record.outcome else {
                continue;
            };
            let watched: Vec<usize> = record
                .active
                .iter()
                .copied()
                .filter(|id| diagnosed.contains(id))
                .collect();
            if !watched.is_empty() && drove_sut(&outcome.result) && !outcome.result.detected() {
                return Some(Violation {
                    property: self.name(),
                    step: record.id,
                    reason: format!(
                        "previously-diagnosed fault(s) {watched:?} still active, \
                         but this step went undiagnosed: {}",
                        outcome.result
                    ),
                });
            }
            // Reverted faults leave the watch set; a newly detected
            // inject joins it.
            diagnosed.retain(|id| record.active.contains(id));
            if record.kind == StepKind::Inject && outcome.result.detected() {
                diagnosed.insert(record.id);
            }
        }
        None
    }

    fn no_silent_compound(self, trace: &PlanTrace) -> Option<Violation> {
        let mut detected_alone: BTreeSet<&str> = BTreeSet::new();
        for record in &trace.records {
            if record.kind != StepKind::Inject {
                continue;
            }
            let (Some(outcome), Some(fault_id)) = (&record.outcome, record.injected.as_deref())
            else {
                continue;
            };
            if fault_id.contains('+') {
                if silent(&outcome.result) {
                    let statically_bad = matches!(
                        outcome.verdict,
                        StaticVerdict::WillFailParse | StaticVerdict::WillFailValidate { .. }
                    );
                    let masked_component = fault_id
                        .split('+')
                        .any(|component| detected_alone.contains(component));
                    if statically_bad || masked_component {
                        return Some(Violation {
                            property: self.name(),
                            step: record.id,
                            reason: format!(
                                "compound fault {fault_id} was silently absorbed \
                                 (static verdict {:?}, component previously \
                                 detected alone: {masked_component})",
                                outcome.verdict
                            ),
                        });
                    }
                }
            } else if outcome.result.detected() {
                detected_alone.insert(fault_id);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conferr::{InjectionOutcome, StepRecord};
    use conferr_model::{ErrorClass, TypoKind};

    fn outcome(result: InjectionResult) -> InjectionOutcome {
        InjectionOutcome {
            id: "x".to_string(),
            description: "d".to_string(),
            class: ErrorClass::Typo(TypoKind::Omission),
            diff: Vec::new().into(),
            verdict: StaticVerdict::Unknown,
            tier: conferr::Tier::Sim,
            result,
        }
    }

    fn record(
        id: usize,
        kind: StepKind,
        active: Vec<usize>,
        result: Option<InjectionResult>,
    ) -> StepRecord {
        StepRecord {
            id,
            kind,
            detail: "d".to_string(),
            injected: matches!(kind, StepKind::Inject).then(|| format!("f{id}")),
            target: None,
            active,
            outcome: result.map(outcome),
        }
    }

    fn trace(records: Vec<StepRecord>) -> PlanTrace {
        PlanTrace {
            system: "sim".to_string(),
            seed: 0,
            records,
        }
    }

    fn undetected() -> InjectionResult {
        InjectionResult::Undetected { warnings: vec![] }
    }

    fn failed_start() -> InjectionResult {
        InjectionResult::DetectedAtStartup {
            diagnostic: "boom".to_string(),
        }
    }

    #[test]
    fn recovers_after_revert_fires_only_on_benign_residue() {
        // Inject absorbed, revert fails to come back: violation.
        let t = trace(vec![
            record(0, StepKind::Inject, vec![0], Some(undetected())),
            record(
                1,
                StepKind::Revert,
                vec![0],
                Some(InjectionResult::TimedOut {
                    phase: "revert".to_string(),
                    budget_ms: 50,
                }),
            ),
        ]);
        let v = Property::RecoversAfterRevert.evaluate(&t).unwrap();
        assert_eq!(v.step, 1);

        // Remaining active fault was *detected* at inject: the system
        // is legitimately down, no obligation.
        let t = trace(vec![
            record(0, StepKind::Inject, vec![0], Some(failed_start())),
            record(1, StepKind::Revert, vec![0], Some(failed_start())),
        ]);
        assert_eq!(Property::RecoversAfterRevert.evaluate(&t), None);

        // Clean recovery: no violation.
        let t = trace(vec![
            record(0, StepKind::Inject, vec![0], Some(undetected())),
            record(1, StepKind::Revert, vec![], Some(undetected())),
        ]);
        assert_eq!(Property::RecoversAfterRevert.evaluate(&t), None);
    }

    #[test]
    fn skipped_reverts_carry_no_obligation() {
        let t = trace(vec![
            record(0, StepKind::Inject, vec![0], Some(undetected())),
            record(
                1,
                StepKind::Revert,
                vec![0],
                Some(InjectionResult::Skipped {
                    reason: "stale".to_string(),
                }),
            ),
        ]);
        assert_eq!(Property::RecoversAfterRevert.evaluate(&t), None);
    }

    #[test]
    fn degraded_still_diagnosed_catches_masking() {
        // Fault 0 diagnosed; fault 1 stacks on top and the combined
        // config is silently absorbed: violation at step 1.
        let t = trace(vec![
            record(0, StepKind::Inject, vec![0], Some(failed_start())),
            record(1, StepKind::Inject, vec![0, 1], Some(undetected())),
        ]);
        let v = Property::DegradedStillDiagnosed.evaluate(&t).unwrap();
        assert_eq!(v.step, 1);

        // Once the diagnosed fault is reverted, silence is fine again.
        let t = trace(vec![
            record(0, StepKind::Inject, vec![0], Some(failed_start())),
            record(1, StepKind::Revert, vec![], Some(undetected())),
            record(2, StepKind::Restart, vec![], Some(undetected())),
        ]);
        assert_eq!(Property::DegradedStillDiagnosed.evaluate(&t), None);

        // Still-detected while active: no violation.
        let t = trace(vec![
            record(0, StepKind::Inject, vec![0], Some(failed_start())),
            record(1, StepKind::Restart, vec![0], Some(failed_start())),
        ]);
        assert_eq!(Property::DegradedStillDiagnosed.evaluate(&t), None);
    }

    #[test]
    fn no_silent_compound_requires_a_masked_component_or_bad_verdict() {
        let compound = |id: usize, active: Vec<usize>, result| StepRecord {
            injected: Some("a+b".to_string()),
            ..record(id, StepKind::Inject, active, Some(result))
        };
        // Component "a" detected alone earlier, compound silent: fire.
        let t = trace(vec![
            StepRecord {
                injected: Some("a".to_string()),
                ..record(0, StepKind::Inject, vec![0], Some(failed_start()))
            },
            record(1, StepKind::Revert, vec![], Some(undetected())),
            compound(2, vec![2], undetected()),
        ]);
        let v = Property::NoSilentCompound.evaluate(&t).unwrap();
        assert_eq!(v.step, 2);

        // No prior component detection, verdict unknown: silence is
        // tolerated.
        let t = trace(vec![compound(0, vec![0], undetected())]);
        assert_eq!(Property::NoSilentCompound.evaluate(&t), None);

        // Statically condemned but silent: fire.
        let mut rec = compound(0, vec![0], undetected());
        if let Some(o) = &mut rec.outcome {
            o.verdict = StaticVerdict::WillFailParse;
        }
        let t = trace(vec![rec]);
        assert!(Property::NoSilentCompound.evaluate(&t).is_some());
    }
}
