//! Minimizing failing plans to minimal counterexamples.
//!
//! Given a plan that violates a property, [`shrink`] searches for a
//! smaller plan that *still violates the same property*, alternating
//! two passes until a fixpoint:
//!
//! 1. **Drop steps** — try removing each step (last to first; removing
//!    an inject also removes any revert that targets it, which would
//!    otherwise dangle).
//! 2. **Simplify faults** — for surviving multi-edit inject steps, try
//!    dropping individual edits.
//!
//! Every candidate is re-checked through the caller-supplied runner,
//! which executes the candidate plan against a *fresh* SUT and
//! evaluates the property — shrinking never trusts stale traces.
//! Because plan execution is deterministic, the shrink result is a
//! pure function of (plan, property, SUT construction) and is itself
//! replayable.
//!
//! [`Selection`] captures *which* steps and edits survived as index
//! lists, so a bug-base record can store the minimal plan as
//! `seed + selection` and re-derive it from the generator instead of
//! serializing fault scenarios.

use conferr::CampaignError;
use conferr_model::{FaultPlan, GeneratedFault, PlanAction, PlanStep};

use crate::property::Violation;

/// The result of a successful shrink: the minimal still-failing plan,
/// the violation it produces, and how many candidate executions the
/// search spent.
#[derive(Debug, Clone)]
pub struct ShrinkReport {
    /// The minimal plan found (violates the same property as the
    /// original).
    pub minimal: FaultPlan,
    /// The violation the minimal plan produces.
    pub violation: Violation,
    /// Number of plan executions the search performed (including the
    /// initial confirmation run).
    pub runs: usize,
}

/// Removes the step at `pos`, plus any revert that targeted it if it
/// was an inject (a revert of a never-injected step is a semantic
/// no-op, but dropping it keeps candidates honest subsequences).
fn without_step(plan: &FaultPlan, pos: usize) -> FaultPlan {
    let removed = &plan.steps[pos];
    let removed_inject = matches!(removed.action, PlanAction::Inject(_)).then_some(removed.id);
    let kept = plan
        .steps
        .iter()
        .enumerate()
        .filter(|(i, step)| {
            if *i == pos {
                return false;
            }
            match (&step.action, removed_inject) {
                (PlanAction::Revert { of }, Some(target)) => *of != target,
                _ => true,
            }
        })
        .map(|(_, step)| step.clone())
        .collect();
    FaultPlan::from_steps(plan.seed, kept)
}

/// Removes edit `edit_pos` from the inject step at `pos`. Returns
/// `None` if the step is not a multi-edit scenario inject.
fn without_edit(plan: &FaultPlan, pos: usize, edit_pos: usize) -> Option<FaultPlan> {
    let step = &plan.steps[pos];
    let PlanAction::Inject(GeneratedFault::Scenario(scenario)) = &step.action else {
        return None;
    };
    if scenario.edits.len() < 2 || edit_pos >= scenario.edits.len() {
        return None;
    }
    let mut simplified = scenario.clone();
    simplified.edits.remove(edit_pos);
    let mut steps = plan.steps.clone();
    steps[pos] = PlanStep {
        id: step.id,
        action: PlanAction::Inject(GeneratedFault::Scenario(simplified)),
    };
    Some(FaultPlan::from_steps(plan.seed, steps))
}

/// Shrinks `original` to a minimal plan that still fails, re-checking
/// every candidate through `check`.
///
/// `check` runs a candidate plan and returns `Ok(Some(violation))` if
/// the property under scrutiny is violated, `Ok(None)` if the
/// candidate passes. Returns `Ok(None)` overall if the *original* plan
/// does not fail (nothing to shrink).
pub fn shrink<F>(original: &FaultPlan, mut check: F) -> Result<Option<ShrinkReport>, CampaignError>
where
    F: FnMut(&FaultPlan) -> Result<Option<Violation>, CampaignError>,
{
    let mut runs = 1;
    let Some(mut violation) = check(original)? else {
        return Ok(None);
    };
    let mut current = original.clone();

    loop {
        let mut changed = false;

        // Pass 1: drop whole steps, last to first so indices stay
        // valid after a removal.
        let mut pos = current.len();
        while pos > 0 {
            pos -= 1;
            let candidate = without_step(&current, pos);
            runs += 1;
            if let Some(v) = check(&candidate)? {
                current = candidate;
                violation = v;
                changed = true;
                // Removal may have dropped a dependent revert below
                // `pos`; clamp and keep scanning downward.
                pos = pos.min(current.len());
            }
        }

        // Pass 2: simplify multi-edit injects, dropping edits from the
        // end of each step's edit list.
        for step_pos in 0..current.len() {
            let mut edit_pos = match &current.steps[step_pos].action {
                PlanAction::Inject(GeneratedFault::Scenario(s)) => s.edits.len(),
                _ => continue,
            };
            while edit_pos > 0 {
                edit_pos -= 1;
                let Some(candidate) = without_edit(&current, step_pos, edit_pos) else {
                    break;
                };
                runs += 1;
                if let Some(v) = check(&candidate)? {
                    current = candidate;
                    violation = v;
                    changed = true;
                }
            }
        }

        if !changed {
            break;
        }
    }

    Ok(Some(ShrinkReport {
        minimal: current,
        violation,
        runs,
    }))
}

/// Which steps (by stable id) and which edits of each multi-edit
/// inject a shrunken plan kept — enough to re-derive the minimal plan
/// from the regenerated original, so bug-base records never serialize
/// fault scenarios.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selection {
    /// Stable ids of the kept steps, in plan order.
    pub kept: Vec<usize>,
    /// For inject steps whose edit list was simplified: `(step id,
    /// kept edit indices into the original scenario's edit list)`.
    /// Steps keeping all their edits have no entry.
    pub kept_edits: Vec<(usize, Vec<usize>)>,
}

impl Selection {
    /// Derives the selection that turns `original` into `minimal`.
    ///
    /// Assumes `minimal` came from shrinking `original` (i.e.
    /// [`is_subplan`] holds); edit indices are matched greedily as a
    /// subsequence.
    pub fn of(original: &FaultPlan, minimal: &FaultPlan) -> Selection {
        let mut kept = Vec::new();
        let mut kept_edits = Vec::new();
        for step in &minimal.steps {
            kept.push(step.id);
            let (
                PlanAction::Inject(GeneratedFault::Scenario(min_s)),
                Some(PlanAction::Inject(GeneratedFault::Scenario(orig_s))),
            ) = (
                &step.action,
                original
                    .steps
                    .iter()
                    .find(|o| o.id == step.id)
                    .map(|o| &o.action),
            )
            else {
                continue;
            };
            if min_s.edits.len() == orig_s.edits.len() {
                continue;
            }
            // Greedy subsequence match: edits are Eq, and shrinking
            // only removes edits, never reorders them.
            let mut indices = Vec::new();
            let mut from = 0;
            for edit in &min_s.edits {
                if let Some(offset) = orig_s.edits[from..].iter().position(|e| e == edit) {
                    indices.push(from + offset);
                    from += offset + 1;
                }
            }
            kept_edits.push((step.id, indices));
        }
        Selection { kept, kept_edits }
    }

    /// Applies the selection to a (regenerated) original plan,
    /// reproducing the minimal plan.
    pub fn apply(&self, original: &FaultPlan) -> FaultPlan {
        let steps = original
            .steps
            .iter()
            .filter(|step| self.kept.contains(&step.id))
            .map(|step| {
                let Some((_, indices)) = self.kept_edits.iter().find(|(id, _)| *id == step.id)
                else {
                    return step.clone();
                };
                let PlanAction::Inject(GeneratedFault::Scenario(scenario)) = &step.action else {
                    return step.clone();
                };
                let mut simplified = scenario.clone();
                simplified.edits = indices
                    .iter()
                    .filter_map(|i| scenario.edits.get(*i).cloned())
                    .collect();
                PlanStep {
                    id: step.id,
                    action: PlanAction::Inject(GeneratedFault::Scenario(simplified)),
                }
            })
            .collect();
        FaultPlan::from_steps(original.seed, steps)
    }
}

/// `true` iff `minimal` is a valid shrink of `original`: its step ids
/// form a strictly increasing subset of the original's, inject edits
/// are subsequences of the original step's edits, and non-inject steps
/// are unchanged.
pub fn is_subplan(minimal: &FaultPlan, original: &FaultPlan) -> bool {
    let mut last: Option<usize> = None;
    for step in &minimal.steps {
        if last.is_some_and(|prev| step.id <= prev) {
            return false;
        }
        last = Some(step.id);
        let Some(orig) = original.steps.iter().find(|o| o.id == step.id) else {
            return false;
        };
        match (&step.action, &orig.action) {
            (
                PlanAction::Inject(GeneratedFault::Scenario(min_s)),
                PlanAction::Inject(GeneratedFault::Scenario(orig_s)),
            ) => {
                // Subsequence check over Eq edits.
                let mut from = 0;
                for edit in &min_s.edits {
                    match orig_s.edits[from..].iter().position(|e| e == edit) {
                        Some(offset) => from += offset + 1,
                        None => return false,
                    }
                }
            }
            (a, b) if a == b => {}
            _ => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use conferr_model::{ErrorClass, FaultScenario, StructuralKind, TreeEdit};

    fn edit(n: usize) -> TreeEdit {
        TreeEdit::Delete {
            file: format!("f{n}.conf"),
            path: "/0".parse().unwrap(),
        }
    }

    fn inject(tag: &str, edits: Vec<TreeEdit>) -> PlanAction {
        PlanAction::Inject(GeneratedFault::Scenario(FaultScenario {
            id: tag.to_string(),
            description: tag.to_string(),
            class: ErrorClass::Structural(StructuralKind::DirectiveOmission),
            edits,
        }))
    }

    fn violation() -> Violation {
        Violation {
            property: "recovers-after-revert",
            step: 0,
            reason: "r".to_string(),
        }
    }

    fn plan() -> FaultPlan {
        FaultPlan::new(
            9,
            vec![
                inject("a", vec![edit(0)]),
                PlanAction::Restart,
                inject("b", vec![edit(1), edit(2), edit(3)]),
                PlanAction::Revert { of: 0 },
                PlanAction::Observe("x".to_string()),
            ],
        )
    }

    #[test]
    fn shrink_drops_irrelevant_steps_and_edits_to_a_fixpoint() {
        // "Fails" iff step id 2 is present and its fault includes
        // edit(2) — everything else is noise the shrinker must remove.
        let report = shrink(&plan(), |candidate| {
            let fails = candidate.steps.iter().any(|s| {
                s.id == 2
                    && matches!(
                        &s.action,
                        PlanAction::Inject(GeneratedFault::Scenario(sc))
                            if sc.edits.contains(&edit(2))
                    )
            });
            Ok(fails.then(violation))
        })
        .unwrap()
        .expect("original fails");
        assert_eq!(report.minimal.len(), 1);
        assert_eq!(report.minimal.steps[0].id, 2);
        let PlanAction::Inject(GeneratedFault::Scenario(sc)) = &report.minimal.steps[0].action
        else {
            panic!("inject survives");
        };
        assert_eq!(sc.edits, vec![edit(2)]);
        assert!(is_subplan(&report.minimal, &plan()));
        assert!(report.runs > 1);
    }

    #[test]
    fn shrink_of_a_passing_plan_is_none() {
        assert!(shrink(&plan(), |_| Ok(None)).unwrap().is_none());
    }

    #[test]
    fn dropping_an_inject_also_drops_its_revert() {
        let shrunk = without_step(&plan(), 0);
        assert!(shrunk.steps.iter().all(|s| s.id != 0 && s.id != 3));
        assert_eq!(shrunk.len(), 3);
    }

    #[test]
    fn selection_round_trips_the_minimal_plan() {
        let original = plan();
        let minimal = FaultPlan::from_steps(
            original.seed,
            vec![PlanStep {
                id: 2,
                action: inject("b", vec![edit(1), edit(3)]),
            }],
        );
        let selection = Selection::of(&original, &minimal);
        assert_eq!(selection.kept, vec![2]);
        assert_eq!(selection.kept_edits, vec![(2, vec![0, 2])]);
        assert_eq!(selection.apply(&original), minimal);
    }

    #[test]
    fn is_subplan_rejects_reorders_mutations_and_strangers() {
        let original = plan();
        assert!(is_subplan(&original, &original));
        // Reordered ids.
        let reordered = FaultPlan::from_steps(
            original.seed,
            vec![original.steps[2].clone(), original.steps[0].clone()],
        );
        assert!(!is_subplan(&reordered, &original));
        // An edit the original never had.
        let mutated = FaultPlan::from_steps(
            original.seed,
            vec![PlanStep {
                id: 2,
                action: inject("b", vec![edit(9)]),
            }],
        );
        assert!(!is_subplan(&mutated, &original));
        // A step id the original never had.
        let stranger = FaultPlan::from_steps(
            original.seed,
            vec![PlanStep {
                id: 42,
                action: PlanAction::Restart,
            }],
        );
        assert!(!is_subplan(&stranger, &original));
    }
}
