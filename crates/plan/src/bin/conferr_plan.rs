//! `conferr-plan` — operator-session fault plans on the command line.
//!
//! Two modes:
//!
//! * `conferr-plan --generate --system <name> --seed <n> --steps <k>`
//!   generates the deterministic plan for the seed, executes it
//!   statefully against the (optionally chaos-wrapped) simulator,
//!   prints the step-by-step trace and evaluates property oracles.
//!   With `--shrink`, a failing plan is minimized to a counterexample;
//!   with `--bugbase <dir>`, the counterexample is persisted as a
//!   replayable record. Exits 1 when any checked property is violated.
//! * `conferr-plan --replay <file>` reloads a bug-base record,
//!   reconstructs the exact harness (system, chaos rates, deadline),
//!   re-derives the minimal plan and diffs its trace byte-for-byte
//!   against the record; `--replay-seed` instead reruns the whole
//!   generate → shrink pipeline from the bare seed and requires it to
//!   rebuild the identical record. Exits 1 when the replay does not
//!   reproduce.

use std::path::Path;
use std::process::ExitCode;

use conferr::CampaignExecutor;
use conferr_plan::{BugBase, ChaosSpec, PlanHarness, Property};

const USAGE: &str = "usage:
  conferr-plan --generate --system <name> --seed <n> --steps <k> [options]
  conferr-plan --replay <file> [--replay-seed] [--threads <t>]

generate options:
  --system <name>       simulator to drive
                        (mysql, postgres, apache, bind, djbdns, appserver)
  --seed <n>            plan-generator seed
  --steps <k>           minimum step count
  --profile <name>      workload profile (operator-default, compound-heavy,
                        revert-happy; default operator-default)
  --property <name>     oracle to check: recovers-after-revert,
                        degraded-still-diagnosed, no-silent-compound or
                        `all` (default all)
  --shrink              minimize a failing plan to a counterexample
  --bugbase <dir>       persist shrunken counterexamples under <dir>
  --deadline-ms <ms>    per-step fault deadline (0 = unlimited)
  --threads <t>         executor threads (default 1; traces are
                        thread-count independent)

chaos options (wrap the simulator in seeded misbehaviour):
  --chaos-seed <n>          chaos roll seed (default 0)
  --chaos-panic <pm>        start panic rate, per mille
  --chaos-stall <pm>        start stall rate, per mille
  --chaos-fail <pm>         start failure rate, per mille
  --chaos-fail-test <pm>    fabricated test-failure rate, per mille
  --chaos-stall-ms <ms>     stall duration (default 200)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("conferr-plan: {msg}\n{USAGE}");
            ExitCode::from(2)
        }
        Err(CliError::Gate(msg)) => {
            eprintln!("conferr-plan: {msg}");
            ExitCode::FAILURE
        }
    }
}

enum CliError {
    /// Bad invocation (exit 2).
    Usage(String),
    /// A property violation or replay mismatch (exit 1).
    Gate(String),
}

impl From<conferr_plan::PlanError> for CliError {
    fn from(e: conferr_plan::PlanError) -> Self {
        CliError::Usage(e.to_string())
    }
}

impl From<conferr::CampaignError> for CliError {
    fn from(e: conferr::CampaignError) -> Self {
        CliError::Gate(format!("plan execution failed: {e}"))
    }
}

#[derive(Default)]
struct Options {
    generate: bool,
    system: Option<String>,
    seed: Option<u64>,
    steps: Option<usize>,
    profile: String,
    property: String,
    shrink: bool,
    bugbase: Option<String>,
    deadline_ms: u64,
    threads: usize,
    replay: Option<String>,
    replay_seed: bool,
    chaos_seed: u64,
    chaos_panic: u32,
    chaos_stall: u32,
    chaos_fail: u32,
    chaos_fail_test: u32,
    chaos_stall_ms: u64,
    chaos_requested: bool,
}

impl Options {
    fn chaos(&self) -> Option<ChaosSpec> {
        self.chaos_requested.then_some(ChaosSpec {
            seed: self.chaos_seed,
            panic_pm: self.chaos_panic,
            stall_pm: self.chaos_stall,
            fail_pm: self.chaos_fail,
            fail_test_pm: self.chaos_fail_test,
            stall_ms: self.chaos_stall_ms,
        })
    }
}

fn parse_args(args: &[String]) -> Result<Options, CliError> {
    let mut opts = Options {
        profile: "operator-default".to_string(),
        property: "all".to_string(),
        threads: 1,
        chaos_stall_ms: 200,
        ..Options::default()
    };
    let mut i = 0;
    while i < args.len() {
        let take_value = |i: &mut usize| -> Result<String, CliError> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| CliError::Usage(format!("{} needs a value", args[*i - 1])))
        };
        let parse = |flag: &str, raw: String| -> Result<u64, CliError> {
            raw.parse()
                .map_err(|_| CliError::Usage(format!("{flag}: not a number: {raw:?}")))
        };
        match args[i].as_str() {
            "--generate" => opts.generate = true,
            "--system" => opts.system = Some(take_value(&mut i)?),
            "--seed" => opts.seed = Some(parse("--seed", take_value(&mut i)?)?),
            "--steps" => {
                opts.steps = Some(
                    usize::try_from(parse("--steps", take_value(&mut i)?)?)
                        .map_err(|_| CliError::Usage("--steps out of range".to_string()))?,
                );
            }
            "--profile" => opts.profile = take_value(&mut i)?,
            "--property" => opts.property = take_value(&mut i)?,
            "--shrink" => opts.shrink = true,
            "--bugbase" => opts.bugbase = Some(take_value(&mut i)?),
            "--deadline-ms" => {
                opts.deadline_ms = parse("--deadline-ms", take_value(&mut i)?)?;
            }
            "--threads" => {
                opts.threads = usize::try_from(parse("--threads", take_value(&mut i)?)?)
                    .map_err(|_| CliError::Usage("--threads out of range".to_string()))?;
            }
            "--replay" => opts.replay = Some(take_value(&mut i)?),
            "--replay-seed" => opts.replay_seed = true,
            "--chaos-seed" => {
                opts.chaos_seed = parse("--chaos-seed", take_value(&mut i)?)?;
                opts.chaos_requested = true;
            }
            "--chaos-panic" | "--chaos-stall" | "--chaos-fail" | "--chaos-fail-test" => {
                let flag = args[i].clone();
                let pm = u32::try_from(parse(&flag, take_value(&mut i)?)?)
                    .map_err(|_| CliError::Usage(format!("{flag} out of range")))?;
                match flag.as_str() {
                    "--chaos-panic" => opts.chaos_panic = pm,
                    "--chaos-stall" => opts.chaos_stall = pm,
                    "--chaos-fail" => opts.chaos_fail = pm,
                    _ => opts.chaos_fail_test = pm,
                }
                opts.chaos_requested = true;
            }
            "--chaos-stall-ms" => {
                opts.chaos_stall_ms = parse("--chaos-stall-ms", take_value(&mut i)?)?;
                opts.chaos_requested = true;
            }
            "--help" | "-h" => return Err(CliError::Usage("help".to_string())),
            other => return Err(CliError::Usage(format!("unknown argument {other:?}"))),
        }
        i += 1;
    }
    Ok(opts)
}

fn run(args: &[String]) -> Result<(), CliError> {
    let opts = parse_args(args)?;
    if let Some(path) = &opts.replay {
        return replay(&opts, Path::new(path));
    }
    if !opts.generate {
        return Err(CliError::Usage(
            "one of --generate or --replay is required".to_string(),
        ));
    }
    generate(&opts)
}

fn properties_for(name: &str) -> Result<Vec<Property>, CliError> {
    if name == "all" {
        return Ok(Property::ALL.to_vec());
    }
    Property::by_name(name)
        .map(|p| vec![p])
        .ok_or_else(|| CliError::Usage(format!("unknown property {name:?}")))
}

fn generate(opts: &Options) -> Result<(), CliError> {
    let system = opts
        .system
        .as_deref()
        .ok_or_else(|| CliError::Usage("--system is required".to_string()))?;
    let seed = opts
        .seed
        .ok_or_else(|| CliError::Usage("--seed is required".to_string()))?;
    let steps = opts
        .steps
        .ok_or_else(|| CliError::Usage("--steps is required".to_string()))?;
    let properties = properties_for(&opts.property)?;

    let mut harness = PlanHarness::new(system, opts.chaos())?;
    harness.set_deadline_ms(opts.deadline_ms);
    let executor = CampaignExecutor::new(opts.threads);

    let plan = harness.generate(&opts.profile, seed, steps)?;
    let trace = harness.run(&executor, &plan)?;
    println!(
        "plan {system} profile={} seed={seed} steps={}",
        opts.profile,
        plan.len()
    );
    for line in trace.render_lines() {
        println!("{line}");
    }

    let mut violations = Vec::new();
    for property in properties {
        let Some(violation) = property.evaluate(&trace) else {
            println!("property {}: ok", property.name());
            continue;
        };
        println!("property {}: VIOLATED — {violation}", property.name());
        if opts.shrink {
            if let Some(report) = harness.shrink(&executor, &plan, property)? {
                println!(
                    "  minimal counterexample: {} step(s) after {} run(s)",
                    report.minimal.len(),
                    report.runs
                );
                let record = harness.build_record(
                    &executor,
                    &opts.profile,
                    seed,
                    steps,
                    property,
                    &plan,
                    &report.minimal,
                )?;
                for line in &record.trace {
                    println!("  {line}");
                }
                if let Some(dir) = &opts.bugbase {
                    let path = BugBase::new(dir)
                        .store(&record)
                        .map_err(|e| CliError::Gate(e.to_string()))?;
                    println!("  recorded at {}", path.display());
                }
            }
        }
        violations.push(violation);
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(CliError::Gate(format!(
            "{} property violation(s)",
            violations.len()
        )))
    }
}

fn replay(opts: &Options, path: &Path) -> Result<(), CliError> {
    let record = BugBase::load(path).map_err(|e| CliError::Usage(e.to_string()))?;
    let harness = PlanHarness::from_record(&record)?;
    let executor = CampaignExecutor::new(opts.threads);
    println!(
        "replaying {} ({} {} seed={} property={})",
        path.display(),
        record.system,
        record.profile,
        record.seed,
        record.property
    );

    if opts.replay_seed {
        let rebuilt = harness.replay_seed(&executor, &record)?;
        return match rebuilt {
            Some(rebuilt) if rebuilt == record => {
                println!("seed replay reproduced the record exactly");
                Ok(())
            }
            Some(_) => Err(CliError::Gate(
                "seed replay produced a different record".to_string(),
            )),
            None => Err(CliError::Gate(
                "seed replay no longer violates the property".to_string(),
            )),
        };
    }

    let result = harness.replay_record(&executor, &record)?;
    for line in &result.trace {
        println!("{line}");
    }
    if result.matched {
        println!("replay reproduced the stored trace byte-for-byte");
        Ok(())
    } else if result.violated {
        Err(CliError::Gate(
            "replay still violates the property but the trace diverged".to_string(),
        ))
    } else {
        Err(CliError::Gate(
            "replay no longer violates the property".to_string(),
        ))
    }
}
