//! Operator-session fault plans: stateful multi-step scenarios with
//! property oracles, shrinking and a replayable bug base.
//!
//! # Architecture
//!
//! The ConfErr campaign layer (crate `conferr`) injects *independent*
//! single-shot faults. This crate models what a human operator does
//! during a real incident: a seeded *sequence* of actions against one
//! live system — inject a mistake, restart, re-run a smoke test,
//! revert an earlier edit, stack a second mistake on a degraded
//! configuration. In the workspace DAG it sits between core and
//! bench: `model → ... → core (conferr) → plan → bench`.
//!
//! The pipeline, end to end:
//!
//! 1. **Generate** — [`PlanGenerator`] derives a
//!    [`conferr_model::FaultPlan`] as a pure function of
//!    `(baseline, tests, profile, seed, steps)`, drawing weighted step
//!    shapes from a [`WorkloadProfile`] (single Table 1-style
//!    mistakes, compound pairs, corrupt-then-delete *masking*
//!    templates, revert/restart/run-test bookkeeping, partial-fix
//!    templates).
//! 2. **Run** — the plan compiles to an ordinary fault source and
//!    streams through the unmodified `CampaignExecutor`
//!    (`CampaignExecutor::run_plan`), producing a step-by-step
//!    `PlanTrace` that is byte-identical at any thread count.
//! 3. **Check** — named [`Property`] oracles (`recovers-after-revert`,
//!    `degraded-still-diagnosed`, `no-silent-compound`) evaluate the
//!    trace and report the first [`Violation`].
//! 4. **Shrink** — [`shrink`] minimizes a failing plan (drop steps,
//!    then simplify multi-edit faults), re-checking every candidate
//!    against a fresh SUT, and yields a minimal counterexample plus
//!    the [`Selection`] that re-derives it from the regenerated
//!    original.
//! 5. **Persist & replay** — [`BugBase`] stores `{system, profile,
//!    seed, steps, property, chaos, selection, expected trace}`
//!    records as torn-write-safe single-line JSON;
//!    [`PlanHarness::replay_record`] reproduces the counterexample
//!    from the file, [`PlanHarness::replay_seed`] from the bare seed.
//!
//! [`PlanHarness`] glues the pipeline to a named simulator (optionally
//! chaos-wrapped); the `conferr-plan` binary exposes it on the command
//! line.
//!
//! # Examples
//!
//! Generate a deterministic session against the MySQL simulator, run
//! it, and evaluate every built-in property:
//!
//! ```
//! use conferr::CampaignExecutor;
//! use conferr_plan::{PlanHarness, Property};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let harness = PlanHarness::new("mysql", None)?;
//! let plan = harness.generate("operator-default", 42, 6)?;
//! assert_eq!(plan, harness.generate("operator-default", 42, 6)?);
//!
//! let executor = CampaignExecutor::new(1);
//! let trace = harness.run(&executor, &plan)?;
//! assert_eq!(trace.records.len(), plan.len());
//! for property in Property::ALL {
//!     // The simulators are well-behaved without chaos: a short
//!     // default session upholds all three invariants.
//!     assert_eq!(property.evaluate(&trace), None, "{}", property.name());
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod bugbase;
mod generate;
mod harness;
mod property;
mod shrink;

pub use bugbase::{BugBase, BugBaseError, BugRecord, ChaosSpec};
pub use generate::{single_faults, PlanContext, PlanGenerator, WorkloadProfile};
pub use harness::{PlanError, PlanHarness, ReplayResult, SYSTEMS};
pub use property::{Property, Violation};
pub use shrink::{is_subplan, shrink, Selection, ShrinkReport};
