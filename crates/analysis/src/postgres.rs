//! Postgres 8.2 dialect model, extracted from the simulator.
//!
//! Postgres is the disciplined counterpoint to MySQL: unknown
//! directives, out-of-range values, bad units, boolean/enum typos and
//! cross-directive constraint violations are all FATAL at startup.
//! The decision functions here are shared verbatim with
//! `conferr-sut`'s `PostgresSim`, so every FATAL diagnostic the
//! linter predicts is the byte-identical string the simulator emits.

use std::collections::BTreeMap;

use conferr_tree::Node;

use crate::value::{parse_bool_pg, parse_int_strict, parse_size_strict, DirectiveSpec, ValueType};
use crate::verdict::{ValidationClass, Violation};

/// Registry of configuration parameters (a representative subset of
/// Postgres 8.2's ~200 GUC variables; bounds follow the 8.2 docs).
pub const REGISTRY: &[DirectiveSpec] = &[
    DirectiveSpec::new("port", ValueType::Int { min: 1, max: 65535 }, "5432"),
    DirectiveSpec::new("listen_addresses", ValueType::Text, "'localhost'"),
    DirectiveSpec::new(
        "max_connections",
        ValueType::Int { min: 1, max: 10000 },
        "100",
    ),
    DirectiveSpec::new(
        "superuser_reserved_connections",
        ValueType::Int { min: 0, max: 100 },
        "3",
    ),
    DirectiveSpec::new(
        "shared_buffers",
        ValueType::Int {
            min: 16,
            max: 1073741823,
        },
        "1000",
    ),
    DirectiveSpec::new(
        "temp_buffers",
        ValueType::Int {
            min: 100,
            max: 1073741823,
        },
        "1000",
    ),
    DirectiveSpec::new(
        "work_mem",
        ValueType::Size {
            min: 64 * 1024,
            max: 2_147_483_647,
        },
        "1MB",
    ),
    DirectiveSpec::new(
        "maintenance_work_mem",
        ValueType::Size {
            min: 1024 * 1024,
            max: 2_147_483_647,
        },
        "16MB",
    ),
    DirectiveSpec::new(
        "max_fsm_pages",
        ValueType::Int {
            min: 1000,
            max: 2_147_483_647,
        },
        "153600",
    ),
    DirectiveSpec::new(
        "max_fsm_relations",
        ValueType::Int {
            min: 100,
            max: 2_147_483_647,
        },
        "1000",
    ),
    DirectiveSpec::new("wal_buffers", ValueType::Int { min: 4, max: 65536 }, "8"),
    DirectiveSpec::new(
        "checkpoint_segments",
        ValueType::Int { min: 1, max: 65536 },
        "3",
    ),
    DirectiveSpec::new(
        "checkpoint_timeout",
        ValueType::Int { min: 30, max: 3600 },
        "300",
    ),
    DirectiveSpec::new(
        "effective_cache_size",
        ValueType::Int {
            min: 1,
            max: 2_147_483_647,
        },
        "16384",
    ),
    DirectiveSpec::new(
        "random_page_cost",
        ValueType::Float {
            min: 0.0,
            max: 1.0e10,
        },
        "4.0",
    ),
    DirectiveSpec::new(
        "cpu_tuple_cost",
        ValueType::Float {
            min: 0.0,
            max: 1.0e10,
        },
        "0.01",
    ),
    DirectiveSpec::new(
        "vacuum_cost_delay",
        ValueType::Int { min: 0, max: 1000 },
        "0",
    ),
    DirectiveSpec::new(
        "deadlock_timeout",
        ValueType::Int {
            min: 1,
            max: 2_147_483_647,
        },
        "1000",
    ),
    DirectiveSpec::new("fsync", ValueType::Bool, "on"),
    DirectiveSpec::new("ssl", ValueType::Bool, "off"),
    DirectiveSpec::new("autovacuum", ValueType::Bool, "off"),
    DirectiveSpec::new("stats_start_collector", ValueType::Bool, "on"),
    DirectiveSpec::new(
        "log_destination",
        ValueType::Enum(&["stderr", "syslog", "eventlog", "csvlog"]),
        "'stderr'",
    ),
    DirectiveSpec::new(
        "log_min_messages",
        ValueType::Enum(&[
            "debug5", "debug4", "debug3", "debug2", "debug1", "info", "notice", "warning", "error",
            "log", "fatal", "panic",
        ]),
        "notice",
    ),
    DirectiveSpec::new(
        "client_min_messages",
        ValueType::Enum(&[
            "debug5", "debug4", "debug3", "debug2", "debug1", "log", "notice", "warning", "error",
        ]),
        "notice",
    ),
    DirectiveSpec::new("datestyle", ValueType::Text, "'iso, mdy'"),
    DirectiveSpec::new("timezone", ValueType::Text, "unknown"),
    DirectiveSpec::new("lc_messages", ValueType::Text, "'C'"),
    DirectiveSpec::new("search_path", ValueType::Text, "'\"$user\",public'"),
    DirectiveSpec::new("default_with_oids", ValueType::Bool, "off"),
];

/// Postgres name resolution: case-insensitive, exact (no truncation).
/// Returns the canonical lowercase spelling — the unique directive an
/// edit on `raw` can bind to.
pub fn canonical_name(raw: &str) -> String {
    raw.to_ascii_lowercase()
}

/// Strictly validates one value against its spec, returning the
/// canonical stored form or the diagnostic (without `FATAL: ` prefix).
///
/// # Errors
///
/// The verbatim range/type complaint the server logs.
pub fn validate_value(spec: &DirectiveSpec, raw: &str) -> Result<String, String> {
    let unquoted = raw.trim().trim_matches('\'');
    match spec.vtype {
        ValueType::Int { min, max } => match parse_int_strict(unquoted) {
            Some(v) if v >= min && v <= max => Ok(v.to_string()),
            Some(v) => Err(format!(
                "{} = {v} is outside the valid range ({min} .. {max})",
                spec.name
            )),
            None => Err(format!(
                "parameter \"{}\" requires an integer value, got \"{raw}\"",
                spec.name
            )),
        },
        ValueType::Size { min, max } => match parse_size_strict(unquoted) {
            Some(v) if v >= min && v <= max => Ok(v.to_string()),
            Some(v) => Err(format!(
                "{} = {v}B is outside the valid range ({min}B .. {max}B)",
                spec.name
            )),
            None => Err(format!(
                "parameter \"{}\" requires a size value (kB/MB/GB), got \"{raw}\"",
                spec.name
            )),
        },
        ValueType::Float { min, max } => match unquoted.parse::<f64>() {
            Ok(v) if v >= min && v <= max => Ok(v.to_string()),
            Ok(v) => Err(format!(
                "{} = {v} is outside the valid range ({min} .. {max})",
                spec.name
            )),
            Err(_) => Err(format!(
                "parameter \"{}\" requires a numeric value, got \"{raw}\"",
                spec.name
            )),
        },
        ValueType::Bool => match parse_bool_pg(unquoted) {
            Some(v) => Ok(if v { "on" } else { "off" }.to_string()),
            None => Err(format!(
                "parameter \"{}\" requires a Boolean value, got \"{raw}\"",
                spec.name
            )),
        },
        ValueType::Enum(options) => {
            match options.iter().find(|o| o.eq_ignore_ascii_case(unquoted)) {
                Some(o) => Ok(o.to_string()),
                None => Err(format!(
                    "invalid value for parameter \"{}\": \"{raw}\"",
                    spec.name
                )),
            }
        }
        ValueType::Text => Ok(unquoted.to_string()),
    }
}

/// The paper's flagship Postgres feature: constraints *across*
/// directives, checked after all values parse individually.
///
/// # Errors
///
/// The verbatim constraint complaint (without `FATAL: ` prefix).
pub fn check_cross_constraints(vars: &BTreeMap<String, String>) -> Result<(), String> {
    let get_i64 = |name: &str| -> i64 { vars.get(name).and_then(|v| v.parse().ok()).unwrap_or(0) };
    let max_fsm_pages = get_i64("max_fsm_pages");
    let max_fsm_relations = get_i64("max_fsm_relations");
    if max_fsm_pages < 16 * max_fsm_relations {
        return Err(format!(
            "max_fsm_pages must be at least 16 * max_fsm_relations \
             ({max_fsm_pages} < 16 * {max_fsm_relations})"
        ));
    }
    let max_connections = get_i64("max_connections");
    let superuser_reserved = get_i64("superuser_reserved_connections");
    if superuser_reserved >= max_connections {
        return Err(format!(
            "superuser_reserved_connections ({superuser_reserved}) must be less than \
             max_connections ({max_connections})"
        ));
    }
    let shared_buffers = get_i64("shared_buffers");
    if shared_buffers < 2 * max_connections {
        return Err(format!(
            "shared_buffers ({shared_buffers}) must be at least twice \
             max_connections ({max_connections})"
        ));
    }
    Ok(())
}

/// The full startup validation over a parsed `postgresql.conf` tree:
/// strict per-parameter validation then cross-directive constraints.
/// Returns the resolved parameter map.
///
/// # Errors
///
/// The first fatal [`Violation`]; its `message` carries the verbatim
/// `FATAL: ...` diagnostic.
pub fn validate_config(root: &Node) -> Result<BTreeMap<String, String>, Violation> {
    let mut vars: BTreeMap<String, String> = REGISTRY
        .iter()
        .map(|s| {
            (s.name.to_string(), {
                // Defaults pass through the same validator so the
                // stored form is canonical.
                validate_value(s, s.default).expect("registry defaults are valid")
            })
        })
        .collect();
    for node in root.children_of_kind("directive") {
        let raw_name = node.attr("name").unwrap_or("");
        // Case-insensitive, *exact* (no truncation) lookup.
        let lower = raw_name.to_ascii_lowercase();
        let Some(spec) = REGISTRY.iter().find(|s| s.name == lower) else {
            return Err(Violation::new(
                lower,
                ValidationClass::UnknownDirective,
                format!("FATAL: unrecognized configuration parameter \"{raw_name}\""),
            ));
        };
        let raw_value = node.text().unwrap_or("");
        if raw_value.is_empty() {
            return Err(Violation::new(
                spec.name,
                ValidationClass::MissingValue,
                format!("FATAL: parameter \"{raw_name}\" requires a value"),
            ));
        }
        // Unbalanced quoting is a syntax error, exactly as the
        // real guc-file lexer reports it.
        if raw_value.matches('\'').count() % 2 == 1 {
            return Err(Violation::new(
                spec.name,
                ValidationClass::UnterminatedString,
                format!(
                    "FATAL: syntax error in configuration near \"{raw_value}\" \
                     (unterminated quoted string)"
                ),
            ));
        }
        match validate_value(spec, raw_value) {
            Ok(v) => {
                vars.insert(spec.name.to_string(), v);
            }
            Err(msg) => {
                return Err(Violation::new(
                    spec.name,
                    ValidationClass::InvalidValue,
                    format!("FATAL: {msg}"),
                ))
            }
        }
    }
    if let Err(msg) = check_cross_constraints(&vars) {
        let directive = msg
            .split_whitespace()
            .next()
            .unwrap_or("max_fsm_pages")
            .to_string();
        return Err(Violation::new(
            directive,
            ValidationClass::ConstraintViolation,
            format!("FATAL: {msg}"),
        ));
    }
    Ok(vars)
}

/// The semantic fingerprint the linter compares against the baseline:
/// the resolved parameter map determines everything the
/// `connect-and-query` test can observe (the engine limits derive
/// from `max_connections`; the statement cap is fixed).
///
/// # Errors
///
/// The fatal startup [`Violation`], when validation fails.
pub fn fingerprint(root: &Node) -> Result<String, Violation> {
    let vars = validate_config(root)?;
    Ok(format!("{vars:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use conferr_formats::{ConfigFormat, KvFormat};
    use conferr_tree::ConfTree;

    fn parse(text: &str) -> ConfTree {
        KvFormat::new().parse(text).expect("fixture parses")
    }

    #[test]
    fn valid_config_resolves() {
        let tree = parse("max_connections = 90\nshared_buffers = 1000\n");
        let vars = validate_config(tree.root()).expect("valid");
        assert_eq!(vars.get("max_connections").map(String::as_str), Some("90"));
        assert_eq!(vars.get("port").map(String::as_str), Some("5432"));
    }

    #[test]
    fn unknown_parameter_is_fatal() {
        let tree = parse("max_connektions = 100\n");
        let err = validate_config(tree.root()).unwrap_err();
        assert_eq!(err.class, ValidationClass::UnknownDirective);
        assert_eq!(
            err.message,
            "FATAL: unrecognized configuration parameter \"max_connektions\""
        );
    }

    #[test]
    fn missing_value_and_unterminated_string_are_fatal() {
        let err = validate_config(parse("port\n").root()).unwrap_err();
        assert_eq!(err.class, ValidationClass::MissingValue);
        let err = validate_config(parse("datestyle = 'iso\n").root()).unwrap_err();
        assert_eq!(err.class, ValidationClass::UnterminatedString);
        assert!(err.message.contains("unterminated quoted string"));
    }

    #[test]
    fn fsm_cross_constraint_is_fatal() {
        let tree = parse("max_fsm_pages = 15600\n");
        let err = validate_config(tree.root()).unwrap_err();
        assert_eq!(err.class, ValidationClass::ConstraintViolation);
        assert_eq!(err.directive, "max_fsm_pages");
        assert!(err.message.contains("16 * max_fsm_relations"));
    }

    #[test]
    fn out_of_range_is_invalid_value() {
        let tree = parse("max_connections = 0\n");
        let err = validate_config(tree.root()).unwrap_err();
        assert_eq!(err.class, ValidationClass::InvalidValue);
        assert!(err.message.contains("valid range"));
    }

    #[test]
    fn fingerprint_ignores_comment_churn() {
        let a = parse("# one\nport = 5432\n");
        let b = parse("# two\nport = 5432\n");
        assert_eq!(
            fingerprint(a.root()).unwrap(),
            fingerprint(b.root()).unwrap()
        );
        let c = parse("port = 5433\n");
        assert_ne!(
            fingerprint(a.root()).unwrap(),
            fingerprint(c.root()).unwrap()
        );
    }
}
