//! Streaming pre-pass: lint faults as they flow out of any
//! [`FaultSource`], without materializing the load.
//!
//! [`LintedSource`] is a transparent combinator — it yields exactly
//! the faults of its inner source, in order, with the same size hint
//! — that invokes a [`FaultLinter`] on every concrete scenario and
//! hands each `(fault, lint)` pair to an observer callback. Campaigns
//! use it to annotate outcomes; standalone tools use it to survey a
//! fault space's static verdict distribution before any SUT starts.

use std::sync::Arc;

use conferr_model::{FaultSource, GenerateError, GeneratedFault};

use crate::lint::{FaultLinter, Lint};

/// A [`FaultSource`] adapter that lints every scenario it yields.
///
/// Inexpressible faults have no edit list to lint; the observer sees
/// them with the maximally-conservative [`Lint::unknown`] so counts
/// stay in one-to-one correspondence with the stream.
pub struct LintedSource<S, F> {
    inner: S,
    linter: Arc<FaultLinter>,
    observer: F,
}

impl<S, F> std::fmt::Debug for LintedSource<S, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LintedSource")
            .field("linter", &self.linter)
            .finish_non_exhaustive()
    }
}

impl<S, F> LintedSource<S, F>
where
    S: FaultSource,
    F: FnMut(&GeneratedFault, &Lint),
{
    /// Wraps `inner`, reporting each yielded fault's lint to
    /// `observer`.
    pub fn new(inner: S, linter: Arc<FaultLinter>, observer: F) -> Self {
        LintedSource {
            inner,
            linter,
            observer,
        }
    }

    /// Unwraps the adapter, returning the inner source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S, F> FaultSource for LintedSource<S, F>
where
    S: FaultSource,
    F: FnMut(&GeneratedFault, &Lint),
{
    fn next_chunk(
        &mut self,
        max: usize,
        out: &mut Vec<GeneratedFault>,
    ) -> Result<usize, GenerateError> {
        let before = out.len();
        let n = self.inner.next_chunk(max, out)?;
        for fault in &out[before..] {
            let lint = match fault {
                GeneratedFault::Scenario(s) => self.linter.lint(&s.edits),
                GeneratedFault::Inexpressible { .. } => Lint::unknown(self.linter.schema()),
            };
            (self.observer)(fault, &lint);
        }
        Ok(n)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::MYSQL_SCHEMA;
    use crate::verdict::StaticVerdict;
    use conferr_formats::{ConfigFormat, IniFormat};
    use conferr_model::{ConfigSet, EagerSource, ErrorClass, FaultScenario, TreeEdit, TypoKind};
    use conferr_tree::TreePath;

    #[test]
    fn linted_source_is_transparent_and_observes_every_fault() {
        let tree = IniFormat::new()
            .parse("[mysqld]\nport=3306\n# note\n")
            .expect("fixture parses");
        let mut baseline = ConfigSet::new();
        baseline.insert("my.cnf", tree);
        let linter = Arc::new(FaultLinter::new(&MYSQL_SCHEMA, baseline).expect("linter builds"));

        let faults = vec![
            GeneratedFault::Scenario(FaultScenario {
                id: "f1".into(),
                description: "comment churn".into(),
                class: ErrorClass::Typo(TypoKind::Substitution),
                edits: vec![TreeEdit::SetText {
                    file: "my.cnf".into(),
                    path: TreePath::root().child(0).child(1),
                    text: Some("# other note".into()),
                }],
            }),
            GeneratedFault::Inexpressible {
                id: "f2".into(),
                description: "cannot express".into(),
                class: ErrorClass::Typo(TypoKind::Substitution),
                reason: "no representation".into(),
            },
        ];

        let mut seen = Vec::new();
        let mut source = LintedSource::new(EagerSource::new(faults), linter, |f, lint| {
            let id = match f {
                GeneratedFault::Scenario(s) => s.id.clone(),
                GeneratedFault::Inexpressible { id, .. } => id.clone(),
            };
            seen.push((id, lint.verdict.clone()));
        });

        assert_eq!(source.size_hint(), (2, Some(2)));
        let mut out = Vec::new();
        let n = source.next_chunk(16, &mut out).expect("chunk");
        assert_eq!(source.size_hint(), (0, Some(0)));
        drop(source);
        assert_eq!(n, 2);
        assert_eq!(out.len(), 2);
        assert_eq!(
            seen,
            vec![
                ("f1".into(), StaticVerdict::SemanticallySilent),
                ("f2".into(), StaticVerdict::Unknown),
            ]
        );
    }
}
