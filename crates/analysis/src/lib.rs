//! Static fault-space analysis for ConfErr.
//!
//! # Architecture
//!
//! This crate is the *static analysis layer* of the workspace DAG
//! `tree → {keyboard, formats, model, analysis} → {plugins, sut} →
//! core → bench`: everything a simulated server "knows" about its
//! configuration language — valid directive names, value domains,
//! required arguments, cross-directive constraints, which directives
//! each functional test reads — extracted into declarative
//! [`schema::DirectiveSchema`] tables plus the *exact* decision
//! functions the simulators themselves call. Because simulator and
//! analyzer share one implementation, a static verdict can never
//! drift from the dynamic outcome it predicts.
//!
//! Three consumers build on the tables:
//!
//! * [`lint::FaultLinter`] classifies a prepared fault **before any
//!   SUT starts** — apply the edits, serialize with the real format,
//!   re-parse with the real parser, validate the re-parsed tree with
//!   the extracted models — yielding a [`verdict::StaticVerdict`]
//!   and a per-file [`touch::FileTouch`] set.
//! * [`prepass::LintedSource`] streams that classification over any
//!   `conferr_model::FaultSource` without materializing the load.
//! * The injection engine (in `conferr` core) uses the touch sets to
//!   skip functional tests whose declared read-set is provably
//!   disjoint from an edit — test-impact pruning, byte-identical to
//!   the unpruned reference path.
//!
//! The soundness contract is asymmetric by design: `WillFailParse`
//! and `WillFailValidate` promise a failing dynamic start,
//! `SemanticallySilent` promises an undetected, warning-free run
//! (relative to a healthy baseline), and `Unknown` promises nothing.
//! See `StaticVerdict` for the precise statement.

pub mod apache;
pub mod lint;
pub mod mysql;
pub mod postgres;
pub mod prepass;
pub mod schema;
pub mod tinydns;
pub mod touch;
pub mod value;
pub mod verdict;

pub use lint::{FaultLinter, FileSurvey, Lint};
pub use prepass::LintedSource;
pub use schema::{
    schema_for, Dialect, DirectiveSchema, FileSchema, ReadScope, TestImpact, APACHE_SCHEMA,
    APPSERVER_SCHEMA, BIND_SCHEMA, DJBDNS_SCHEMA, MYSQL_SCHEMA, POSTGRES_SCHEMA,
};
pub use touch::{
    scope_intersects, test_is_impacted, whole_config_touch, FileTouch, PrunePlan, TouchMap,
};
pub use verdict::{StaticVerdict, ValidationClass, Violation};
