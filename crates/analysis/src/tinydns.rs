//! djbdns (tinydns) dialect model, extracted from the simulator.
//!
//! `tinydns-data` checks syntax only: unknown record-type prefixes
//! and malformed IPv4 addresses abort the data compile, while
//! cross-record consistency is deliberately unchecked (the paper's
//! Table 3 point). The check functions here are shared verbatim with
//! `conferr-sut`'s `DjbdnsSim`, and the fingerprint captures the
//! loaded record semantics: the ordered `(type, payload)` line
//! sequence, which fully determines the zone store.

use conferr_formats::tinydns_fields;
use conferr_tree::Node;

use crate::verdict::{ValidationClass, Violation};

/// Record-type prefixes whose lines carry an IPv4 address in field 1
/// that must parse (for `@`, `.`, `&` only when non-empty).
pub const IP_CHECKED_TYPES: &[&str] = &["=", "+", "@", ".", "&"];

/// Record-type prefixes `tinydns-data` accepts without further
/// syntax checks.
pub const UNCHECKED_TYPES: &[&str] = &["^", "C", "'", "Z", "%", "-", ":", "3", "6"];

/// Validates one IPv4 address the way `tinydns-data` does.
///
/// # Errors
///
/// A [`Violation`] carrying the verbatim fatal diagnostic.
pub fn check_ip(ip: &str, line_no: usize) -> Result<(), Violation> {
    let octets: Vec<&str> = ip.split('.').collect();
    let valid = octets.len() == 4 && octets.iter().all(|o| o.parse::<u8>().is_ok());
    if valid {
        Ok(())
    } else {
        Err(Violation::new(
            ip,
            ValidationClass::InvalidValue,
            format!(
                "tinydns-data: fatal: unable to parse data line {line_no}: bad IP address '{ip}'"
            ),
        ))
    }
}

/// Validates one data line's syntax, exactly as the loader does
/// before expanding it into records.
///
/// # Errors
///
/// A [`Violation`] carrying the verbatim fatal diagnostic.
pub fn check_line(ty: &str, payload: &str, line_no: usize) -> Result<(), Violation> {
    let fields = tinydns_fields(payload);
    let f = |i: usize| fields.get(i).copied().unwrap_or("");
    match ty {
        "=" | "+" => check_ip(f(1), line_no),
        "@" | "." | "&" => {
            if f(1).is_empty() {
                Ok(())
            } else {
                check_ip(f(1), line_no)
            }
        }
        "^" | "C" | "'" | "Z" | "%" | "-" | ":" | "3" | "6" => Ok(()),
        other => Err(Violation::new(
            other,
            ValidationClass::UnknownDirective,
            format!(
                "tinydns-data: fatal: unable to parse data line {line_no}: unknown \
                 leading character '{other}'"
            ),
        )),
    }
}

/// Validates every line of a parsed data file, in file order. Line
/// numbers count *all* root children (comments and blanks included),
/// matching the loader's numbering.
///
/// # Errors
///
/// The first fatal [`Violation`].
pub fn check_file(root: &Node) -> Result<(), Violation> {
    for (i, node) in root.children().iter().enumerate() {
        if node.kind() != "line" {
            continue;
        }
        let ty = node.attr("type").unwrap_or("");
        check_line(ty, node.text().unwrap_or(""), i + 1)?;
    }
    Ok(())
}

/// The semantic fingerprint the linter compares against the baseline:
/// the ordered `(type, payload)` sequence of data lines, which fully
/// determines the loaded zone store (comments and blank lines load
/// nothing).
///
/// # Errors
///
/// The first fatal [`Violation`], when the syntax check fails.
pub fn fingerprint(root: &Node) -> Result<String, Violation> {
    check_file(root)?;
    let lines: Vec<(&str, &str)> = root
        .children()
        .iter()
        .filter(|n| n.kind() == "line")
        .map(|n| (n.attr("type").unwrap_or(""), n.text().unwrap_or("")))
        .collect();
    Ok(format!("{lines:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use conferr_formats::{ConfigFormat, TinyDnsFormat};
    use conferr_tree::ConfTree;

    fn parse(text: &str) -> ConfTree {
        TinyDnsFormat::new().parse(text).expect("fixture parses")
    }

    #[test]
    fn bad_ip_is_fatal_with_line_number() {
        let tree = parse("# comment\n=www.example.com:192.O.2.10:86400\n");
        let err = check_file(tree.root()).unwrap_err();
        assert_eq!(err.class, ValidationClass::InvalidValue);
        assert_eq!(
            err.message,
            "tinydns-data: fatal: unable to parse data line 2: bad IP address '192.O.2.10'"
        );
    }

    #[test]
    fn unknown_prefix_is_fatal() {
        // The format parser already rejects unknown prefixes, so this
        // arm is only reachable through attribute edits on parsed
        // trees; exercise the checker directly.
        let err = check_line("!", "bogus:line", 1).unwrap_err();
        assert_eq!(err.class, ValidationClass::UnknownDirective);
        assert!(err.message.contains("unknown leading character '!'"));
    }

    #[test]
    fn empty_ip_on_mx_and_ns_lines_is_accepted() {
        let tree = parse("@example.com::mail.example.com:10:86400\n");
        assert!(check_file(tree.root()).is_ok());
    }

    #[test]
    fn fingerprint_ignores_comment_churn_but_sees_record_changes() {
        let a = parse("# one\n=www.example.com:192.0.2.10:86400\n");
        let b = parse("# two\n=www.example.com:192.0.2.10:86400\n");
        assert_eq!(
            fingerprint(a.root()).unwrap(),
            fingerprint(b.root()).unwrap()
        );
        let c = parse("=www.example.com:192.0.2.11:86400\n");
        assert_ne!(
            fingerprint(a.root()).unwrap(),
            fingerprint(c.root()).unwrap()
        );
    }
}
