//! Apache httpd 2.2 dialect model, extracted from the simulator.
//!
//! Apache is the paper's laxest parser, and the registry encodes the
//! asymmetry faithfully: unknown directive names, bad integers, bad
//! keywords, bad `Listen` ports, duplicate listeners and `Order`
//! grammar errors are startup failures, while `AddType`,
//! `ServerAdmin`, `ServerName` and friends accept free-form strings.
//! The decision functions are shared verbatim with `conferr-sut`'s
//! `ApacheSim`; [`startup_model`] additionally replays the service
//! construction (listen sockets, document roots, virtual hosts) to
//! predict startup *warnings* and give the linter a semantic
//! fingerprint of everything the `http-get` probe can observe.

use std::collections::BTreeMap;

use conferr_tree::Node;

use crate::value::parse_int_strict;
use crate::verdict::{ValidationClass, Violation};

/// How a directive's arguments are validated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArgRule {
    /// Any argument string is accepted (the paper's lax cases).
    Lax,
    /// Single strictly parsed integer.
    Int,
    /// First argument must be one of these keywords
    /// (case-insensitive).
    Keyword(&'static [&'static str]),
    /// `Listen`: `port` or `address:port` with a numeric port.
    Listen,
    /// `Allow`/`Deny`: first argument must be `from`.
    FromList,
    /// `Order`: one of the fixed orderings.
    Order,
}

const ON_OFF: &[&str] = &["On", "Off"];

/// Directive registry: name (canonical case) → argument rule.
pub const REGISTRY: &[(&str, ArgRule)] = &[
    ("ServerRoot", ArgRule::Lax),
    ("PidFile", ArgRule::Lax),
    ("Timeout", ArgRule::Int),
    ("KeepAlive", ArgRule::Keyword(ON_OFF)),
    ("MaxKeepAliveRequests", ArgRule::Int),
    ("KeepAliveTimeout", ArgRule::Int),
    ("StartServers", ArgRule::Int),
    ("MinSpareServers", ArgRule::Int),
    ("MaxSpareServers", ArgRule::Int),
    ("ServerLimit", ArgRule::Int),
    ("MaxClients", ArgRule::Int),
    ("MaxRequestsPerChild", ArgRule::Int),
    ("Listen", ArgRule::Listen),
    ("NameVirtualHost", ArgRule::Lax),
    ("User", ArgRule::Lax),
    ("Group", ArgRule::Lax),
    // Paper §5.2: ServerAdmin should take a URL/email but accepts
    // free-form strings.
    ("ServerAdmin", ArgRule::Lax),
    // Paper §5.2: ServerName should take a DNS name but accepts
    // anything.
    ("ServerName", ArgRule::Lax),
    ("UseCanonicalName", ArgRule::Keyword(&["On", "Off", "DNS"])),
    ("DocumentRoot", ArgRule::Lax),
    ("DirectoryIndex", ArgRule::Lax),
    ("AccessFileName", ArgRule::Lax),
    ("TypesConfig", ArgRule::Lax),
    // Paper §5.2: DefaultType/AddType should validate RFC-2045
    // type/subtype but accept free-form strings.
    ("DefaultType", ArgRule::Lax),
    ("AddType", ArgRule::Lax),
    (
        "HostnameLookups",
        ArgRule::Keyword(&["On", "Off", "Double"]),
    ),
    ("ErrorLog", ArgRule::Lax),
    (
        "LogLevel",
        ArgRule::Keyword(&[
            "debug", "info", "notice", "warn", "error", "crit", "alert", "emerg",
        ]),
    ),
    ("LogFormat", ArgRule::Lax),
    ("CustomLog", ArgRule::Lax),
    ("ServerSignature", ArgRule::Keyword(&["On", "Off", "EMail"])),
    (
        "ServerTokens",
        ArgRule::Keyword(&[
            "Full",
            "OS",
            "Minimal",
            "Minor",
            "Major",
            "Prod",
            "ProductOnly",
        ]),
    ),
    ("Alias", ArgRule::Lax),
    ("ScriptAlias", ArgRule::Lax),
    ("IndexOptions", ArgRule::Lax),
    ("AddIconByEncoding", ArgRule::Lax),
    ("AddIconByType", ArgRule::Lax),
    ("AddIcon", ArgRule::Lax),
    ("DefaultIcon", ArgRule::Lax),
    ("ReadmeName", ArgRule::Lax),
    ("HeaderName", ArgRule::Lax),
    ("IndexIgnore", ArgRule::Lax),
    ("AddLanguage", ArgRule::Lax),
    ("LanguagePriority", ArgRule::Lax),
    ("ForceLanguagePriority", ArgRule::Lax),
    ("AddDefaultCharset", ArgRule::Lax),
    ("AddHandler", ArgRule::Lax),
    ("AddOutputFilter", ArgRule::Lax),
    ("EnableMMAP", ArgRule::Keyword(ON_OFF)),
    ("EnableSendfile", ArgRule::Keyword(ON_OFF)),
    ("ExtendedStatus", ArgRule::Keyword(ON_OFF)),
    ("ContentDigest", ArgRule::Keyword(ON_OFF)),
    ("BrowserMatch", ArgRule::Lax),
    ("SetEnvIf", ArgRule::Lax),
    ("ErrorDocument", ArgRule::Lax),
    ("FileETag", ArgRule::Lax),
    ("Options", ArgRule::Lax),
    ("AllowOverride", ArgRule::Lax),
    ("Order", ArgRule::Order),
    ("Allow", ArgRule::FromList),
    ("Deny", ArgRule::FromList),
    ("UserDir", ArgRule::Lax),
];

/// Section (container) names Apache accepts.
pub const SECTIONS: &[&str] = &[
    "Directory",
    "DirectoryMatch",
    "Files",
    "FilesMatch",
    "Location",
    "LocationMatch",
    "VirtualHost",
    "IfModule",
    "IfDefine",
    "LimitExcept",
];

/// The files baked into the simulated host's filesystem — the model
/// behind the `DocumentRoot ... does not exist` startup warning.
pub const FS_FILES: &[&str] = &[
    "/var/www/html/index.html",
    "/var/www/html/logo.png",
    "/var/www/docs/index.html",
    "/var/www/docs/manual/intro.html",
    "/var/www/icons/unknown.gif",
    "/var/www/cgi-bin/status",
];

/// Replays `VirtualFs::dir_exists` over [`FS_FILES`].
pub fn fs_dir_exists(dir: &str) -> bool {
    let prefix = if dir.ends_with('/') {
        dir.to_string()
    } else {
        format!("{dir}/")
    };
    FS_FILES.iter().any(|p| p.starts_with(&prefix))
}

/// Apache name resolution: case-insensitive, exact (no truncation).
/// Returns the lowercase canonical spelling.
pub fn canonical_name(raw: &str) -> String {
    raw.to_ascii_lowercase()
}

/// Looks up the argument rule for a directive name.
pub fn rule_for(name: &str) -> Option<&'static ArgRule> {
    REGISTRY
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .map(|(_, r)| r)
}

/// Validates one directive node against the registry.
///
/// # Errors
///
/// A [`Violation`] carrying the verbatim `httpd` startup diagnostic.
pub fn check_directive(node: &Node) -> Result<(), Violation> {
    let name = node.attr("name").unwrap_or("");
    let args = node.text().unwrap_or("");
    let Some(rule) = rule_for(name) else {
        return Err(Violation::new(
            canonical_name(name),
            ValidationClass::UnknownDirective,
            format!(
                "Invalid command '{name}', perhaps misspelled or defined by a module not \
                 included in the server configuration"
            ),
        ));
    };
    let first = args.split_whitespace().next().unwrap_or("");
    let invalid = |message: String| {
        Err(Violation::new(
            canonical_name(name),
            ValidationClass::InvalidValue,
            message,
        ))
    };
    match rule {
        ArgRule::Lax => Ok(()),
        ArgRule::Int => match parse_int_strict(args) {
            Some(v) if v >= 0 => Ok(()),
            _ => invalid(format!(
                "{name} requires a non-negative integer, got \"{args}\""
            )),
        },
        ArgRule::Keyword(options) => {
            if options.iter().any(|o| o.eq_ignore_ascii_case(first)) {
                Ok(())
            } else {
                invalid(format!("{name} must be one of {options:?}, got \"{args}\""))
            }
        }
        ArgRule::Listen => {
            let port_part = first.rsplit(':').next().unwrap_or("");
            match parse_int_strict(port_part) {
                Some(p) if (1..=65535).contains(&p) => Ok(()),
                _ => invalid(format!(
                    "Listen requires a port number or address:port, got \"{args}\""
                )),
            }
        }
        ArgRule::FromList => {
            if first.eq_ignore_ascii_case("from") {
                Ok(())
            } else {
                invalid(format!(
                    "{name} takes 'from' followed by hosts, got \"{args}\""
                ))
            }
        }
        ArgRule::Order => {
            let ok = ["allow,deny", "deny,allow", "mutual-failure"]
                .iter()
                .any(|o| o.eq_ignore_ascii_case(first));
            if ok {
                Ok(())
            } else {
                invalid(format!("unknown order \"{args}\""))
            }
        }
    }
}

/// Recursively validates every directive and section name.
///
/// # Errors
///
/// The first [`Violation`], in document order — the same order the
/// simulator reports.
pub fn validate_tree(node: &Node) -> Result<(), Violation> {
    for child in node.children() {
        match child.kind() {
            "directive" => check_directive(child)?,
            "section" => {
                let name = child.attr("name").unwrap_or("");
                if !SECTIONS.iter().any(|s| s.eq_ignore_ascii_case(name)) {
                    return Err(Violation::new(
                        canonical_name(name),
                        ValidationClass::UnknownDirective,
                        format!(
                            "Invalid command '<{name}', perhaps misspelled or defined by a \
                             module not included in the server configuration"
                        ),
                    ));
                }
                validate_tree(child)?;
            }
            _ => {}
        }
    }
    Ok(())
}

/// One `<VirtualHost>` in the startup model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VHostModel {
    /// `ServerName`, when declared.
    pub server_name: Option<String>,
    /// Effective document root (falls back to the main server's).
    pub doc_root: String,
    /// URL-prefix → filesystem-prefix aliases declared inside.
    pub aliases: Vec<(String, String)>,
    /// The `address:port` pattern from the section header.
    pub addr_pattern: String,
}

/// Everything `httpd` derives from the configuration at startup: the
/// service shape the `http-get` probe observes, plus the warnings it
/// logs on the way. Field order mirrors the simulator's construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StartupModel {
    /// Warnings logged during startup, in order.
    pub warnings: Vec<String>,
    /// Ports the server listens on, in configuration order.
    pub listen_ports: Vec<u16>,
    /// Main-server document root.
    pub main_doc_root: String,
    /// Directory index file name.
    pub directory_index: String,
    /// `DefaultType` fallback.
    pub default_type: String,
    /// Extension (without dot) → MIME type.
    pub mime_types: BTreeMap<String, String>,
    /// Main-server aliases.
    pub main_aliases: Vec<(String, String)>,
    /// Virtual hosts, in configuration order.
    pub vhosts: Vec<VHostModel>,
}

fn directive_args<'n>(node: &'n Node, name: &str) -> Option<&'n str> {
    node.children_of_kind("directive")
        .find(|d| d.attr("name").is_some_and(|n| n.eq_ignore_ascii_case(name)))
        .and_then(|d| d.text())
}

fn collect_aliases(node: &Node) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for d in node.children_of_kind("directive") {
        let name = d.attr("name").unwrap_or("");
        if name.eq_ignore_ascii_case("Alias") || name.eq_ignore_ascii_case("ScriptAlias") {
            let args: Vec<&str> = d.text().unwrap_or("").split_whitespace().collect();
            if args.len() == 2 {
                out.push((args[0].to_string(), args[1].to_string()));
            }
        }
    }
    out
}

/// Replays `httpd`'s service construction over a *validated* tree:
/// fatal checks (bad listen port, duplicate listeners, no listeners)
/// and warnings (VirtualHost without ServerName, missing main
/// DocumentRoot) in exactly the simulator's order.
///
/// # Errors
///
/// The first fatal [`Violation`], byte-identical to the simulator's
/// startup diagnostic.
pub fn startup_model(root: &Node) -> Result<StartupModel, Violation> {
    let mut warnings = Vec::new();
    let mut listen_ports: Vec<u16> = Vec::new();
    let mut mime_types = BTreeMap::new();
    let mut main_doc_root = "/var/www/html".to_string();
    let mut directory_index = "index.html".to_string();
    let mut default_type = "text/plain".to_string();
    for d in root.children_of_kind("directive") {
        let name = d.attr("name").unwrap_or("");
        let args = d.text().unwrap_or("");
        if name.eq_ignore_ascii_case("Listen") {
            let port_part = args
                .split_whitespace()
                .next()
                .unwrap_or("")
                .rsplit(':')
                .next()
                .unwrap_or("");
            let port: u16 = port_part.parse().map_err(|_| {
                Violation::new(
                    "listen",
                    ValidationClass::InvalidValue,
                    format!("Listen port \"{port_part}\" is not a valid port"),
                )
            })?;
            if listen_ports.contains(&port) {
                return Err(Violation::new(
                    "listen",
                    ValidationClass::DuplicateListen,
                    format!(
                        "(98)Address already in use: make_sock: could not bind to \
                         address [::]:{port}"
                    ),
                ));
            }
            listen_ports.push(port);
        } else if name.eq_ignore_ascii_case("DocumentRoot") {
            main_doc_root = args.trim().trim_matches('"').to_string();
        } else if name.eq_ignore_ascii_case("DirectoryIndex") {
            if let Some(first) = args.split_whitespace().next() {
                directory_index = first.to_string();
            }
        } else if name.eq_ignore_ascii_case("DefaultType") {
            default_type = args.trim().to_string();
        } else if name.eq_ignore_ascii_case("AddType") {
            let mut toks = args.split_whitespace();
            if let Some(mime) = toks.next() {
                for ext in toks {
                    mime_types.insert(ext.trim_start_matches('.').to_string(), mime.to_string());
                }
            }
        }
    }
    let main_aliases = collect_aliases(root);
    let mut vhosts = Vec::new();
    for section in root.children_of_kind("section") {
        if !section
            .attr("name")
            .is_some_and(|n| n.eq_ignore_ascii_case("VirtualHost"))
        {
            continue;
        }
        let server_name = directive_args(section, "ServerName").map(|s| s.trim().to_string());
        if server_name.is_none() {
            // The common mistake called out in §2.2: a VirtualHost
            // without its ServerName.
            warnings.push(format!(
                "NameVirtualHost {}: VirtualHost has no ServerName; requests may be \
                 misrouted",
                section.attr("args").unwrap_or("*:80")
            ));
        }
        let doc_root = directive_args(section, "DocumentRoot").map_or_else(
            || main_doc_root.clone(),
            |s| s.trim().trim_matches('"').to_string(),
        );
        vhosts.push(VHostModel {
            server_name,
            doc_root,
            aliases: collect_aliases(section),
            addr_pattern: section.attr("args").unwrap_or("*:80").to_string(),
        });
    }
    if listen_ports.is_empty() {
        return Err(Violation::new(
            "listen",
            ValidationClass::NoListenSockets,
            "no listening sockets available, shutting down",
        ));
    }
    if !fs_dir_exists(&main_doc_root) {
        warnings.push(format!(
            "Warning: DocumentRoot [{main_doc_root}] does not exist"
        ));
    }
    Ok(StartupModel {
        warnings,
        listen_ports,
        main_doc_root,
        directory_index,
        default_type,
        mime_types,
        main_aliases,
        vhosts,
    })
}

/// The semantic fingerprint the linter compares against the baseline:
/// the full startup model (service shape *and* warnings) determines
/// both the start outcome and the `http-get` probe's response.
///
/// # Errors
///
/// The first fatal [`Violation`], when validation fails.
pub fn fingerprint(root: &Node) -> Result<String, Violation> {
    validate_tree(root)?;
    let model = startup_model(root)?;
    Ok(format!("{model:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use conferr_formats::{ApacheFormat, ConfigFormat};
    use conferr_tree::ConfTree;

    fn parse(text: &str) -> ConfTree {
        ApacheFormat::new().parse(text).expect("fixture parses")
    }

    #[test]
    fn unknown_directive_is_invalid_command() {
        let tree = parse("KeepAlvie On\nListen 80\n");
        let err = validate_tree(tree.root()).unwrap_err();
        assert_eq!(err.class, ValidationClass::UnknownDirective);
        assert!(err.message.starts_with("Invalid command 'KeepAlvie'"));
    }

    #[test]
    fn duplicate_listen_is_fatal_in_the_model() {
        let tree = parse("Listen 80\nListen 80\n");
        assert!(validate_tree(tree.root()).is_ok());
        let err = startup_model(tree.root()).unwrap_err();
        assert_eq!(err.class, ValidationClass::DuplicateListen);
        assert!(err.message.contains("Address already in use"));
    }

    #[test]
    fn missing_listen_is_fatal_in_the_model() {
        let tree = parse("Timeout 120\n");
        let err = startup_model(tree.root()).unwrap_err();
        assert_eq!(err.class, ValidationClass::NoListenSockets);
    }

    #[test]
    fn missing_docroot_warns() {
        let tree = parse("Listen 80\nDocumentRoot /var/www/htm\n");
        let model = startup_model(tree.root()).expect("starts");
        assert_eq!(
            model.warnings,
            vec!["Warning: DocumentRoot [/var/www/htm] does not exist".to_string()]
        );
        assert!(fs_dir_exists("/var/www/html"));
        assert!(!fs_dir_exists("/var/www/htm"));
    }

    #[test]
    fn vhost_without_servername_warns() {
        let tree =
            parse("Listen 80\n<VirtualHost *:80>\nDocumentRoot /var/www/html\n</VirtualHost>\n");
        let model = startup_model(tree.root()).expect("starts");
        assert!(model.warnings[0].contains("no ServerName"));
        assert_eq!(model.vhosts.len(), 1);
    }

    #[test]
    fn fingerprint_ignores_comment_churn_but_sees_listen_changes() {
        let a = parse("# a\nListen 80\nServerName www.example.com\n");
        let b = parse("# b\nListen 80\nServerName www.example.com\n");
        assert_eq!(
            fingerprint(a.root()).unwrap(),
            fingerprint(b.root()).unwrap()
        );
        let c = parse("Listen 81\nServerName www.example.com\n");
        assert_ne!(
            fingerprint(a.root()).unwrap(),
            fingerprint(c.root()).unwrap()
        );
    }
}
