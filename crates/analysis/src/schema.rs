//! Declarative per-SUT schemas: files, dialects, and test read-sets.

/// Which extracted dialect model governs a configuration file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dialect {
    /// `my.cnf` — sectioned INI validated by [`crate::mysql`].
    MySqlIni,
    /// `postgresql.conf` — key/value validated by [`crate::postgres`].
    PostgresKv,
    /// `httpd.conf` — Apache syntax validated by [`crate::apache`].
    ApacheHttpd,
    /// tinydns `data` — line records validated by [`crate::tinydns`].
    TinyDns,
    /// BIND zone files — parsed but not statically modeled.
    BindZone,
    /// App-server `server.xml` — parsed but not statically modeled.
    AppServerXml,
}

impl Dialect {
    /// Whether a full validation model exists, enabling
    /// `WillFailValidate` and `SemanticallySilent` verdicts. Files of
    /// unmodeled dialects still get sound `WillFailParse` verdicts
    /// (the round-trip re-parse uses the real format parser).
    pub fn is_fully_modeled(self) -> bool {
        matches!(
            self,
            Dialect::MySqlIni | Dialect::PostgresKv | Dialect::ApacheHttpd | Dialect::TinyDns
        )
    }

    /// Whether edits to files of this dialect can be refined to
    /// per-directive touch sets (dialects whose tests read whole
    /// files gain nothing from refinement).
    pub fn refines_touch_sets(self) -> bool {
        matches!(
            self,
            Dialect::MySqlIni | Dialect::PostgresKv | Dialect::ApacheHttpd
        )
    }

    /// The exact startup diagnostic a simulator of this dialect emits
    /// when its configuration file fails to parse, given the format
    /// parser's error text. The simulators and the static linter both
    /// build parse-failure diagnostics through this one function, so
    /// the strings cannot drift — which is what lets a static-triage
    /// campaign synthesize `DetectedAtStartup` outcomes byte-identical
    /// to a real start.
    pub fn parse_failure_diagnostic(self, error: &str) -> String {
        match self {
            Dialect::MySqlIni => format!("error while reading my.cnf: {error}"),
            Dialect::PostgresKv => format!("syntax error in postgresql.conf: {error}"),
            Dialect::ApacheHttpd => format!("Syntax error in httpd.conf: {error}"),
            Dialect::TinyDns => format!("tinydns-data: fatal: {error}"),
            Dialect::BindZone => format!("dns_master_load: {error}"),
            Dialect::AppServerXml => format!("server.xml is not well-formed: {error}"),
        }
    }
}

/// One configuration file a SUT consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileSchema {
    /// File name, as used in `ConfigSet`/`ConfigPayload`.
    pub file: &'static str,
    /// Format name, resolvable via `conferr_formats::format_by_name`.
    pub format: &'static str,
    /// Which dialect model validates it.
    pub dialect: Dialect,
}

/// What part of a file a functional test reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadScope {
    /// The test observes the whole file; no edit to it is prunable.
    WholeFile,
    /// The test observes only these directives (canonical names, as
    /// produced by the dialect's name resolution).
    Directives(&'static [&'static str]),
}

/// The declared read-set of one functional test: which directives of
/// which files its outcome can depend on. The soundness obligation
/// runs *outward*: any file or directive **not** listed here must be
/// provably unobservable by the test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TestImpact {
    /// Test name, as returned by `SystemUnderTest::test_names`.
    pub test: &'static str,
    /// Per-file read scopes. Files absent from this list are never
    /// read by the test.
    pub reads: &'static [(&'static str, ReadScope)],
}

/// Everything a simulator statically knows about its configuration
/// language, extracted into one declarative table.
///
/// ```
/// use conferr_analysis::{schema_for, Dialect, ReadScope};
///
/// let schema = schema_for("mysql-sim").expect("mysql is modeled");
/// assert_eq!(schema.system, "mysql-sim");
/// assert_eq!(schema.file("my.cnf").unwrap().dialect, Dialect::MySqlIni);
///
/// // The smoke test reads only the port and the two engine limits;
/// // edits to any other [mysqld] variable cannot change its outcome.
/// let test = schema.test("connect-and-query").unwrap();
/// assert!(matches!(test.reads[0].1, ReadScope::Directives(_)));
///
/// // Short names work too; unknown systems have no schema.
/// assert!(schema_for("postgres").is_some());
/// assert!(schema_for("nginx").is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirectiveSchema {
    /// The SUT's name, as returned by `SystemUnderTest::name`.
    pub system: &'static str,
    /// The configuration files the SUT consumes.
    pub files: &'static [FileSchema],
    /// Declared read-sets of the SUT's functional tests. Tests absent
    /// from this list are treated as reading everything.
    pub tests: &'static [TestImpact],
}

impl DirectiveSchema {
    /// Looks up a file's schema by name.
    pub fn file(&self, name: &str) -> Option<&FileSchema> {
        self.files.iter().find(|f| f.file == name)
    }

    /// Looks up a test's declared read-set by name.
    pub fn test(&self, name: &str) -> Option<&TestImpact> {
        self.tests.iter().find(|t| t.test == name)
    }
}

/// MySQL: the smoke test dials port 3306 and exercises the engine,
/// whose limits derive from `max_connections`/`max_allowed_packet`;
/// every other server variable is absorbed without observable effect
/// on the test. The dump tool re-reads the raw file, so its read
/// scope is the whole file.
pub static MYSQL_SCHEMA: DirectiveSchema = DirectiveSchema {
    system: "mysql-sim",
    files: &[FileSchema {
        file: "my.cnf",
        format: "ini",
        dialect: Dialect::MySqlIni,
    }],
    tests: &[
        TestImpact {
            test: "connect-and-query",
            reads: &[(
                "my.cnf",
                ReadScope::Directives(&["port", "max_connections", "max_allowed_packet"]),
            )],
        },
        TestImpact {
            test: "mysqldump-tool",
            reads: &[("my.cnf", ReadScope::WholeFile)],
        },
    ],
};

/// Postgres: the engine's only configurable limit is
/// `max_connections` (the statement cap is fixed), so the smoke test
/// reads exactly one directive.
pub static POSTGRES_SCHEMA: DirectiveSchema = DirectiveSchema {
    system: "postgres-sim",
    files: &[FileSchema {
        file: "postgresql.conf",
        format: "kv",
        dialect: Dialect::PostgresKv,
    }],
    tests: &[TestImpact {
        test: "connect-and-query",
        reads: &[(
            "postgresql.conf",
            ReadScope::Directives(&["max_connections"]),
        )],
    }],
};

/// Apache: the HTTP probe observes listen sockets, host routing and
/// document lookup — `DefaultType`/`AddType` affect only the
/// Content-Type header, never the response status the probe checks.
/// Names are canonical-lowercase, as Apache resolution produces.
pub static APACHE_SCHEMA: DirectiveSchema = DirectiveSchema {
    system: "apache-sim",
    files: &[FileSchema {
        file: "httpd.conf",
        format: "apache",
        dialect: Dialect::ApacheHttpd,
    }],
    tests: &[TestImpact {
        test: "http-get",
        reads: &[(
            "httpd.conf",
            ReadScope::Directives(&[
                "listen",
                "servername",
                "documentroot",
                "directoryindex",
                "alias",
                "scriptalias",
            ]),
        )],
    }],
};

/// BIND: each liveness probe reads its own zone file only. This is
/// sound because zone loading is additive across files — an edit to
/// the *other* zone file can add records but never remove the probed
/// zone's SOA (and a load failure fails startup before any test).
pub static BIND_SCHEMA: DirectiveSchema = DirectiveSchema {
    system: "bind-sim",
    files: &[
        FileSchema {
            file: "forward.zone",
            format: "zone",
            dialect: Dialect::BindZone,
        },
        FileSchema {
            file: "reverse.zone",
            format: "zone",
            dialect: Dialect::BindZone,
        },
    ],
    tests: &[
        TestImpact {
            test: "forward-zone-alive",
            reads: &[("forward.zone", ReadScope::WholeFile)],
        },
        TestImpact {
            test: "reverse-zone-alive",
            reads: &[("reverse.zone", ReadScope::WholeFile)],
        },
    ],
};

/// djbdns: one data file defines both zones, so both probes read all
/// of it.
pub static DJBDNS_SCHEMA: DirectiveSchema = DirectiveSchema {
    system: "djbdns-sim",
    files: &[FileSchema {
        file: "data",
        format: "tinydns",
        dialect: Dialect::TinyDns,
    }],
    tests: &[
        TestImpact {
            test: "forward-zone-alive",
            reads: &[("data", ReadScope::WholeFile)],
        },
        TestImpact {
            test: "reverse-zone-alive",
            reads: &[("data", ReadScope::WholeFile)],
        },
    ],
};

/// App server: the deploy check walks the whole descriptor.
pub static APPSERVER_SCHEMA: DirectiveSchema = DirectiveSchema {
    system: "appserver-sim",
    files: &[FileSchema {
        file: "server.xml",
        format: "xml",
        dialect: Dialect::AppServerXml,
    }],
    tests: &[TestImpact {
        test: "deploy-check",
        reads: &[("server.xml", ReadScope::WholeFile)],
    }],
};

/// Looks up a system's schema by SUT name (`mysql-sim`) or short name
/// (`mysql`).
pub fn schema_for(name: &str) -> Option<&'static DirectiveSchema> {
    let short = name.strip_suffix("-sim").unwrap_or(name);
    match short {
        "mysql" => Some(&MYSQL_SCHEMA),
        "postgres" => Some(&POSTGRES_SCHEMA),
        "apache" => Some(&APACHE_SCHEMA),
        "bind" => Some(&BIND_SCHEMA),
        "djbdns" => Some(&DJBDNS_SCHEMA),
        "appserver" => Some(&APPSERVER_SCHEMA),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_lookup_accepts_both_spellings() {
        for (long, schema) in [
            ("mysql-sim", &MYSQL_SCHEMA),
            ("postgres-sim", &POSTGRES_SCHEMA),
            ("apache-sim", &APACHE_SCHEMA),
            ("bind-sim", &BIND_SCHEMA),
            ("djbdns-sim", &DJBDNS_SCHEMA),
            ("appserver-sim", &APPSERVER_SCHEMA),
        ] {
            assert_eq!(schema_for(long), Some(schema));
            assert_eq!(schema_for(long.strip_suffix("-sim").unwrap()), Some(schema));
            assert_eq!(schema.system, long);
        }
        assert_eq!(schema_for("nginx"), None);
    }

    #[test]
    fn declared_reads_reference_declared_files() {
        for schema in [
            &MYSQL_SCHEMA,
            &POSTGRES_SCHEMA,
            &APACHE_SCHEMA,
            &BIND_SCHEMA,
            &DJBDNS_SCHEMA,
            &APPSERVER_SCHEMA,
        ] {
            for test in schema.tests {
                for (file, _) in test.reads {
                    assert!(
                        schema.file(file).is_some(),
                        "{}: test {} reads undeclared file {}",
                        schema.system,
                        test.test,
                        file
                    );
                }
            }
        }
    }

    #[test]
    fn modeled_and_refinable_dialects_are_consistent() {
        assert!(Dialect::TinyDns.is_fully_modeled());
        assert!(!Dialect::TinyDns.refines_touch_sets());
        assert!(!Dialect::BindZone.is_fully_modeled());
        assert!(Dialect::ApacheHttpd.refines_touch_sets());
    }
}
