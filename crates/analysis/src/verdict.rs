//! Static verdicts and the violations that justify them.

use std::fmt;

use serde::{Deserialize, Serialize};

/// What the static linter predicts a prepared fault will do when the
/// mutated configuration is handed to the system under test.
///
/// # Soundness contract
///
/// The contract is deliberately asymmetric:
///
/// * [`StaticVerdict::WillFailParse`] and
///   [`StaticVerdict::WillFailValidate`] **guarantee** that starting
///   the SUT on the mutated payload fails (a `StartOutcome::Failed`,
///   i.e. the campaign classifies the fault as detected at startup).
/// * [`StaticVerdict::SemanticallySilent`] guarantees — *relative to
///   a healthy, warning-free baseline* — that the run completes
///   undetected with no warnings: every edit leaves the effective
///   configuration byte-identical to the baseline once re-parsed.
/// * [`StaticVerdict::Unknown`] promises nothing; the dynamic
///   pipeline is the only authority for such faults.
///
/// The linter is free to answer `Unknown` whenever it is not certain,
/// so precision (how often it answers at all) is a quality metric,
/// while the two `WillFail*` variants and `SemanticallySilent` are
/// hard correctness claims checked by the precision-gate tests.
///
/// ```
/// use conferr_analysis::StaticVerdict;
///
/// let v = StaticVerdict::WillFailParse;
/// assert_eq!(v.label(), "will-fail-parse");
/// assert!(v.predicts_start_failure());
/// assert!(!StaticVerdict::Unknown.predicts_start_failure());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum StaticVerdict {
    /// The mutated file no longer parses under the SUT's own config
    /// parser; startup will fail before any validation runs.
    WillFailParse,
    /// The mutated tree parses but violates the SUT's validation
    /// model; startup will reject it.
    WillFailValidate {
        /// The directive (canonical spelling where one exists) that
        /// triggers the rejection.
        directive: String,
        /// Which family of check rejects it.
        class: ValidationClass,
    },
    /// The edit cannot change the SUT's effective configuration: the
    /// mutated payload re-parses to the same validated model as the
    /// baseline (e.g. a comment typo).
    SemanticallySilent,
    /// The linter makes no claim.
    Unknown,
}

impl StaticVerdict {
    /// Stable machine-readable label, used in CSV exports and the
    /// `conferr-lint` report.
    pub fn label(&self) -> &'static str {
        match self {
            StaticVerdict::WillFailParse => "will-fail-parse",
            StaticVerdict::WillFailValidate { .. } => "will-fail-validate",
            StaticVerdict::SemanticallySilent => "semantically-silent",
            StaticVerdict::Unknown => "unknown",
        }
    }

    /// True for the two variants that promise a failing startup.
    pub fn predicts_start_failure(&self) -> bool {
        matches!(
            self,
            StaticVerdict::WillFailParse | StaticVerdict::WillFailValidate { .. }
        )
    }
}

impl fmt::Display for StaticVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaticVerdict::WillFailValidate { directive, class } => {
                write!(f, "will-fail-validate({directive}: {})", class.label())
            }
            other => f.write_str(other.label()),
        }
    }
}

/// The family of validation check a [`Violation`] belongs to —
/// the "which failure class" structure the outcome rows carry for
/// downstream clustering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValidationClass {
    /// Directive name not in the registry.
    UnknownDirective,
    /// Abbreviated name matches several registry entries.
    AmbiguousDirective,
    /// Value fails the directive's type/range check.
    InvalidValue,
    /// Directive requires a value but none was supplied.
    MissingValue,
    /// Quoted string never closes.
    UnterminatedString,
    /// A cross-directive constraint is violated.
    ConstraintViolation,
    /// A path points outside the simulated filesystem.
    InvalidPath,
    /// Two listeners bind the same address.
    DuplicateListen,
    /// No listening sockets remain.
    NoListenSockets,
}

impl ValidationClass {
    /// Stable machine-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            ValidationClass::UnknownDirective => "unknown-directive",
            ValidationClass::AmbiguousDirective => "ambiguous-directive",
            ValidationClass::InvalidValue => "invalid-value",
            ValidationClass::MissingValue => "missing-value",
            ValidationClass::UnterminatedString => "unterminated-string",
            ValidationClass::ConstraintViolation => "constraint-violation",
            ValidationClass::InvalidPath => "invalid-path",
            ValidationClass::DuplicateListen => "duplicate-listen",
            ValidationClass::NoListenSockets => "no-listen-sockets",
        }
    }
}

/// One concrete validation failure: the offending directive, the
/// check family, and the *exact* diagnostic string the simulator
/// would emit at startup. Simulators call the extracted deciders and
/// keep only `message`, so the diagnostic text cannot drift between
/// static and dynamic paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Offending directive (canonical spelling where one exists).
    pub directive: String,
    /// Which family of check rejected it.
    pub class: ValidationClass,
    /// The simulator's verbatim startup diagnostic.
    pub message: String,
}

impl Violation {
    /// Shorthand constructor.
    pub fn new(
        directive: impl Into<String>,
        class: ValidationClass,
        message: impl Into<String>,
    ) -> Self {
        Violation {
            directive: directive.into(),
            class,
            message: message.into(),
        }
    }

    /// Converts into the matching verdict.
    pub fn into_verdict(self) -> StaticVerdict {
        StaticVerdict::WillFailValidate {
            directive: self.directive,
            class: self.class,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(StaticVerdict::Unknown.label(), "unknown");
        assert_eq!(
            StaticVerdict::SemanticallySilent.label(),
            "semantically-silent"
        );
        assert_eq!(
            StaticVerdict::WillFailValidate {
                directive: "port".into(),
                class: ValidationClass::InvalidValue,
            }
            .label(),
            "will-fail-validate"
        );
        assert_eq!(ValidationClass::DuplicateListen.label(), "duplicate-listen");
    }

    #[test]
    fn display_includes_directive_and_class() {
        let v = StaticVerdict::WillFailValidate {
            directive: "listen".into(),
            class: ValidationClass::DuplicateListen,
        };
        assert_eq!(
            v.to_string(),
            "will-fail-validate(listen: duplicate-listen)"
        );
        assert_eq!(StaticVerdict::WillFailParse.to_string(), "will-fail-parse");
    }

    #[test]
    fn violation_round_trips_into_verdict() {
        let v = Violation::new("datadir", ValidationClass::InvalidPath, "boom");
        assert_eq!(
            v.clone().into_verdict(),
            StaticVerdict::WillFailValidate {
                directive: "datadir".into(),
                class: ValidationClass::InvalidPath,
            }
        );
        assert!(v.into_verdict().predicts_start_failure());
    }
}
