//! Shared directive-registry machinery and value parsers.
//!
//! Each simulated server owns a registry of [`DirectiveSpec`]s (name,
//! value type, default) but applies its *own* parsing and validation
//! discipline on top — that per-system discipline is precisely what
//! ConfErr measures, so the lenient and strict parsing helpers both
//! live here, clearly labelled. The simulators in `conferr-sut` and
//! the static linter in this crate call the very same functions,
//! which is what makes static verdicts sound by construction.

use std::fmt;

/// The value domain of a directive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueType {
    /// Integer with inclusive bounds.
    Int {
        /// Minimum accepted value.
        min: i64,
        /// Maximum accepted value.
        max: i64,
    },
    /// Byte size with `K`/`M`/`G` multiplier suffixes and inclusive
    /// bounds (in bytes).
    Size {
        /// Minimum accepted size in bytes.
        min: u64,
        /// Maximum accepted size in bytes.
        max: u64,
    },
    /// Floating-point with inclusive bounds.
    Float {
        /// Minimum accepted value.
        min: f64,
        /// Maximum accepted value.
        max: f64,
    },
    /// Boolean.
    Bool,
    /// One of a fixed set of keywords (case-insensitive).
    Enum(&'static [&'static str]),
    /// Free-form text (paths, host names, quoted strings, ...).
    Text,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueType::Int { min, max } => write!(f, "integer [{min}, {max}]"),
            ValueType::Size { min, max } => write!(f, "size [{min}B, {max}B]"),
            ValueType::Float { min, max } => write!(f, "float [{min}, {max}]"),
            ValueType::Bool => f.write_str("boolean"),
            ValueType::Enum(options) => write!(f, "one of {options:?}"),
            ValueType::Text => f.write_str("text"),
        }
    }
}

/// One directive a server understands.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DirectiveSpec {
    /// Canonical directive name.
    pub name: &'static str,
    /// Value domain.
    pub vtype: ValueType,
    /// Default value used when the directive is absent (or, for
    /// lenient servers, when the supplied value is unusable).
    pub default: &'static str,
}

impl DirectiveSpec {
    /// Shorthand constructor.
    pub const fn new(name: &'static str, vtype: ValueType, default: &'static str) -> Self {
        DirectiveSpec {
            name,
            vtype,
            default,
        }
    }
}

/// Strict full-string integer parse (sign allowed).
pub fn parse_int_strict(s: &str) -> Option<i64> {
    let t = s.trim();
    if t.is_empty() {
        return None;
    }
    t.parse::<i64>().ok()
}

/// C-`strtol`-style *prefix* integer parse: consumes leading digits
/// (after an optional sign) and ignores the rest. `"33o6"` parses to
/// `33` — the lenient discipline behind several MySQL findings.
pub fn parse_int_prefix(s: &str) -> Option<i64> {
    let t = s.trim();
    let (sign, rest) = match t.strip_prefix('-') {
        Some(r) => (-1i64, r),
        None => (1, t.strip_prefix('+').unwrap_or(t)),
    };
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    if digits.is_empty() {
        return None;
    }
    digits.parse::<i64>().ok().map(|v| sign * v)
}

/// Strict size parse: an integer followed by *exactly* one optional
/// multiplier suffix consuming the whole string (Postgres-style, with
/// `kB`/`MB`/`GB` spellings accepted case-insensitively alongside
/// bare `K`/`M`/`G`).
pub fn parse_size_strict(s: &str) -> Option<u64> {
    let t = s.trim();
    let digits: String = t.chars().take_while(char::is_ascii_digit).collect();
    if digits.is_empty() {
        return None;
    }
    let value: u64 = digits.parse().ok()?;
    let suffix = &t[digits.len()..];
    let multiplier = match suffix.to_ascii_lowercase().as_str() {
        "" => 1,
        "k" | "kb" => 1024,
        "m" | "mb" => 1024 * 1024,
        "g" | "gb" => 1024 * 1024 * 1024,
        _ => return None,
    };
    value.checked_mul(multiplier)
}

/// Result of MySQL's quirky size parsing — see [`parse_size_mysql`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MySqlParse {
    /// A value was produced (possibly ignoring trailing junk).
    Value(u64),
    /// The value is invalid in a way MySQL *silently* absorbs,
    /// substituting the default (the paper's flaw cases).
    SilentDefault,
    /// The value is invalid in a way MySQL reports at startup.
    Invalid,
}

/// MySQL's lenient size parse (paper §5.2): consume leading digits,
/// then **stop at the first multiplier symbol**, ignoring anything
/// after it — `"1M0"` parses as one megabyte. Values that *start*
/// with a multiplier are "silently ignored and defaults are used
/// instead"; any other malformed value (unknown suffix, no digits) is
/// rejected with a startup error, as the real option parser does.
pub fn parse_size_mysql(s: &str) -> MySqlParse {
    let t = s.trim();
    let digits: String = t.chars().take_while(char::is_ascii_digit).collect();
    if digits.is_empty() {
        // The documented flaw: a value *starting* with a multiplier
        // suffix is silently replaced by the default.
        return match t.chars().next().map(|c| c.to_ascii_lowercase()) {
            Some('k' | 'm' | 'g') => MySqlParse::SilentDefault,
            _ => MySqlParse::Invalid,
        };
    }
    let Ok(value) = digits.parse::<u64>() else {
        return MySqlParse::Invalid;
    };
    match t[digits.len()..].chars().next() {
        // Plain number.
        None => MySqlParse::Value(value),
        Some(c) => match c.to_ascii_lowercase() {
            // The documented flaw: parsing stops after the first
            // multiplier symbol, accepting values like "1M0".
            'k' => mul(value, 1024),
            'm' => mul(value, 1024 * 1024),
            'g' => mul(value, 1024 * 1024 * 1024),
            _ => MySqlParse::Invalid,
        },
    }
}

fn mul(value: u64, multiplier: u64) -> MySqlParse {
    match value.checked_mul(multiplier) {
        Some(v) => MySqlParse::Value(v),
        None => MySqlParse::Invalid,
    }
}

/// MySQL boolean spellings.
pub fn parse_bool_mysql(s: &str) -> Option<bool> {
    match s.trim().to_ascii_uppercase().as_str() {
        "1" | "ON" | "TRUE" | "YES" => Some(true),
        "0" | "OFF" | "FALSE" | "NO" => Some(false),
        _ => None,
    }
}

/// Postgres boolean spellings.
pub fn parse_bool_pg(s: &str) -> Option<bool> {
    let t = s.trim().trim_matches('\'');
    match t.to_ascii_lowercase().as_str() {
        "on" | "true" | "yes" | "1" => Some(true),
        "off" | "false" | "no" | "0" => Some(false),
        _ => None,
    }
}

/// Resolves `name` against a registry accepting unambiguous
/// *prefixes* (MySQL's truncatable option names, Table 2). Returns
/// the canonical name, or an error describing why resolution failed.
///
/// # Errors
///
/// [`PrefixError::Unknown`] when nothing matches,
/// [`PrefixError::Ambiguous`] when several entries share the prefix.
pub fn resolve_prefix<'a>(
    registry: impl Iterator<Item = &'a str>,
    name: &str,
) -> Result<&'a str, PrefixError> {
    let mut exact: Option<&'a str> = None;
    let mut matches: Vec<&'a str> = Vec::new();
    for candidate in registry {
        if candidate == name {
            exact = Some(candidate);
        }
        if candidate.starts_with(name) {
            matches.push(candidate);
        }
    }
    if let Some(e) = exact {
        return Ok(e);
    }
    match matches.len() {
        0 => Err(PrefixError::Unknown),
        1 => Ok(matches[0]),
        _ => Err(PrefixError::Ambiguous {
            candidates: matches
                .iter()
                .map(std::string::ToString::to_string)
                .collect(),
        }),
    }
}

/// Why prefix resolution failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefixError {
    /// No registry entry starts with the name.
    Unknown,
    /// More than one registry entry starts with the name.
    Ambiguous {
        /// The colliding candidates.
        candidates: Vec<String>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_int_rejects_garbage() {
        assert_eq!(parse_int_strict("100"), Some(100));
        assert_eq!(parse_int_strict(" -5 "), Some(-5));
        assert_eq!(parse_int_strict("33o6"), None);
        assert_eq!(parse_int_strict(""), None);
    }

    #[test]
    fn prefix_int_is_lenient() {
        assert_eq!(parse_int_prefix("33o6"), Some(33));
        assert_eq!(parse_int_prefix("100"), Some(100));
        assert_eq!(parse_int_prefix("-12x"), Some(-12));
        assert_eq!(parse_int_prefix("x12"), None);
    }

    #[test]
    fn strict_size_requires_full_match() {
        assert_eq!(parse_size_strict("16M"), Some(16 << 20));
        assert_eq!(parse_size_strict("8kB"), Some(8 * 1024));
        assert_eq!(parse_size_strict("2GB"), Some(2 << 30));
        assert_eq!(parse_size_strict("1M0"), None, "trailing junk must fail");
        assert_eq!(parse_size_strict("M10"), None);
    }

    #[test]
    fn mysql_size_reproduces_the_paper_flaw() {
        // "a value like 1M0 is accepted as valid" (§5.2).
        assert_eq!(parse_size_mysql("1M0"), MySqlParse::Value(1 << 20));
        // "values that start with one of the mentioned suffixes ...
        // are silently ignored" — the default is substituted.
        assert_eq!(parse_size_mysql("M10"), MySqlParse::SilentDefault);
        assert_eq!(parse_size_mysql("16M"), MySqlParse::Value(16 << 20));
        // Other malformations are reported at startup.
        assert_eq!(parse_size_mysql("16Q"), MySqlParse::Invalid);
        assert_eq!(parse_size_mysql("abc"), MySqlParse::Invalid);
        assert_eq!(parse_size_mysql(""), MySqlParse::Invalid);
    }

    #[test]
    fn bool_spellings() {
        assert_eq!(parse_bool_mysql("ON"), Some(true));
        assert_eq!(parse_bool_mysql("0"), Some(false));
        assert_eq!(parse_bool_mysql("o"), None);
        assert_eq!(parse_bool_pg("off"), Some(false));
        assert_eq!(parse_bool_pg("'on'"), Some(true));
        assert_eq!(parse_bool_pg("of"), None);
    }

    #[test]
    fn prefix_resolution() {
        let names = ["max_connections", "max_allowed_packet", "port"];
        assert_eq!(resolve_prefix(names.into_iter(), "port"), Ok("port"));
        assert_eq!(
            resolve_prefix(names.into_iter(), "max_connect"),
            Ok("max_connections")
        );
        assert_eq!(
            resolve_prefix(names.into_iter(), "nope"),
            Err(PrefixError::Unknown)
        );
        assert!(matches!(
            resolve_prefix(names.into_iter(), "max_"),
            Err(PrefixError::Ambiguous { .. })
        ));
    }

    #[test]
    fn exact_match_beats_prefix_ambiguity() {
        let names = ["port", "port_open_timeout"];
        assert_eq!(resolve_prefix(names.into_iter(), "port"), Ok("port"));
    }

    #[test]
    fn value_type_display() {
        assert_eq!(ValueType::Bool.to_string(), "boolean");
        assert!(ValueType::Int { min: 0, max: 9 }
            .to_string()
            .contains("[0, 9]"));
    }
}
