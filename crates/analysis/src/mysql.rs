//! MySQL 5.1 dialect model, extracted from the simulator.
//!
//! The registries and decision functions here are the *single source
//! of truth*: `conferr-sut`'s `MySqlSim` calls them (keeping only the
//! diagnostic `message`), and the fault linter calls them to predict
//! startup outcomes. Every documented flaw (silent defaults for
//! out-of-bounds values, `1M0` suffix parsing, valueless directives,
//! latent tool-section errors) therefore behaves identically on the
//! static and dynamic paths.

use std::collections::BTreeMap;

use conferr_tree::Node;

use crate::value::{
    parse_bool_mysql, parse_int_strict, parse_size_mysql, resolve_prefix, DirectiveSpec,
    MySqlParse, PrefixError, ValueType,
};
use crate::verdict::{ValidationClass, Violation};

/// Registry of `[mysqld]` server variables (a representative subset of
/// MySQL 5.1's ~280 system variables; bounds follow the 5.1 manual).
pub const SERVER_REGISTRY: &[DirectiveSpec] = &[
    DirectiveSpec::new("port", ValueType::Int { min: 0, max: 65535 }, "3306"),
    DirectiveSpec::new("socket", ValueType::Text, "/var/run/mysqld/mysqld.sock"),
    DirectiveSpec::new("datadir", ValueType::Text, "/var/lib/mysql"),
    DirectiveSpec::new("basedir", ValueType::Text, "/usr"),
    DirectiveSpec::new("tmpdir", ValueType::Text, "/tmp"),
    DirectiveSpec::new("bind_address", ValueType::Text, "0.0.0.0"),
    DirectiveSpec::new(
        "key_buffer_size",
        ValueType::Size {
            min: 8192,
            max: 4_294_967_295,
        },
        "8388608",
    ),
    DirectiveSpec::new(
        "max_allowed_packet",
        ValueType::Size {
            min: 1024,
            max: 1_073_741_824,
        },
        "1048576",
    ),
    DirectiveSpec::new(
        "table_open_cache",
        ValueType::Int {
            min: 1,
            max: 524288,
        },
        "64",
    ),
    DirectiveSpec::new(
        "sort_buffer_size",
        ValueType::Size {
            min: 32768,
            max: 4_294_967_295,
        },
        "2097144",
    ),
    DirectiveSpec::new(
        "net_buffer_length",
        ValueType::Size {
            min: 1024,
            max: 1_048_576,
        },
        "16384",
    ),
    DirectiveSpec::new(
        "read_buffer_size",
        ValueType::Size {
            min: 8192,
            max: 2_147_479_552,
        },
        "131072",
    ),
    DirectiveSpec::new(
        "read_rnd_buffer_size",
        ValueType::Size {
            min: 8192,
            max: 4_294_967_295,
        },
        "262144",
    ),
    DirectiveSpec::new(
        "myisam_sort_buffer_size",
        ValueType::Size {
            min: 4096,
            max: 4_294_967_295,
        },
        "8388608",
    ),
    DirectiveSpec::new(
        "thread_cache_size",
        ValueType::Int { min: 0, max: 16384 },
        "0",
    ),
    DirectiveSpec::new(
        "thread_stack",
        ValueType::Size {
            min: 131072,
            max: 4_294_967_295,
        },
        "196608",
    ),
    DirectiveSpec::new(
        "max_connections",
        ValueType::Int {
            min: 1,
            max: 100000,
        },
        "151",
    ),
    DirectiveSpec::new(
        "max_connect_errors",
        ValueType::Int {
            min: 1,
            max: 4_294_967_295,
        },
        "10",
    ),
    DirectiveSpec::new(
        "wait_timeout",
        ValueType::Int {
            min: 1,
            max: 31536000,
        },
        "28800",
    ),
    DirectiveSpec::new(
        "interactive_timeout",
        ValueType::Int {
            min: 1,
            max: 31536000,
        },
        "28800",
    ),
    DirectiveSpec::new(
        "query_cache_size",
        ValueType::Size {
            min: 0,
            max: 4_294_967_295,
        },
        "0",
    ),
    DirectiveSpec::new(
        "tmp_table_size",
        ValueType::Size {
            min: 1024,
            max: 4_294_967_295,
        },
        "16777216",
    ),
    DirectiveSpec::new(
        "join_buffer_size",
        ValueType::Size {
            min: 8192,
            max: 4_294_967_295,
        },
        "131072",
    ),
    DirectiveSpec::new(
        "bulk_insert_buffer_size",
        ValueType::Size {
            min: 0,
            max: 4_294_967_295,
        },
        "8388608",
    ),
    DirectiveSpec::new(
        "server_id",
        ValueType::Int {
            min: 0,
            max: 4_294_967_295,
        },
        "0",
    ),
    DirectiveSpec::new("back_log", ValueType::Int { min: 1, max: 65535 }, "50"),
    DirectiveSpec::new(
        "open_files_limit",
        ValueType::Int { min: 0, max: 65535 },
        "0",
    ),
    DirectiveSpec::new("skip_external_locking", ValueType::Bool, "1"),
    DirectiveSpec::new("skip_networking", ValueType::Bool, "0"),
    DirectiveSpec::new("log_error", ValueType::Text, "/var/log/mysql/error.log"),
    DirectiveSpec::new("slow_query_log", ValueType::Bool, "0"),
    DirectiveSpec::new(
        "long_query_time",
        ValueType::Int {
            min: 1,
            max: 31536000,
        },
        "10",
    ),
    DirectiveSpec::new(
        "default_storage_engine",
        ValueType::Enum(&["MyISAM", "InnoDB", "MEMORY", "CSV"]),
        "MyISAM",
    ),
    DirectiveSpec::new(
        "character_set_server",
        ValueType::Enum(&["latin1", "utf8", "ascii", "ucs2"]),
        "latin1",
    ),
    DirectiveSpec::new("collation_server", ValueType::Text, "latin1_swedish_ci"),
    DirectiveSpec::new("sql_mode", ValueType::Text, ""),
    DirectiveSpec::new("ft_min_word_len", ValueType::Int { min: 1, max: 84 }, "4"),
    DirectiveSpec::new(
        "innodb_buffer_pool_size",
        ValueType::Size {
            min: 1_048_576,
            max: 4_294_967_295,
        },
        "8388608",
    ),
    DirectiveSpec::new(
        "innodb_log_file_size",
        ValueType::Size {
            min: 1_048_576,
            max: 4_294_967_295,
        },
        "5242880",
    ),
    DirectiveSpec::new(
        "innodb_additional_mem_pool_size",
        ValueType::Size {
            min: 524_288,
            max: 4_294_967_295,
        },
        "1048576",
    ),
    DirectiveSpec::new(
        "innodb_log_buffer_size",
        ValueType::Size {
            min: 262_144,
            max: 4_294_967_295,
        },
        "1048576",
    ),
    DirectiveSpec::new(
        "query_cache_limit",
        ValueType::Size {
            min: 0,
            max: 4_294_967_295,
        },
        "1048576",
    ),
    DirectiveSpec::new(
        "max_heap_table_size",
        ValueType::Size {
            min: 16384,
            max: 4_294_967_295,
        },
        "16777216",
    ),
    DirectiveSpec::new("innodb_data_home_dir", ValueType::Text, "/var/lib/mysql"),
    DirectiveSpec::new(
        "innodb_log_group_home_dir",
        ValueType::Text,
        "/var/lib/mysql",
    ),
    DirectiveSpec::new("pid_file", ValueType::Text, "/var/run/mysqld/mysqld.pid"),
    DirectiveSpec::new(
        "general_log_file",
        ValueType::Text,
        "/var/log/mysql/mysql.log",
    ),
    DirectiveSpec::new(
        "slow_query_log_file",
        ValueType::Text,
        "/var/log/mysql/mysql-slow.log",
    ),
    DirectiveSpec::new("character_sets_dir", ValueType::Text, "/usr/share/charsets"),
    DirectiveSpec::new("init_connect", ValueType::Text, "SET NAMES latin1"),
    DirectiveSpec::new("ft_stopword_file", ValueType::Text, "/usr/share/stopwords"),
    DirectiveSpec::new("log_bin", ValueType::Text, "/var/log/mysql/mysql-bin"),
    DirectiveSpec::new("relay_log", ValueType::Text, "/var/log/mysql/relay-bin"),
    DirectiveSpec::new(
        "log_bin_index",
        ValueType::Text,
        "/var/log/mysql/mysql-bin.index",
    ),
    DirectiveSpec::new(
        "relay_log_index",
        ValueType::Text,
        "/var/log/mysql/relay-bin.index",
    ),
    DirectiveSpec::new("plugin_dir", ValueType::Text, "/usr/lib/mysql/plugin"),
    DirectiveSpec::new("ssl_ca", ValueType::Text, "/etc/mysql/cacert.pem"),
    DirectiveSpec::new("ssl_cert", ValueType::Text, "/etc/mysql/server-cert.pem"),
    DirectiveSpec::new("ssl_key", ValueType::Text, "/etc/mysql/server-key.pem"),
    DirectiveSpec::new("init_file", ValueType::Text, "/etc/mysql/init.sql"),
    DirectiveSpec::new("language", ValueType::Text, "/usr/share/mysql/english"),
    DirectiveSpec::new("report_user", ValueType::Text, "repl"),
    DirectiveSpec::new("master_host", ValueType::Text, "replica-source.example.com"),
    DirectiveSpec::new("master_user", ValueType::Text, "repl"),
    DirectiveSpec::new("report_host", ValueType::Text, "db1.example.com"),
    DirectiveSpec::new("secure_auth_path", ValueType::Text, "/var/lib/mysql/auth"),
    DirectiveSpec::new("slave_load_tmpdir", ValueType::Text, "/tmp"),
];

/// Registry for the `mysqldump` tool section (parsed only when the
/// tool runs — the latent-error design flaw).
pub const DUMP_REGISTRY: &[DirectiveSpec] = &[
    DirectiveSpec::new("quick", ValueType::Bool, "0"),
    DirectiveSpec::new(
        "max_allowed_packet",
        ValueType::Size {
            min: 1024,
            max: 1_073_741_824,
        },
        "25165824",
    ),
    DirectiveSpec::new("single_transaction", ValueType::Bool, "0"),
    DirectiveSpec::new("compress", ValueType::Bool, "0"),
];

/// The port an administrator's plain `mysql -h 127.0.0.1` invocation
/// uses — the functional test connects here.
pub const DEFAULT_PORT: &str = "3306";

/// Directories that exist on the simulated host; path-valued
/// directives are validated against these, as the real server does
/// when opening its data directory, socket and log files.
pub const EXISTING_DIRS: &[&str] = &[
    "/var/lib/mysql",
    "/var/run/mysqld",
    "/var/log/mysql",
    "/usr",
    "/tmp",
];

/// The path-valued directives checked at startup, in check order.
pub const PATH_DIRECTIVES: &[&str] = &["datadir", "basedir", "tmpdir", "socket", "log_error"];

/// Whether a path points at (or into) a directory that exists on the
/// simulated host.
pub fn path_is_valid(path: &str) -> bool {
    let t = path.trim();
    if EXISTING_DIRS.contains(&t) {
        return true;
    }
    // A file path is fine when its parent directory exists.
    match t.rfind('/') {
        Some(0) => false,
        Some(idx) => EXISTING_DIRS.contains(&&t[..idx]),
        None => false,
    }
}

/// Normalises an option name: `-` and `_` are interchangeable.
pub fn normalize_name(name: &str) -> String {
    name.replace('-', "_")
}

/// All canonical server-variable names a raw spelling may resolve to:
/// one name for an exact or unambiguous-prefix match, every candidate
/// for an ambiguous prefix, and the normalised raw spelling when
/// nothing matches. Used by touch-set refinement, which must cover
/// every directive an edit *could* bind to.
pub fn canonical_names(raw: &str) -> Vec<String> {
    let name = normalize_name(raw);
    match resolve_prefix(SERVER_REGISTRY.iter().map(|s| s.name), &name) {
        Ok(n) => vec![n.to_string()],
        Err(PrefixError::Unknown) => vec![name],
        Err(PrefixError::Ambiguous { candidates }) => candidates,
    }
}

/// Parses and validates one `[mysqld]` directive, applying the
/// lenient value discipline. Inserts the resolved `(name, value)`
/// into `vars` or reports the fatal startup diagnostic.
///
/// # Errors
///
/// A [`Violation`] whose `message` is the verbatim `mysqld` startup
/// diagnostic.
pub fn absorb_server_directive(
    vars: &mut BTreeMap<String, String>,
    node: &Node,
) -> Result<(), Violation> {
    let raw_name = node.attr("name").unwrap_or("");
    let name = normalize_name(raw_name);
    let spec_name = match resolve_prefix(SERVER_REGISTRY.iter().map(|s| s.name), &name) {
        Ok(n) => n,
        Err(PrefixError::Unknown) => {
            return Err(Violation::new(
                name,
                ValidationClass::UnknownDirective,
                format!("unknown variable '{raw_name}'"),
            ));
        }
        Err(PrefixError::Ambiguous { candidates }) => {
            return Err(Violation::new(
                name,
                ValidationClass::AmbiguousDirective,
                format!(
                    "ambiguous option '{raw_name}' (could be {})",
                    candidates.join(", ")
                ),
            ));
        }
    };
    let spec = SERVER_REGISTRY
        .iter()
        .find(|s| s.name == spec_name)
        .expect("resolved name is in the registry");
    let bare = node.attr("bare") == Some("yes");
    let raw_value = node.text().unwrap_or("");

    let value = if bare {
        match spec.vtype {
            // A bare option enables boolean flags ...
            ValueType::Bool => "1".to_string(),
            // ... and is silently replaced by the default for
            // value-carrying directives (flaw).
            _ => spec.default.to_string(),
        }
    } else if raw_value.is_empty() && !matches!(spec.vtype, ValueType::Bool) {
        // FLAW (paper §5.2): directives without a value are
        // accepted and replaced with defaults.
        spec.default.to_string()
    } else {
        match spec.vtype {
            ValueType::Int { min, max } => match parse_int_strict(raw_value) {
                Some(v) if v >= min && v <= max => v.to_string(),
                // FLAW (paper §5.2): out-of-bounds values are
                // silently ignored and the default used instead.
                Some(_) => spec.default.to_string(),
                None => {
                    return Err(Violation::new(
                        spec_name,
                        ValidationClass::InvalidValue,
                        format!(
                            "option '{spec_name}' requires an integer argument, got \
                             '{raw_value}'"
                        ),
                    ))
                }
            },
            ValueType::Size { min, max } => match parse_size_mysql(raw_value) {
                // FLAW: suffix parsing stops at the first
                // multiplier symbol, so "1M0" lands here as 1 MiB.
                MySqlParse::Value(v) if v >= min && v <= max => v.to_string(),
                // FLAW: out-of-bounds → silent default.
                MySqlParse::Value(_) => spec.default.to_string(),
                // FLAW: suffix-leading values → silent default.
                MySqlParse::SilentDefault => spec.default.to_string(),
                MySqlParse::Invalid => {
                    return Err(Violation::new(
                        spec_name,
                        ValidationClass::InvalidValue,
                        format!("option '{spec_name}' got an invalid size argument '{raw_value}'"),
                    ))
                }
            },
            ValueType::Bool => match parse_bool_mysql(raw_value) {
                Some(v) => u8::from(v).to_string(),
                // Boolean typos ARE detected (paper §5.5 excludes
                // booleans because both systems catch them).
                None => {
                    return Err(Violation::new(
                        spec_name,
                        ValidationClass::InvalidValue,
                        format!(
                            "variable '{spec_name}' can't be set to the value of '{raw_value}'"
                        ),
                    ))
                }
            },
            ValueType::Enum(options) => {
                match options.iter().find(|o| o.eq_ignore_ascii_case(raw_value)) {
                    Some(o) => o.to_string(),
                    None => {
                        return Err(Violation::new(
                            spec_name,
                            ValidationClass::InvalidValue,
                            format!(
                                "variable '{spec_name}' can't be set to the value of \
                                 '{raw_value}'"
                            ),
                        ))
                    }
                }
            }
            ValueType::Float { .. } | ValueType::Text => raw_value.to_string(),
        }
    };
    vars.insert(spec_name.to_string(), value);
    Ok(())
}

/// The `mysqld` startup validation over a parsed `my.cnf` tree: seed
/// defaults, absorb the `[mysqld]` group (only — other groups stay
/// latent), then check path-valued directives. Returns the resolved
/// server variables.
///
/// # Errors
///
/// The first fatal [`Violation`], exactly as `mysqld` would report it.
pub fn validate_server_config(root: &Node) -> Result<BTreeMap<String, String>, Violation> {
    // Seed every variable with its default, then absorb [mysqld].
    let mut vars: BTreeMap<String, String> = SERVER_REGISTRY
        .iter()
        .map(|s| (s.name.to_string(), s.default.to_string()))
        .collect();
    // DESIGN FLAW (paper §5.2): only the server's own group is
    // parsed at startup; every other group — [client],
    // [mysqldump], even misspelled group names — is skipped, so
    // errors there stay latent.
    for section in root.children_of_kind("section") {
        if section.attr("name") != Some("mysqld") {
            continue;
        }
        for node in section.children_of_kind("directive") {
            absorb_server_directive(&mut vars, node)?;
        }
    }
    // Path-valued directives must point at an existing location,
    // or the daemon aborts ("Can't read dir", "Can't create ...").
    for path_var in PATH_DIRECTIVES {
        if let Some(path) = vars.get(*path_var) {
            if !path_is_valid(path) {
                return Err(Violation::new(
                    *path_var,
                    ValidationClass::InvalidPath,
                    format!("[ERROR] {path_var}: Can't read dir of '{path}' (Errcode: 2)"),
                ));
            }
        }
    }
    Ok(vars)
}

/// The `mysqldump` option check the tool applies to its own sections
/// of the shared file when it finally runs.
///
/// # Errors
///
/// A [`Violation`] carrying the tool's verbatim diagnostic. Note this
/// is *not* a startup failure — tool-section errors are latent.
pub fn check_dump_config(root: &Node) -> Result<(), Violation> {
    for section in root.children_of_kind("section") {
        if section.attr("name") != Some("mysqldump") {
            continue;
        }
        for node in section.children_of_kind("directive") {
            let name = normalize_name(node.attr("name").unwrap_or(""));
            if resolve_prefix(DUMP_REGISTRY.iter().map(|s| s.name), &name).is_err() {
                return Err(Violation::new(
                    name.clone(),
                    ValidationClass::UnknownDirective,
                    format!("mysqldump: unknown option '--{name}'"),
                ));
            }
        }
    }
    Ok(())
}

/// The semantic fingerprint the linter compares against the baseline:
/// everything the functional tests can observe. `connect-and-query`
/// reads the resolved server variables (port, engine limits);
/// `mysqldump-tool` re-reads the tool sections, so their resolution
/// state is folded in too.
///
/// # Errors
///
/// The fatal startup [`Violation`], when validation fails.
pub fn fingerprint(root: &Node) -> Result<String, Violation> {
    let vars = validate_server_config(root)?;
    let dump = check_dump_config(root).err().map(|v| v.message);
    Ok(format!("{vars:?}|dump-error:{dump:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use conferr_formats::{ConfigFormat, IniFormat};
    use conferr_tree::ConfTree;

    fn parse(text: &str) -> ConfTree {
        IniFormat::new().parse(text).expect("fixture parses")
    }

    #[test]
    fn valid_config_resolves_with_defaults_seeded() {
        let tree = parse("[mysqld]\nport=3307\n");
        let vars = validate_server_config(tree.root()).expect("valid");
        assert_eq!(vars.get("port").map(String::as_str), Some("3307"));
        // Unset variables carry their defaults.
        assert_eq!(vars.get("back_log").map(String::as_str), Some("50"));
    }

    #[test]
    fn unknown_variable_is_a_violation() {
        let tree = parse("[mysqld]\nprot=3306\n");
        let err = validate_server_config(tree.root()).unwrap_err();
        assert_eq!(err.class, ValidationClass::UnknownDirective);
        assert_eq!(err.message, "unknown variable 'prot'");
    }

    #[test]
    fn ambiguous_prefix_is_a_violation() {
        let tree = parse("[mysqld]\nmax_c=10\n");
        let err = validate_server_config(tree.root()).unwrap_err();
        assert_eq!(err.class, ValidationClass::AmbiguousDirective);
        assert!(err.message.starts_with("ambiguous option 'max_c'"));
    }

    #[test]
    fn bad_path_is_a_violation() {
        let tree = parse("[mysqld]\ndatadir=/var/lib/mysq\n");
        let err = validate_server_config(tree.root()).unwrap_err();
        assert_eq!(err.class, ValidationClass::InvalidPath);
        assert_eq!(err.directive, "datadir");
        assert!(err.message.contains("Can't read dir"));
    }

    #[test]
    fn dump_section_errors_are_latent_but_detected_by_the_tool_check() {
        let tree = parse("[mysqld]\nport=3306\n[mysqldump]\nqiuck\n");
        assert!(validate_server_config(tree.root()).is_ok(), "latent");
        let err = check_dump_config(tree.root()).unwrap_err();
        assert_eq!(err.message, "mysqldump: unknown option '--qiuck'");
    }

    #[test]
    fn fingerprint_ignores_comment_churn() {
        let a = parse("# hello\n[mysqld]\nport=3306\n");
        let b = parse("# goodbye\n[mysqld]\nport=3306\n");
        assert_eq!(
            fingerprint(a.root()).unwrap(),
            fingerprint(b.root()).unwrap()
        );
        let c = parse("[mysqld]\nport=3307\n");
        assert_ne!(
            fingerprint(a.root()).unwrap(),
            fingerprint(c.root()).unwrap()
        );
    }

    #[test]
    fn canonical_names_cover_every_resolution_case() {
        assert_eq!(canonical_names("port"), vec!["port".to_string()]);
        assert_eq!(
            canonical_names("key_buffer"),
            vec!["key_buffer_size".to_string()]
        );
        assert_eq!(
            canonical_names("bogus-name"),
            vec!["bogus_name".to_string()]
        );
        let ambiguous = canonical_names("max_c");
        assert!(ambiguous.contains(&"max_connections".to_string()));
        assert!(ambiguous.contains(&"max_connect_errors".to_string()));
    }
}
