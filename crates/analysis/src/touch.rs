//! Touch maps: which directives of which files a fault can affect.
//!
//! Test-impact pruning skips a functional test when its declared
//! read-set ([`crate::schema::TestImpact`]) is disjoint from the
//! fault's *touch map* — the statically-derived overestimate of what
//! the edit can change. Soundness runs in one direction only: a touch
//! map may be **wider** than the true effect (costing a wasted test
//! run) but must never be narrower (which would skip a test whose
//! outcome the edit can change). Whenever a refinement rule cannot
//! prove containment, it falls back to [`FileTouch::WholeFile`].

use std::collections::{BTreeMap, BTreeSet};

use conferr_model::{ConfigSet, TreeEdit};
use conferr_tree::{ConfTree, Node, TreePath};

use crate::schema::{Dialect, DirectiveSchema, ReadScope, TestImpact};

/// The statically-derived overestimate of what an edit can change in
/// one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileTouch {
    /// The edit may change anything in the file.
    WholeFile,
    /// The edit can only affect these directives (canonical names).
    /// An empty set means the file's bytes changed but no modeled
    /// directive did (comment or whitespace churn).
    Directives(BTreeSet<String>),
}

impl FileTouch {
    /// Widens `self` to also cover `other`.
    pub fn merge(&mut self, other: FileTouch) {
        match (&mut *self, other) {
            (FileTouch::WholeFile, _) => {}
            (_, FileTouch::WholeFile) => *self = FileTouch::WholeFile,
            (FileTouch::Directives(mine), FileTouch::Directives(theirs)) => {
                mine.extend(theirs);
            }
        }
    }
}

/// Per-file touches of one fault. Files absent from the map are
/// byte-identical to the baseline.
pub type TouchMap = BTreeMap<String, FileTouch>;

/// Whether a test's declared read scope can observe a file's touch.
///
/// A [`ReadScope::WholeFile`] scope observes *any* touch of that file
/// (even pure comment churn changes the bytes a whole-file reader
/// sees), while a directive scope observes a touch only when the
/// canonical-name sets intersect.
pub fn scope_intersects(scope: &ReadScope, touch: &FileTouch) -> bool {
    match (scope, touch) {
        (ReadScope::WholeFile, _) => true,
        (ReadScope::Directives(_), FileTouch::WholeFile) => true,
        (ReadScope::Directives(reads), FileTouch::Directives(touched)) => {
            reads.iter().any(|r| touched.contains(*r))
        }
    }
}

/// Whether a fault with touch map `touch` can change the outcome of
/// `test`. A test is impacted when any of its declared per-file read
/// scopes intersects the corresponding file's touch.
pub fn test_is_impacted(test: &TestImpact, touch: &TouchMap) -> bool {
    test.reads
        .iter()
        .any(|(file, scope)| touch.get(*file).is_some_and(|t| scope_intersects(scope, t)))
}

/// A pre-computed pruning plan: which functional tests impact pruning
/// can ever skip, with their read scopes pre-widened so the per-fault
/// disjointness check is as cheap as possible.
///
/// Widening a read scope only makes pruning *more* conservative — it
/// skips fewer tests, never more — so both simplifications below are
/// free of soundness obligations:
///
/// * A directive scope covering (nearly) the whole file — at least
///   half of the distinct canonical directive names appearing in the
///   file's baseline — is widened to [`ReadScope::WholeFile`]: the
///   directive-set intersection on such a scope almost always answers
///   "impacted", so checking it costs more than the rare prune it
///   enables.
/// * A test whose (widened) scopes read every schema file whole can
///   never be pruned — a fault's touch map always names at least the
///   file it edits — so it is dropped from the plan entirely and the
///   campaign runs it with no per-fault check at all. On single-file
///   systems this removes whole-file readers (djbdns's two probes,
///   the mysqldump re-read, the app-server deploy walk) from the
///   pruning hot path, which is what guarantees pruning can never
///   cost more than it saves.
#[derive(Debug)]
pub struct PrunePlan {
    tests: Vec<(&'static str, Vec<(&'static str, ReadScope)>)>,
}

impl PrunePlan {
    /// Builds the plan for `schema` against the parsed baseline.
    pub fn new(schema: &'static DirectiveSchema, baseline: &ConfigSet) -> PrunePlan {
        let mut tests = Vec::new();
        for test in schema.tests {
            let scopes: Vec<(&'static str, ReadScope)> = test
                .reads
                .iter()
                .map(|(file, scope)| {
                    let widened = match scope {
                        ReadScope::Directives(reads)
                            if covers_most(baseline, schema, file, reads) =>
                        {
                            ReadScope::WholeFile
                        }
                        other => *other,
                    };
                    (*file, widened)
                })
                .collect();
            let never_prunable = schema.files.iter().all(|fs| {
                scopes
                    .iter()
                    .any(|(file, scope)| *file == fs.file && matches!(scope, ReadScope::WholeFile))
            });
            if !never_prunable {
                tests.push((test.test, scopes));
            }
        }
        PrunePlan { tests }
    }

    /// True when no test can ever be pruned — callers should skip the
    /// per-fault machinery entirely.
    pub fn is_empty(&self) -> bool {
        self.tests.is_empty()
    }

    /// The pre-widened read scopes to check for `test`, or `None` when
    /// pruning can never skip it (the caller should just run it).
    pub fn scopes(&self, test: &str) -> Option<&[(&'static str, ReadScope)]> {
        self.tests
            .iter()
            .find(|(name, _)| *name == test)
            .map(|(_, scopes)| scopes.as_slice())
    }

    /// Whether a fault with touch map `touch` can change the outcome
    /// of a test with the given pre-widened scopes — the plan-side
    /// analogue of [`test_is_impacted`].
    pub fn impacted(scopes: &[(&'static str, ReadScope)], touch: &TouchMap) -> bool {
        scopes
            .iter()
            .any(|(file, scope)| touch.get(*file).is_some_and(|t| scope_intersects(scope, t)))
    }
}

/// Whether a directive read-set covers at least half of the distinct
/// canonical directive names in the file's baseline.
fn covers_most(baseline: &ConfigSet, schema: &DirectiveSchema, file: &str, reads: &[&str]) -> bool {
    let Some(tree) = baseline.get(file) else {
        return false;
    };
    let dialect = match schema.file(file) {
        Some(fs) => fs.dialect,
        None => return false,
    };
    let mut names = BTreeSet::new();
    distinct_directive_names(dialect, tree.root(), &mut names);
    !names.is_empty() && reads.len() * 2 >= names.len()
}

fn distinct_directive_names(dialect: Dialect, node: &Node, names: &mut BTreeSet<String>) {
    for child in node.children() {
        if child.kind() == "directive" {
            if let Some(name) = child.attr("name") {
                names.extend(canonical(dialect, name));
            }
        }
        distinct_directive_names(dialect, child, names);
    }
}

/// A touch map claiming every file of `schema` may have changed — the
/// safe answer when nothing sharper can be proven.
pub fn whole_config_touch(schema: &DirectiveSchema) -> TouchMap {
    schema
        .files
        .iter()
        .map(|f| (f.file.to_string(), FileTouch::WholeFile))
        .collect()
}

/// Computes the touch map of a fault's edit list against the baseline
/// configuration, refining per-directive where the dialect allows it.
pub fn touch_of_edits(
    schema: &DirectiveSchema,
    baseline: &ConfigSet,
    edits: &[TreeEdit],
) -> TouchMap {
    let mut map = TouchMap::new();
    for edit in edits {
        let file = edit.file();
        let touch = match schema.file(file) {
            Some(fs) if fs.dialect.refines_touch_sets() => match baseline.get(file) {
                Some(tree) => refine_edit(fs.dialect, tree, edit),
                None => FileTouch::WholeFile,
            },
            _ => FileTouch::WholeFile,
        };
        match map.entry(file.to_string()) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(touch);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().merge(touch),
        }
    }
    map
}

/// Canonical directive names a raw spelling can resolve to under the
/// dialect's name resolution (several for ambiguous MySQL prefixes).
fn canonical(dialect: Dialect, raw: &str) -> Vec<String> {
    match dialect {
        Dialect::MySqlIni => crate::mysql::canonical_names(raw),
        Dialect::PostgresKv => vec![crate::postgres::canonical_name(raw)],
        Dialect::ApacheHttpd => vec![crate::apache::canonical_name(raw)],
        _ => vec![raw.to_string()],
    }
}

/// A directive name that serializes onto a single line without
/// disturbing surrounding structure in any of the refinable formats.
fn is_safe_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.'))
}

fn has_line_break(text: &str) -> bool {
    text.contains('\n') || text.contains('\r')
}

/// Comment text that every refinable format re-parses as a comment.
fn is_inert_comment(text: &str) -> bool {
    !has_line_break(text) && text.starts_with('#')
}

fn is_inert_blank(text: &str) -> bool {
    !has_line_break(text) && text.trim().is_empty()
}

/// The directive names affected by touching `node` in place, or
/// `None` when the node's effect cannot be bounded (sections, nodes
/// with children, comments whose text would not re-parse as inert).
fn node_touch(dialect: Dialect, node: &Node) -> Option<BTreeSet<String>> {
    if !node.children().is_empty() {
        return None;
    }
    match node.kind() {
        "directive" => node
            .attr("name")
            .map(|n| canonical(dialect, n).into_iter().collect()),
        "comment" => is_inert_comment(node.text().unwrap_or("#")).then(BTreeSet::new),
        "blank" => is_inert_blank(node.text().unwrap_or("")).then(BTreeSet::new),
        _ => None,
    }
}

fn touch_at(dialect: Dialect, tree: &ConfTree, path: &TreePath) -> FileTouch {
    match tree.node_at(path) {
        Ok(node) => match node_touch(dialect, node) {
            Some(set) => FileTouch::Directives(set),
            None => FileTouch::WholeFile,
        },
        Err(_) => FileTouch::WholeFile,
    }
}

fn refine_edit(dialect: Dialect, tree: &ConfTree, edit: &TreeEdit) -> FileTouch {
    match edit {
        TreeEdit::Delete { path, .. } | TreeEdit::DuplicateAfter { path, .. } => {
            touch_at(dialect, tree, path)
        }
        TreeEdit::Move { from, .. } => touch_at(dialect, tree, from),
        TreeEdit::SetText { path, text, .. } => {
            let new_text = text.as_deref().unwrap_or("");
            if has_line_break(new_text) {
                return FileTouch::WholeFile;
            }
            match tree.node_at(path) {
                Ok(node) if node.children().is_empty() => match node.kind() {
                    // The name stays on the line, so the re-parsed
                    // node keeps its identity whatever the new value.
                    "directive" => touch_at(dialect, tree, path),
                    "comment" if is_inert_comment(new_text) => {
                        FileTouch::Directives(BTreeSet::new())
                    }
                    "blank" if is_inert_blank(new_text) => FileTouch::Directives(BTreeSet::new()),
                    _ => FileTouch::WholeFile,
                },
                _ => FileTouch::WholeFile,
            }
        }
        TreeEdit::SetAttr {
            path, key, value, ..
        } => match tree.node_at(path) {
            Ok(node)
                if node.kind() == "directive"
                    && node.children().is_empty()
                    && key == "name"
                    && is_safe_name(value) =>
            {
                match node.attr("name") {
                    Some(old) => {
                        let mut set: BTreeSet<String> =
                            canonical(dialect, old).into_iter().collect();
                        set.extend(canonical(dialect, value));
                        FileTouch::Directives(set)
                    }
                    None => FileTouch::WholeFile,
                }
            }
            _ => FileTouch::WholeFile,
        },
        TreeEdit::Insert { node, .. } => inserted_node_touch(dialect, node),
        TreeEdit::SwapChildren { parent, i, j, .. } => match tree.node_at(parent) {
            Ok(p) => {
                let (Some(a), Some(b)) = (p.children().get(*i), p.children().get(*j)) else {
                    return FileTouch::WholeFile;
                };
                match (node_touch(dialect, a), node_touch(dialect, b)) {
                    (Some(mut x), Some(y)) => {
                        x.extend(y);
                        FileTouch::Directives(x)
                    }
                    _ => FileTouch::WholeFile,
                }
            }
            Err(_) => FileTouch::WholeFile,
        },
        TreeEdit::ReplaceTree { .. } => FileTouch::WholeFile,
    }
}

/// The touch of a freshly-inserted node. Stricter than [`node_touch`]
/// because the node never round-tripped through the parser: its name
/// and text must provably serialize onto one inert-or-directive line.
fn inserted_node_touch(dialect: Dialect, node: &Node) -> FileTouch {
    if !node.children().is_empty() || node.text().is_some_and(has_line_break) {
        return FileTouch::WholeFile;
    }
    match node.kind() {
        "directive" => match node.attr("name") {
            Some(name) if is_safe_name(name) => {
                FileTouch::Directives(canonical(dialect, name).into_iter().collect())
            }
            _ => FileTouch::WholeFile,
        },
        "comment" if is_inert_comment(node.text().unwrap_or("")) => {
            FileTouch::Directives(BTreeSet::new())
        }
        "blank" if is_inert_blank(node.text().unwrap_or("")) => {
            FileTouch::Directives(BTreeSet::new())
        }
        _ => FileTouch::WholeFile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::MYSQL_SCHEMA;
    use conferr_formats::{ConfigFormat, IniFormat};
    use conferr_tree::TreePath;

    fn mysql_baseline() -> ConfigSet {
        let text = "[mysqld]\nport=3306\nsort_buffer_size=2M\n# tuning notes\n";
        let tree = IniFormat::new().parse(text).expect("fixture parses");
        let mut set = ConfigSet::new();
        set.insert("my.cnf", tree);
        set
    }

    fn directives(names: &[&str]) -> FileTouch {
        FileTouch::Directives(names.iter().map(|s| (*s).to_string()).collect())
    }

    #[test]
    fn directive_edits_touch_their_canonical_name() {
        let set = mysql_baseline();
        // [mysqld] is child 0; port is its child 0.
        let edit = TreeEdit::SetText {
            file: "my.cnf".into(),
            path: TreePath::root().child(0).child(0),
            text: Some("9999".into()),
        };
        let map = touch_of_edits(&MYSQL_SCHEMA, &set, &[edit]);
        assert_eq!(map.get("my.cnf"), Some(&directives(&["port"])));
    }

    #[test]
    fn comment_churn_touches_nothing_but_marks_the_file() {
        let set = mysql_baseline();
        let edit = TreeEdit::SetText {
            file: "my.cnf".into(),
            path: TreePath::root().child(0).child(2),
            text: Some("# different notes".into()),
        };
        let map = touch_of_edits(&MYSQL_SCHEMA, &set, &[edit]);
        assert_eq!(map.get("my.cnf"), Some(&directives(&[])));

        // A directive-scope test is unaffected; a whole-file reader
        // still sees the byte change.
        let smoke = MYSQL_SCHEMA.test("connect-and-query").unwrap();
        let dump = MYSQL_SCHEMA.test("mysqldump-tool").unwrap();
        assert!(!test_is_impacted(smoke, &map));
        assert!(test_is_impacted(dump, &map));
    }

    #[test]
    fn newlines_and_renames_escalate_conservatively() {
        let set = mysql_baseline();
        let newline = TreeEdit::SetText {
            file: "my.cnf".into(),
            path: TreePath::root().child(0).child(0),
            text: Some("3306\n[client]".into()),
        };
        let map = touch_of_edits(&MYSQL_SCHEMA, &set, &[newline]);
        assert_eq!(map.get("my.cnf"), Some(&FileTouch::WholeFile));

        let unsafe_rename = TreeEdit::SetAttr {
            file: "my.cnf".into(),
            path: TreePath::root().child(0).child(0),
            key: "name".into(),
            value: "po[rt".into(),
        };
        let map = touch_of_edits(&MYSQL_SCHEMA, &set, &[unsafe_rename]);
        assert_eq!(map.get("my.cnf"), Some(&FileTouch::WholeFile));
    }

    #[test]
    fn rename_touches_both_old_and_new_names() {
        let set = mysql_baseline();
        let rename = TreeEdit::SetAttr {
            file: "my.cnf".into(),
            path: TreePath::root().child(0).child(1),
            key: "name".into(),
            value: "sort_buffer_siez".into(),
        };
        let map = touch_of_edits(&MYSQL_SCHEMA, &set, &[rename]);
        assert_eq!(
            map.get("my.cnf"),
            Some(&directives(&["sort_buffer_size", "sort_buffer_siez"]))
        );
    }

    #[test]
    fn whole_file_scope_intersects_any_touch() {
        assert!(scope_intersects(
            &ReadScope::WholeFile,
            &FileTouch::Directives(BTreeSet::new())
        ));
        assert!(scope_intersects(
            &ReadScope::Directives(&["port"]),
            &FileTouch::WholeFile
        ));
        assert!(!scope_intersects(
            &ReadScope::Directives(&["port"]),
            &directives(&["sort_buffer_size"])
        ));
    }

    #[test]
    fn prune_plan_drops_whole_file_readers_and_widens_broad_scopes() {
        // Rich baseline: the smoke test's three directives are a small
        // fraction of the file, so its scope stays directive-level;
        // the dump tool reads the whole (only) file and can never be
        // pruned, so it is dropped from the plan outright.
        let text = "[mysqld]\nport=3306\na=1\nb=1\nc=1\nd=1\ne=1\nf=1\n";
        let tree = IniFormat::new().parse(text).expect("fixture parses");
        let mut set = ConfigSet::new();
        set.insert("my.cnf", tree);
        let plan = PrunePlan::new(&MYSQL_SCHEMA, &set);
        assert!(plan.scopes("mysqldump-tool").is_none());
        let scopes = plan.scopes("connect-and-query").expect("smoke test stays");
        assert!(matches!(scopes[0].1, ReadScope::Directives(_)));

        let port_touch: TouchMap = [("my.cnf".to_string(), directives(&["port"]))]
            .into_iter()
            .collect();
        let inert_touch: TouchMap = [("my.cnf".to_string(), directives(&["a"]))]
            .into_iter()
            .collect();
        assert!(PrunePlan::impacted(scopes, &port_touch));
        assert!(!PrunePlan::impacted(scopes, &inert_touch));

        // Against a two-directive baseline the smoke test's scope
        // covers most of the file: it widens to WholeFile, every test
        // becomes unprunable, and the plan empties.
        let plan = PrunePlan::new(&MYSQL_SCHEMA, &mysql_baseline());
        assert!(plan.is_empty());
    }

    #[test]
    fn unrefinable_dialects_and_replace_tree_are_whole_file() {
        let set = mysql_baseline();
        let replace = TreeEdit::ReplaceTree {
            file: "my.cnf".into(),
            tree: ConfTree::new(Node::new("config")),
        };
        let map = touch_of_edits(&MYSQL_SCHEMA, &set, &[replace]);
        assert_eq!(map.get("my.cnf"), Some(&FileTouch::WholeFile));
        assert_eq!(whole_config_touch(&MYSQL_SCHEMA).len(), 1);
    }
}
