//! The fault linter: static verdicts and touch maps for prepared
//! faults, plus whole-file surveys for the `conferr-lint` CLI.
//!
//! [`FaultLinter::lint`] runs the *round-trip* pipeline on a fault's
//! edit list: apply to the baseline, serialize the edited file with
//! the real format, re-parse with the real parser, then evaluate the
//! extracted dialect model against the baseline fingerprint. Because
//! every stage reuses the exact code the simulator runs at startup,
//! `WillFailParse`/`WillFailValidate` verdicts are sound by
//! construction — the dynamic start cannot disagree.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, LazyLock, Mutex};

use conferr_formats::{format_by_name, ConfigFormat};
use conferr_model::{ConfigSet, ErrorClass, FaultScenario, TreeEdit, TypoKind};
use conferr_tree::Node;

use crate::schema::{Dialect, DirectiveSchema};
use crate::touch::{touch_of_edits, FileTouch, TouchMap};
use crate::verdict::StaticVerdict;

/// Memo entries are dropped wholesale past this size to bound memory
/// on unbounded streaming loads.
const MEMO_CAP: usize = 8192;

static EMPTY_TOUCH: LazyLock<Arc<TouchMap>> = LazyLock::new(|| Arc::new(TouchMap::new()));

/// The linter's answer for one fault: a verdict about the start
/// outcome and a touch map bounding what the edit can affect.
#[derive(Debug, Clone)]
pub struct Lint {
    /// Predicted start behaviour.
    pub verdict: StaticVerdict,
    /// Files/directives the fault can affect (shared: many callers
    /// hold the same lint).
    pub touch: Arc<TouchMap>,
    /// For the two `WillFail*` verdicts: the *exact* startup
    /// diagnostic the simulator would emit, captured from the shared
    /// deciders so a static-triage campaign can synthesize the
    /// `DetectedAtStartup` outcome without paying for the start.
    /// `None` whenever the verdict makes no start-failure claim.
    pub diagnostic: Option<Arc<str>>,
}

impl Lint {
    /// The maximally-conservative lint: no prediction, everything in
    /// `schema` potentially touched.
    pub fn unknown(schema: &DirectiveSchema) -> Lint {
        Lint {
            verdict: StaticVerdict::Unknown,
            touch: Arc::new(crate::touch::whole_config_touch(schema)),
            diagnostic: None,
        }
    }

    /// The lint of an empty edit list: byte-identical to the
    /// baseline, touching nothing.
    pub fn identity() -> Lint {
        Lint {
            verdict: StaticVerdict::SemanticallySilent,
            touch: Arc::clone(&EMPTY_TOUCH),
            diagnostic: None,
        }
    }
}

/// Pre-flight linter for one system's fault space.
///
/// Construction captures the baseline [`ConfigSet`] and computes each
/// modeled file's baseline fingerprint through the same
/// serialize→re-parse round trip later applied to edited trees, so
/// fingerprint comparisons never see formatting noise. The linter is
/// `Sync`; campaigns share one across worker threads.
pub struct FaultLinter {
    schema: &'static DirectiveSchema,
    baseline: ConfigSet,
    formats: BTreeMap<&'static str, Box<dyn ConfigFormat>>,
    baseline_fps: BTreeMap<&'static str, Option<String>>,
    memo: Mutex<HashMap<Vec<TreeEdit>, Lint>>,
}

impl std::fmt::Debug for FaultLinter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultLinter")
            .field("system", &self.schema.system)
            .finish_non_exhaustive()
    }
}

impl FaultLinter {
    /// Builds a linter for `schema` over the given baseline.
    ///
    /// # Errors
    ///
    /// When a schema file names a format the registry does not
    /// provide (a schema bug, not a user error).
    pub fn new(schema: &'static DirectiveSchema, baseline: ConfigSet) -> Result<Self, String> {
        let mut formats = BTreeMap::new();
        for fs in schema.files {
            let format = format_by_name(fs.format)
                .ok_or_else(|| format!("{}: unknown format '{}'", schema.system, fs.format))?;
            formats.insert(fs.file, format);
        }
        let mut baseline_fps = BTreeMap::new();
        for fs in schema.files {
            let fp = baseline.get(fs.file).and_then(|tree| {
                let format = formats.get(fs.file)?;
                let text = format.serialize(tree).ok()?;
                let reparsed = format.parse(&text).ok()?;
                dialect_fingerprint(fs.dialect, reparsed.root())
            });
            baseline_fps.insert(fs.file, fp);
        }
        Ok(FaultLinter {
            schema,
            baseline,
            formats,
            baseline_fps,
            memo: Mutex::new(HashMap::new()),
        })
    }

    /// The schema this linter enforces.
    pub fn schema(&self) -> &'static DirectiveSchema {
        self.schema
    }

    /// Lints a fault's edit list. Memoized: repeated loads (chunk
    /// replays, multi-thread identity checks) hit the cache.
    pub fn lint(&self, edits: &[TreeEdit]) -> Lint {
        if edits.is_empty() {
            return Lint::identity();
        }
        if let Some(hit) = self.memo.lock().expect("linter memo poisoned").get(edits) {
            return hit.clone();
        }
        let lint = self.lint_uncached(edits);
        let mut memo = self.memo.lock().expect("linter memo poisoned");
        if memo.len() >= MEMO_CAP {
            memo.clear();
        }
        memo.insert(edits.to_vec(), lint.clone());
        lint
    }

    fn lint_uncached(&self, edits: &[TreeEdit]) -> Lint {
        if edits.len() > 1 {
            // Compound faults: per-edit path refinement against the
            // baseline is unsound (later edits see shifted paths), so
            // bound them by their edited files only.
            let touch: TouchMap = edits
                .iter()
                .map(|e| (e.file().to_string(), FileTouch::WholeFile))
                .collect();
            return Lint {
                verdict: StaticVerdict::Unknown,
                touch: Arc::new(touch),
                diagnostic: None,
            };
        }

        let probe = FaultScenario {
            id: String::new(),
            description: String::new(),
            class: ErrorClass::Typo(TypoKind::Substitution),
            edits: edits.to_vec(),
        };
        let Ok(edited) = probe.apply(&self.baseline) else {
            // Inapplicable edits never reach injection; stay silent
            // about them but bound the files they name.
            let touch: TouchMap = edits
                .iter()
                .map(|e| (e.file().to_string(), FileTouch::WholeFile))
                .collect();
            return Lint {
                verdict: StaticVerdict::Unknown,
                touch: Arc::new(touch),
                diagnostic: None,
            };
        };

        let file = edits[0].file();
        let refined = touch_of_edits(self.schema, &self.baseline, edits);
        let (Some(fs), Some(format)) = (self.schema.file(file), self.formats.get(file)) else {
            return Lint {
                verdict: StaticVerdict::Unknown,
                touch: Arc::new(refined),
                diagnostic: None,
            };
        };
        let Some(tree) = edited.get(file) else {
            return Lint {
                verdict: StaticVerdict::Unknown,
                touch: Arc::new(refined),
                diagnostic: None,
            };
        };

        // Round trip: the simulator starts from serialized bytes, so
        // the verdict must be computed on what those bytes re-parse
        // to, not on the in-memory edited tree.
        let Ok(text) = format.serialize(tree) else {
            // Inexpressible under the format; the campaign reports it
            // without starting the SUT.
            return Lint {
                verdict: StaticVerdict::Unknown,
                touch: Arc::new(refined),
                diagnostic: None,
            };
        };
        let reparsed = match format.parse(&text) {
            Ok(tree) => tree,
            Err(e) => {
                // The simulator will hit the same parser on the same
                // bytes; its wrapper comes from the shared dialect
                // formatter, so this diagnostic is the dynamic one.
                let diagnostic = fs.dialect.parse_failure_diagnostic(&e.to_string());
                return Lint {
                    verdict: StaticVerdict::WillFailParse,
                    touch: Arc::new(whole_file_touch(file)),
                    diagnostic: Some(diagnostic.into()),
                };
            }
        };

        if !fs.dialect.is_fully_modeled() {
            return Lint {
                verdict: StaticVerdict::Unknown,
                touch: Arc::new(refined),
                diagnostic: None,
            };
        }
        match dialect_check(fs.dialect, reparsed.root()) {
            Err(violation) => {
                // The shared decider's message *is* the simulator's
                // startup diagnostic, verbatim.
                let diagnostic = Some(Arc::from(violation.message.as_str()));
                Lint {
                    verdict: violation.into_verdict(),
                    touch: Arc::new(whole_file_touch(file)),
                    diagnostic,
                }
            }
            Ok(fp) => {
                let silent = self
                    .baseline_fps
                    .get(file)
                    .and_then(Option::as_ref)
                    .is_some_and(|base| *base == fp);
                Lint {
                    verdict: if silent {
                        StaticVerdict::SemanticallySilent
                    } else {
                        StaticVerdict::Unknown
                    },
                    touch: Arc::new(refined),
                    diagnostic: None,
                }
            }
        }
    }
}

fn whole_file_touch(file: &str) -> TouchMap {
    let mut map = TouchMap::new();
    map.insert(file.to_string(), FileTouch::WholeFile);
    map
}

/// Runs the dialect's validator and returns the semantic fingerprint.
fn dialect_check(dialect: Dialect, root: &Node) -> Result<String, crate::verdict::Violation> {
    match dialect {
        Dialect::MySqlIni => crate::mysql::fingerprint(root),
        Dialect::PostgresKv => crate::postgres::fingerprint(root),
        Dialect::ApacheHttpd => crate::apache::fingerprint(root),
        Dialect::TinyDns => crate::tinydns::fingerprint(root),
        Dialect::BindZone | Dialect::AppServerXml => Ok(String::new()),
    }
}

fn dialect_fingerprint(dialect: Dialect, root: &Node) -> Option<String> {
    if !dialect.is_fully_modeled() {
        return None;
    }
    dialect_check(dialect, root).ok()
}

/// Per-file node statistics for the `conferr-lint` CLI: how much of a
/// real configuration the dialect model understands, and any outright
/// violations it detects.
#[derive(Debug, Clone)]
pub struct FileSurvey {
    /// File name the survey ran over.
    pub file: String,
    /// Nodes surveyed (directives, records, data lines).
    pub total: usize,
    /// Nodes whose semantics the dialect model captures.
    pub known: usize,
    /// Violations the static model detects in the file as-is.
    pub violations: Vec<crate::verdict::Violation>,
}

impl FileSurvey {
    /// Fraction of surveyed nodes the model cannot classify.
    pub fn unknown_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                (self.total - self.known) as f64 / self.total as f64
            }
        }
    }
}

/// Surveys one configuration file against a system's schema.
///
/// # Errors
///
/// When the schema does not declare `file_name`, the format registry
/// lacks the declared format, or the file does not parse.
pub fn survey(
    schema: &DirectiveSchema,
    file_name: &str,
    contents: &str,
) -> Result<FileSurvey, String> {
    let fs = schema
        .file(file_name)
        .ok_or_else(|| format!("{}: schema declares no file '{file_name}'", schema.system))?;
    let format = format_by_name(fs.format)
        .ok_or_else(|| format!("{}: unknown format '{}'", schema.system, fs.format))?;
    let tree = format
        .parse(contents)
        .map_err(|e| format!("{file_name}: parse error: {e}"))?;

    let mut total = 0usize;
    let mut known = 0usize;
    let mut violations = Vec::new();
    match fs.dialect {
        Dialect::MySqlIni => {
            for section in tree.root().children() {
                if section.kind() != "section" {
                    continue;
                }
                let in_server = section.attr("name") == Some("mysqld");
                for node in section.children() {
                    if node.kind() != "directive" {
                        continue;
                    }
                    total += 1;
                    if !in_server {
                        // Non-[mysqld] sections are inert to the
                        // server: fully understood by the model.
                        known += 1;
                        continue;
                    }
                    let raw = node.attr("name").unwrap_or("");
                    let name = crate::mysql::normalize_name(raw);
                    if crate::value::resolve_prefix(
                        crate::mysql::SERVER_REGISTRY.iter().map(|s| s.name),
                        &name,
                    )
                    .is_ok()
                    {
                        known += 1;
                    }
                }
            }
            if let Err(v) = crate::mysql::fingerprint(tree.root()) {
                violations.push(v);
            }
        }
        Dialect::PostgresKv => {
            for node in tree.root().children() {
                if node.kind() != "directive" {
                    continue;
                }
                total += 1;
                let name = crate::postgres::canonical_name(node.attr("name").unwrap_or(""));
                if crate::postgres::REGISTRY.iter().any(|s| s.name == name) {
                    known += 1;
                }
            }
            if let Err(v) = crate::postgres::fingerprint(tree.root()) {
                violations.push(v);
            }
        }
        Dialect::ApacheHttpd => {
            survey_apache_nodes(tree.root(), &mut total, &mut known);
            if let Err(v) = crate::apache::fingerprint(tree.root()) {
                violations.push(v);
            }
        }
        Dialect::TinyDns => {
            for node in tree.root().children() {
                if node.kind() != "line" {
                    continue;
                }
                total += 1;
                let ty = node.attr("type").unwrap_or("");
                if crate::tinydns::IP_CHECKED_TYPES.contains(&ty)
                    || crate::tinydns::UNCHECKED_TYPES.contains(&ty)
                {
                    known += 1;
                }
            }
            if let Err(v) = crate::tinydns::check_file(tree.root()) {
                violations.push(v);
            }
        }
        Dialect::BindZone | Dialect::AppServerXml => {
            // No dialect model: every substantive node is unknown.
            total = count_substantive(tree.root());
        }
    }
    Ok(FileSurvey {
        file: file_name.to_string(),
        total,
        known,
        violations,
    })
}

fn survey_apache_nodes(node: &Node, total: &mut usize, known: &mut usize) {
    for child in node.children() {
        match child.kind() {
            "directive" => {
                *total += 1;
                let name = crate::apache::canonical_name(child.attr("name").unwrap_or(""));
                if crate::apache::rule_for(&name).is_some() {
                    *known += 1;
                }
            }
            "section" => {
                *total += 1;
                let name = child.attr("name").unwrap_or("");
                if crate::apache::SECTIONS
                    .iter()
                    .any(|s| s.eq_ignore_ascii_case(name))
                {
                    *known += 1;
                }
                survey_apache_nodes(child, total, known);
            }
            _ => {}
        }
    }
}

fn count_substantive(node: &Node) -> usize {
    node.children()
        .iter()
        .map(|c| {
            let own = usize::from(!matches!(c.kind(), "comment" | "blank"));
            own + count_substantive(c)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{schema_for, MYSQL_SCHEMA};
    use conferr_formats::IniFormat;
    use conferr_tree::TreePath;

    fn mysql_baseline() -> ConfigSet {
        let text = "[mysqld]\nport=3306\nsort_buffer_size=2097152\n# notes\n";
        let tree = IniFormat::new().parse(text).expect("fixture parses");
        let mut set = ConfigSet::new();
        set.insert("my.cnf", tree);
        set
    }

    fn linter() -> FaultLinter {
        FaultLinter::new(&MYSQL_SCHEMA, mysql_baseline()).expect("formats resolve")
    }

    #[test]
    fn unknown_variable_is_will_fail_validate() {
        let l = linter();
        let lint = l.lint(&[TreeEdit::SetAttr {
            file: "my.cnf".into(),
            path: TreePath::root().child(0).child(0),
            key: "name".into(),
            value: "prot".into(),
        }]);
        assert!(matches!(
            lint.verdict,
            StaticVerdict::WillFailValidate { ref directive, .. } if directive == "prot"
        ));
        assert_eq!(lint.touch.get("my.cnf"), Some(&FileTouch::WholeFile));
    }

    #[test]
    fn comment_churn_is_semantically_silent() {
        let l = linter();
        let lint = l.lint(&[TreeEdit::SetText {
            file: "my.cnf".into(),
            path: TreePath::root().child(0).child(2),
            text: Some("# different notes".into()),
        }]);
        assert_eq!(lint.verdict, StaticVerdict::SemanticallySilent);
    }

    #[test]
    fn value_change_within_registry_is_unknown_with_refined_touch() {
        let l = linter();
        let lint = l.lint(&[TreeEdit::SetText {
            file: "my.cnf".into(),
            path: TreePath::root().child(0).child(1),
            text: Some("4194304".into()),
        }]);
        assert_eq!(lint.verdict, StaticVerdict::Unknown);
        let FileTouch::Directives(touched) = lint.touch.get("my.cnf").expect("touched") else {
            panic!("expected refined touch");
        };
        assert!(touched.contains("sort_buffer_size"));
    }

    #[test]
    fn empty_and_compound_edit_lists_take_the_cheap_paths() {
        let l = linter();
        let lint = l.lint(&[]);
        assert_eq!(lint.verdict, StaticVerdict::SemanticallySilent);
        assert!(lint.touch.is_empty());

        let e = TreeEdit::Delete {
            file: "my.cnf".into(),
            path: TreePath::root().child(0).child(2),
        };
        let lint = l.lint(&[e.clone(), e]);
        assert_eq!(lint.verdict, StaticVerdict::Unknown);
        assert_eq!(lint.touch.get("my.cnf"), Some(&FileTouch::WholeFile));
    }

    #[test]
    fn will_fail_verdicts_capture_the_startup_diagnostic() {
        let l = linter();
        let lint = l.lint(&[TreeEdit::SetAttr {
            file: "my.cnf".into(),
            path: TreePath::root().child(0).child(0),
            key: "name".into(),
            value: "prot".into(),
        }]);
        let diag = lint
            .diagnostic
            .expect("validate failures carry the simulator diagnostic");
        assert!(
            diag.contains("prot"),
            "diagnostic names the directive: {diag}"
        );
        // Verdicts that make no start-failure claim carry none.
        assert!(l.lint(&[]).diagnostic.is_none());
        let silent = l.lint(&[TreeEdit::SetText {
            file: "my.cnf".into(),
            path: TreePath::root().child(0).child(2),
            text: Some("# other notes".into()),
        }]);
        assert!(silent.diagnostic.is_none());
    }

    #[test]
    fn lint_results_are_memoized() {
        let l = linter();
        let edits = vec![TreeEdit::Delete {
            file: "my.cnf".into(),
            path: TreePath::root().child(0).child(2),
        }];
        let a = l.lint(&edits);
        let b = l.lint(&edits);
        assert!(
            Arc::ptr_eq(&a.touch, &b.touch),
            "second call must hit the memo"
        );
    }

    #[test]
    fn survey_rates_default_like_configs() {
        let schema = schema_for("mysql").unwrap();
        let s = survey(
            schema,
            "my.cnf",
            "[client]\nport=3306\n[mysqld]\nport=3306\n",
        )
        .unwrap();
        assert_eq!((s.total, s.known), (2, 2));
        assert!(s.violations.is_empty());
        assert!(s.unknown_rate().abs() < f64::EPSILON);

        let s = survey(schema, "my.cnf", "[mysqld]\nnot_a_variable=1\n").unwrap();
        assert_eq!((s.total, s.known), (1, 0));
        assert_eq!(s.violations.len(), 1);
        assert!((s.unknown_rate() - 1.0).abs() < f64::EPSILON);
    }
}
