//! Property-based tests for the configuration tree: path round-trips,
//! edit safety, diff minimality and query-language round-trips.

use conferr_tree::{diff, ConfTree, Node, NodeQuery, TreePath};
use proptest::prelude::*;

/// Strategy producing an arbitrary small node tree.
fn arb_node(depth: u32) -> impl Strategy<Value = Node> {
    let leaf = (
        prop::sample::select(vec!["directive", "comment", "blank", "word"]),
        prop::option::of("[a-z]{1,8}"),
        prop::option::of("[a-zA-Z0-9_ ]{0,12}"),
    )
        .prop_map(|(kind, name, text)| {
            let mut n = Node::new(kind);
            if let Some(name) = name {
                n.set_attr("name", name);
            }
            n.set_text(text);
            n
        });
    leaf.prop_recursive(depth, 24, 4, |inner| {
        (
            prop::sample::select(vec!["section", "config", "zone"]),
            prop::option::of("[a-z]{1,8}"),
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(kind, name, children)| {
                let mut n = Node::new(kind);
                if let Some(name) = name {
                    n.set_attr("name", name);
                }
                n.with_children(children)
            })
    })
}

fn arb_tree() -> impl Strategy<Value = ConfTree> {
    arb_node(3).prop_map(ConfTree::new)
}

proptest! {
    #[test]
    fn path_display_parse_round_trip(segments in prop::collection::vec(0usize..50, 0..6)) {
        let p = TreePath::from(segments);
        let back: TreePath = p.to_string().parse().unwrap();
        prop_assert_eq!(back, p);
    }

    #[test]
    fn every_iterated_path_resolves(tree in arb_tree()) {
        for (path, node) in tree.iter() {
            let resolved = tree.node_at(&path).unwrap();
            prop_assert_eq!(resolved.kind(), node.kind());
        }
    }

    #[test]
    fn len_matches_subtree_len(tree in arb_tree()) {
        prop_assert_eq!(tree.len(), tree.root().subtree_len());
    }

    #[test]
    fn delete_reduces_len_by_subtree(tree in arb_tree()) {
        let paths: Vec<TreePath> = tree.iter().map(|(p, _)| p).filter(|p| !p.is_root()).collect();
        if let Some(victim) = paths.first() {
            let mut t = tree.clone();
            let before = t.len();
            let removed = t.delete(victim).unwrap();
            prop_assert_eq!(t.len(), before - removed.subtree_len());
        }
    }

    #[test]
    fn duplicate_increases_len_by_subtree(tree in arb_tree()) {
        let paths: Vec<TreePath> = tree.iter().map(|(p, _)| p).filter(|p| !p.is_root()).collect();
        if let Some(target) = paths.last() {
            let mut t = tree.clone();
            let before = t.len();
            let sub = t.node_at(target).unwrap().subtree_len();
            t.duplicate(target).unwrap();
            prop_assert_eq!(t.len(), before + sub);
        }
    }

    #[test]
    fn diff_of_identical_trees_is_empty(tree in arb_tree()) {
        prop_assert!(diff(&tree, &tree).is_empty());
    }

    #[test]
    fn diff_detects_any_single_deletion(tree in arb_tree()) {
        let paths: Vec<TreePath> = tree.iter().map(|(p, _)| p).filter(|p| !p.is_root()).collect();
        for victim in paths.iter().take(4) {
            let mut t = tree.clone();
            t.delete(victim).unwrap();
            prop_assert!(!diff(&tree, &t).is_empty());
        }
    }

    #[test]
    fn query_select_paths_always_resolve(tree in arb_tree()) {
        for q in ["//directive", "//section", "/*", "//word[@name]"] {
            let query: NodeQuery = q.parse().unwrap();
            for p in query.select(&tree) {
                prop_assert!(tree.node_at(&p).is_ok());
            }
        }
    }

    #[test]
    fn query_display_round_trip(kind in "[a-z]{1,6}", attr in "[a-z]{1,6}", value in "[a-z0-9]{0,6}") {
        let q: NodeQuery = format!("//{kind}[@{attr}='{value}']").parse().unwrap();
        let reparsed: NodeQuery = q.to_string().parse().unwrap();
        prop_assert_eq!(reparsed, q);
    }

    #[test]
    fn descendant_query_counts_match_iteration(tree in arb_tree()) {
        let q: NodeQuery = "//directive".parse().unwrap();
        let by_query = q.select(&tree).len();
        let by_iter = tree.iter().filter(|(_, n)| n.kind() == "directive").count();
        prop_assert_eq!(by_query, by_iter);
    }
}
