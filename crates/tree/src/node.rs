//! The [`Node`] type: one information item of a configuration tree.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::TreePath;

/// One node of a configuration tree.
///
/// A node mirrors an XML-infoset *information item*: it has a `kind`
/// (the element name, e.g. `"directive"`, `"section"`, `"comment"`),
/// an ordered map of string attributes, optional text content, and an
/// ordered list of children.
///
/// Construction follows a lightweight builder style:
///
/// ```
/// use conferr_tree::Node;
///
/// let n = Node::new("directive")
///     .with_attr("name", "Listen")
///     .with_text("80");
/// assert_eq!(n.kind(), "directive");
/// assert_eq!(n.attr("name"), Some("Listen"));
/// assert_eq!(n.text(), Some("80"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Node {
    kind: String,
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    attrs: BTreeMap<String, String>,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    text: Option<String>,
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    children: Vec<Node>,
}

impl Node {
    /// Creates a node of the given kind with no attributes, text or
    /// children.
    pub fn new(kind: impl Into<String>) -> Self {
        Node {
            kind: kind.into(),
            attrs: BTreeMap::new(),
            text: None,
            children: Vec::new(),
        }
    }

    /// The node kind (element name).
    pub fn kind(&self) -> &str {
        &self.kind
    }

    /// Replaces the node kind.
    pub fn set_kind(&mut self, kind: impl Into<String>) {
        self.kind = kind.into();
    }

    /// Builder-style: sets an attribute and returns `self`.
    #[must_use]
    pub fn with_attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attrs.insert(key.into(), value.into());
        self
    }

    /// Builder-style: sets the text content and returns `self`.
    #[must_use]
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.text = Some(text.into());
        self
    }

    /// Builder-style: appends a child and returns `self`.
    #[must_use]
    pub fn with_child(mut self, child: Node) -> Self {
        self.children.push(child);
        self
    }

    /// Builder-style: appends every child from the iterator.
    #[must_use]
    pub fn with_children(mut self, children: impl IntoIterator<Item = Node>) -> Self {
        self.children.extend(children);
        self
    }

    /// Looks up an attribute value.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs.get(key).map(String::as_str)
    }

    /// Sets an attribute, returning the previous value if any.
    pub fn set_attr(&mut self, key: impl Into<String>, value: impl Into<String>) -> Option<String> {
        self.attrs.insert(key.into(), value.into())
    }

    /// Removes an attribute, returning its value if it was present.
    pub fn remove_attr(&mut self, key: &str) -> Option<String> {
        self.attrs.remove(key)
    }

    /// All attributes in key order.
    pub fn attrs(&self) -> impl Iterator<Item = (&str, &str)> {
        self.attrs.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Number of attributes.
    pub fn attr_count(&self) -> usize {
        self.attrs.len()
    }

    /// The text content, if any.
    pub fn text(&self) -> Option<&str> {
        self.text.as_deref()
    }

    /// Sets (or clears, with `None`) the text content, returning the
    /// previous value.
    pub fn set_text(&mut self, text: Option<String>) -> Option<String> {
        std::mem::replace(&mut self.text, text)
    }

    /// Shared access to the children.
    pub fn children(&self) -> &[Node] {
        &self.children
    }

    /// Exclusive access to the children.
    pub fn children_mut(&mut self) -> &mut Vec<Node> {
        &mut self.children
    }

    /// Appends a child.
    pub fn push_child(&mut self, child: Node) {
        self.children.push(child);
    }

    /// First child of the given kind, if any.
    pub fn first_child_of_kind(&self, kind: &str) -> Option<&Node> {
        self.children.iter().find(|c| c.kind == kind)
    }

    /// All direct children of the given kind.
    pub fn children_of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a Node> + 'a {
        self.children.iter().filter(move |c| c.kind == kind)
    }

    /// Depth-first count of all nodes in this subtree, including
    /// `self`.
    pub fn subtree_len(&self) -> usize {
        1 + self.children.iter().map(Node::subtree_len).sum::<usize>()
    }

    /// A compact single-line description used in diagnostics, e.g.
    /// `directive(name=Listen)="80"`.
    pub fn describe(&self) -> String {
        let mut s = self.kind.clone();
        if !self.attrs.is_empty() {
            let attrs: Vec<String> = self.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
            s.push('(');
            s.push_str(&attrs.join(","));
            s.push(')');
        }
        if let Some(t) = &self.text {
            let shown: String = t.chars().take(40).collect();
            s.push_str(&format!("={shown:?}"));
        }
        s
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// Depth-first iterator over `(path, node)` pairs of a subtree.
///
/// Produced by [`crate::ConfTree::iter`]. The root is yielded first
/// with the empty path.
#[derive(Debug)]
pub struct NodeIter<'a> {
    stack: Vec<(TreePath, &'a Node)>,
}

impl<'a> NodeIter<'a> {
    pub(crate) fn new(root: &'a Node) -> Self {
        NodeIter {
            stack: vec![(TreePath::root(), root)],
        }
    }
}

impl<'a> Iterator for NodeIter<'a> {
    type Item = (TreePath, &'a Node);

    fn next(&mut self) -> Option<Self::Item> {
        let (path, node) = self.stack.pop()?;
        for (i, child) in node.children().iter().enumerate().rev() {
            self.stack.push((path.child(i), child));
        }
        Some((path, node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors_round_trip() {
        let mut n = Node::new("directive")
            .with_attr("name", "port")
            .with_text("80");
        assert_eq!(n.attr("name"), Some("port"));
        assert_eq!(n.set_attr("name", "Port"), Some("port".to_string()));
        assert_eq!(n.remove_attr("name"), Some("Port".to_string()));
        assert_eq!(n.attr("name"), None);
        assert_eq!(n.set_text(None), Some("80".to_string()));
        assert_eq!(n.text(), None);
    }

    #[test]
    fn children_of_kind_filters() {
        let n = Node::new("section")
            .with_child(Node::new("directive"))
            .with_child(Node::new("comment"))
            .with_child(Node::new("directive"));
        assert_eq!(n.children_of_kind("directive").count(), 2);
        assert_eq!(n.first_child_of_kind("comment").unwrap().kind(), "comment");
        assert!(n.first_child_of_kind("blank").is_none());
    }

    #[test]
    fn subtree_len_counts_recursively() {
        let n = Node::new("a")
            .with_child(Node::new("b").with_child(Node::new("c")))
            .with_child(Node::new("d"));
        assert_eq!(n.subtree_len(), 4);
    }

    #[test]
    fn describe_is_compact_and_nonempty() {
        let n = Node::new("directive").with_attr("name", "x").with_text("y");
        assert_eq!(n.describe(), "directive(name=x)=\"y\"");
        assert_eq!(Node::new("blank").describe(), "blank");
        assert_eq!(format!("{n}"), n.describe());
    }
}
