//! The [`Node`] type: one information item of a configuration tree.

use std::collections::BTreeMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::TreePath;

/// The owned payload of one node. Kept behind an [`Arc`] inside
/// [`Node`] so that cloning a node — and therefore a whole subtree —
/// is a reference-count bump. `Clone` here is *shallow* in the
/// children: the child `Vec` is copied, but every child is itself an
/// `Arc` handle, so detaching one node from a shared tree costs that
/// node's own fields plus one refcount bump per direct child.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct NodeData {
    kind: String,
    attrs: BTreeMap<String, String>,
    text: Option<String>,
    children: Vec<Node>,
}

/// One node of a configuration tree.
///
/// A node mirrors an XML-infoset *information item*: it has a `kind`
/// (the element name, e.g. `"directive"`, `"section"`, `"comment"`),
/// an ordered map of string attributes, optional text content, and an
/// ordered list of children.
///
/// # Structural sharing
///
/// `Node` is a copy-on-write handle: the payload lives behind an
/// [`Arc`], so `clone` shares the entire subtree instead of deep
/// copying it, and the first mutation through any `&mut` accessor
/// detaches only the node being mutated (its children stay shared
/// with the original). Walking [`crate::ConfTree::node_at_mut`] down
/// to an edit site therefore copies exactly the root-to-edit path —
/// the cost of [applying a fault scenario] is proportional to the
/// *depth* of the edit, not the size of the configuration. Use
/// [`Node::ptr_eq`] to observe sharing.
///
/// [applying a fault scenario]: crate::ConfTree
///
/// Construction follows a lightweight builder style:
///
/// ```
/// use conferr_tree::Node;
///
/// let n = Node::new("directive")
///     .with_attr("name", "Listen")
///     .with_text("80");
/// assert_eq!(n.kind(), "directive");
/// assert_eq!(n.attr("name"), Some("Listen"));
/// assert_eq!(n.text(), Some("80"));
///
/// // Clones share the subtree until one side is mutated.
/// let copy = n.clone();
/// assert!(Node::ptr_eq(&n, &copy));
/// let mut edited = copy.clone();
/// edited.set_attr("name", "Port");
/// assert!(!Node::ptr_eq(&n, &edited));
/// assert_eq!(n.attr("name"), Some("Listen"));
/// ```
#[derive(Clone)]
pub struct Node {
    data: Arc<NodeData>,
}

impl Node {
    /// Creates a node of the given kind with no attributes, text or
    /// children.
    pub fn new(kind: impl Into<String>) -> Self {
        Node {
            data: Arc::new(NodeData {
                kind: kind.into(),
                attrs: BTreeMap::new(),
                text: None,
                children: Vec::new(),
            }),
        }
    }

    /// Copy-on-write access to the payload: detaches this node from
    /// any sharers (cloning its own fields, refcount-bumping its
    /// children) exactly once.
    fn make_mut(&mut self) -> &mut NodeData {
        Arc::make_mut(&mut self.data)
    }

    /// `true` iff `a` and `b` are handles on *the same* node payload
    /// (pointer equality, not structural equality). A `true` result
    /// proves neither subtree has been mutated since the handles
    /// diverged; `false` says nothing — structurally equal nodes in
    /// distinct allocations also return `false`.
    pub fn ptr_eq(a: &Node, b: &Node) -> bool {
        Arc::ptr_eq(&a.data, &b.data)
    }

    /// The node kind (element name).
    pub fn kind(&self) -> &str {
        &self.data.kind
    }

    /// Replaces the node kind.
    pub fn set_kind(&mut self, kind: impl Into<String>) {
        self.make_mut().kind = kind.into();
    }

    /// Builder-style: sets an attribute and returns `self`.
    #[must_use]
    pub fn with_attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.make_mut().attrs.insert(key.into(), value.into());
        self
    }

    /// Builder-style: sets the text content and returns `self`.
    #[must_use]
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.make_mut().text = Some(text.into());
        self
    }

    /// Builder-style: appends a child and returns `self`.
    #[must_use]
    pub fn with_child(mut self, child: Node) -> Self {
        self.make_mut().children.push(child);
        self
    }

    /// Builder-style: appends every child from the iterator.
    #[must_use]
    pub fn with_children(mut self, children: impl IntoIterator<Item = Node>) -> Self {
        self.make_mut().children.extend(children);
        self
    }

    /// Looks up an attribute value.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.data.attrs.get(key).map(String::as_str)
    }

    /// Sets an attribute, returning the previous value if any.
    pub fn set_attr(&mut self, key: impl Into<String>, value: impl Into<String>) -> Option<String> {
        self.make_mut().attrs.insert(key.into(), value.into())
    }

    /// Removes an attribute, returning its value if it was present.
    pub fn remove_attr(&mut self, key: &str) -> Option<String> {
        self.make_mut().attrs.remove(key)
    }

    /// All attributes in key order.
    pub fn attrs(&self) -> impl Iterator<Item = (&str, &str)> {
        self.data
            .attrs
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Number of attributes.
    pub fn attr_count(&self) -> usize {
        self.data.attrs.len()
    }

    /// The text content, if any.
    pub fn text(&self) -> Option<&str> {
        self.data.text.as_deref()
    }

    /// Sets (or clears, with `None`) the text content, returning the
    /// previous value.
    pub fn set_text(&mut self, text: Option<String>) -> Option<String> {
        std::mem::replace(&mut self.make_mut().text, text)
    }

    /// Shared access to the children.
    pub fn children(&self) -> &[Node] {
        &self.data.children
    }

    /// Exclusive access to the children. Detaches this node (one
    /// level only — the children themselves stay shared until they
    /// are mutated in turn).
    pub fn children_mut(&mut self) -> &mut Vec<Node> {
        &mut self.make_mut().children
    }

    /// Appends a child.
    pub fn push_child(&mut self, child: Node) {
        self.make_mut().children.push(child);
    }

    /// First child of the given kind, if any.
    pub fn first_child_of_kind(&self, kind: &str) -> Option<&Node> {
        self.data.children.iter().find(|c| c.kind() == kind)
    }

    /// All direct children of the given kind.
    pub fn children_of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a Node> + 'a {
        self.data.children.iter().filter(move |c| c.kind() == kind)
    }

    /// Depth-first count of all nodes in this subtree, including
    /// `self`.
    pub fn subtree_len(&self) -> usize {
        1 + self
            .data
            .children
            .iter()
            .map(Node::subtree_len)
            .sum::<usize>()
    }

    /// A compact single-line description used in diagnostics, e.g.
    /// `directive(name=Listen)="80"`.
    pub fn describe(&self) -> String {
        let mut s = self.data.kind.clone();
        if !self.data.attrs.is_empty() {
            let attrs: Vec<String> = self
                .data
                .attrs
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            s.push('(');
            s.push_str(&attrs.join(","));
            s.push(')');
        }
        if let Some(t) = &self.data.text {
            let shown: String = t.chars().take(40).collect();
            s.push_str(&format!("={shown:?}"));
        }
        s
    }
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        // Shared handles are equal without a walk; the deep comparison
        // only runs for detached (or independently built) subtrees.
        Arc::ptr_eq(&self.data, &other.data) || self.data == other.data
    }
}

impl Eq for Node {}

impl Hash for Node {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl fmt::Debug for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Node")
            .field("kind", &self.data.kind)
            .field("attrs", &self.data.attrs)
            .field("text", &self.data.text)
            .field("children", &self.data.children)
            .finish()
    }
}

// The workspace's offline `serde` shim only declares marker traits;
// these impls keep `Node` usable inside derived containers
// (`TreeEdit`, `ConfTree`, …). Restoring the real serde crates would
// replace them with impls delegating to the payload fields.
impl serde::Serialize for Node {}
impl<'de> serde::Deserialize<'de> for Node {}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// Depth-first iterator over `(path, node)` pairs of a subtree.
///
/// Produced by [`crate::ConfTree::iter`]. The root is yielded first
/// with the empty path.
#[derive(Debug)]
pub struct NodeIter<'a> {
    stack: Vec<(TreePath, &'a Node)>,
}

impl<'a> NodeIter<'a> {
    pub(crate) fn new(root: &'a Node) -> Self {
        NodeIter {
            stack: vec![(TreePath::root(), root)],
        }
    }
}

impl<'a> Iterator for NodeIter<'a> {
    type Item = (TreePath, &'a Node);

    fn next(&mut self) -> Option<Self::Item> {
        let (path, node) = self.stack.pop()?;
        for (i, child) in node.children().iter().enumerate().rev() {
            self.stack.push((path.child(i), child));
        }
        Some((path, node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors_round_trip() {
        let mut n = Node::new("directive")
            .with_attr("name", "port")
            .with_text("80");
        assert_eq!(n.attr("name"), Some("port"));
        assert_eq!(n.set_attr("name", "Port"), Some("port".to_string()));
        assert_eq!(n.remove_attr("name"), Some("Port".to_string()));
        assert_eq!(n.attr("name"), None);
        assert_eq!(n.set_text(None), Some("80".to_string()));
        assert_eq!(n.text(), None);
    }

    #[test]
    fn children_of_kind_filters() {
        let n = Node::new("section")
            .with_child(Node::new("directive"))
            .with_child(Node::new("comment"))
            .with_child(Node::new("directive"));
        assert_eq!(n.children_of_kind("directive").count(), 2);
        assert_eq!(n.first_child_of_kind("comment").unwrap().kind(), "comment");
        assert!(n.first_child_of_kind("blank").is_none());
    }

    #[test]
    fn subtree_len_counts_recursively() {
        let n = Node::new("a")
            .with_child(Node::new("b").with_child(Node::new("c")))
            .with_child(Node::new("d"));
        assert_eq!(n.subtree_len(), 4);
    }

    #[test]
    fn describe_is_compact_and_nonempty() {
        let n = Node::new("directive").with_attr("name", "x").with_text("y");
        assert_eq!(n.describe(), "directive(name=x)=\"y\"");
        assert_eq!(Node::new("blank").describe(), "blank");
        assert_eq!(format!("{n}"), n.describe());
    }

    #[test]
    fn clone_shares_until_mutated() {
        let original = Node::new("section")
            .with_child(Node::new("directive").with_attr("name", "a"))
            .with_child(Node::new("directive").with_attr("name", "b"));
        let copy = original.clone();
        assert!(Node::ptr_eq(&original, &copy));

        // Mutating the copy detaches only the copy's own payload; the
        // *untouched* child is still the very same allocation.
        let mut copy = copy;
        copy.children_mut()[1].set_attr("name", "c");
        assert!(!Node::ptr_eq(&original, &copy));
        assert!(Node::ptr_eq(&original.children()[0], &copy.children()[0]));
        assert!(!Node::ptr_eq(&original.children()[1], &copy.children()[1]));
        assert_eq!(original.children()[1].attr("name"), Some("b"));
        assert_eq!(copy.children()[1].attr("name"), Some("c"));
    }

    #[test]
    fn equality_and_hash_are_structural() {
        use std::collections::hash_map::DefaultHasher;
        let a = Node::new("directive").with_attr("name", "x").with_text("1");
        let b = Node::new("directive").with_attr("name", "x").with_text("1");
        assert_eq!(a, b);
        assert!(!Node::ptr_eq(&a, &b));
        let hash = |n: &Node| {
            let mut h = DefaultHasher::new();
            n.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
        let c = b.clone().with_text("2");
        assert_ne!(a, c);
    }
}
