//! Editing operations on [`ConfTree`].
//!
//! These are the primitive mutations from which ConfErr error templates
//! are built: delete, insert, replace, duplicate, move, swap, and
//! text/attribute modification. All operations address nodes by
//! [`TreePath`] and fail loudly (never panic) when a path does not
//! resolve or an edit is structurally impossible.

use crate::{ConfTree, Node, TreeError, TreePath};

/// The result of a structural edit, reporting where affected nodes
/// ended up. Paths of *other* nodes in the tree may have been
/// invalidated by the edit; callers that chain edits should re-query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EditOutcome {
    /// Path of the node the edit produced or acted on, where
    /// meaningful (e.g. the copy produced by `duplicate`, the new
    /// location after `move_node`).
    pub path: Option<TreePath>,
}

impl ConfTree {
    /// Deletes the node at `path` and returns it.
    ///
    /// # Errors
    ///
    /// Fails with [`TreeError::InvalidEdit`] when asked to delete the
    /// root, or [`TreeError::PathNotFound`] when the path does not
    /// resolve.
    pub fn delete(&mut self, path: &TreePath) -> Result<Node, TreeError> {
        let parent_path = path.parent().ok_or(TreeError::InvalidEdit {
            reason: "cannot delete the root node".to_string(),
        })?;
        let idx = path.last_index().expect("non-root path has a last index");
        let parent = self.node_at_mut(&parent_path)?;
        if idx >= parent.children().len() {
            return Err(TreeError::PathNotFound {
                path: path.clone(),
                depth: path.depth() - 1,
            });
        }
        Ok(parent.children_mut().remove(idx))
    }

    /// Inserts `node` as the `index`-th child of the node at `parent`.
    /// `index == len` appends.
    ///
    /// # Errors
    ///
    /// Fails if `parent` does not resolve or `index > len`.
    pub fn insert(
        &mut self,
        parent: &TreePath,
        index: usize,
        node: Node,
    ) -> Result<EditOutcome, TreeError> {
        let parent_node = self.node_at_mut(parent)?;
        let len = parent_node.children().len();
        if index > len {
            return Err(TreeError::IndexOutOfBounds {
                parent: parent.clone(),
                index,
                len,
            });
        }
        parent_node.children_mut().insert(index, node);
        Ok(EditOutcome {
            path: Some(parent.child(index)),
        })
    }

    /// Replaces the node at `path` with `node`, returning the old node.
    ///
    /// # Errors
    ///
    /// Fails if `path` does not resolve. Replacing the root is allowed.
    pub fn replace(&mut self, path: &TreePath, node: Node) -> Result<Node, TreeError> {
        let target = self.node_at_mut(path)?;
        Ok(std::mem::replace(target, node))
    }

    /// Duplicates the node at `path`, inserting the copy immediately
    /// after the original. Returns the copy's path.
    ///
    /// # Errors
    ///
    /// Fails with [`TreeError::InvalidEdit`] for the root, or
    /// [`TreeError::PathNotFound`] for unresolvable paths.
    pub fn duplicate(&mut self, path: &TreePath) -> Result<EditOutcome, TreeError> {
        let copy = self.node_at(path)?.clone();
        let parent_path = path.parent().ok_or(TreeError::InvalidEdit {
            reason: "cannot duplicate the root node".to_string(),
        })?;
        let idx = path.last_index().expect("non-root path");
        self.insert(&parent_path, idx + 1, copy)
    }

    /// Moves the node at `from` to become the `index`-th child of
    /// `to_parent`. Returns the node's new path.
    ///
    /// The insertion index is interpreted against the destination's
    /// child list *after* the node has been removed from its old
    /// position (relevant when moving within the same parent).
    ///
    /// # Errors
    ///
    /// Fails when `from` is the root, when `to_parent` lies inside the
    /// subtree being moved, when either path does not resolve, or when
    /// `index` is out of bounds.
    pub fn move_node(
        &mut self,
        from: &TreePath,
        to_parent: &TreePath,
        index: usize,
    ) -> Result<EditOutcome, TreeError> {
        if from.is_ancestor_of(to_parent) || from == to_parent {
            return Err(TreeError::InvalidEdit {
                reason: format!("cannot move {from} into its own subtree ({to_parent})"),
            });
        }
        // Validate everything up front so a failed move leaves the
        // tree untouched: both paths must resolve, and `index` must be
        // in bounds for the destination *after* the node's removal.
        self.node_at(from)?;
        let dest_len = self.node_at(to_parent)?.children().len();
        let expected_len = if from.parent().as_ref() == Some(to_parent) {
            dest_len - 1
        } else {
            dest_len
        };
        if index > expected_len {
            return Err(TreeError::IndexOutOfBounds {
                parent: to_parent.clone(),
                index,
                len: expected_len,
            });
        }

        let node = self.delete(from)?;

        // Removing `from` may have shifted the destination parent's
        // path: if both share a parent prefix and `from` sorts before
        // the destination at the divergence point, decrement that step.
        let adjusted_parent = adjust_path_after_removal(to_parent, from);
        let outcome = self
            .insert(&adjusted_parent, index, node)
            .expect("destination and index were validated before the removal");
        Ok(outcome)
    }

    /// Swaps children `i` and `j` of the node at `parent`.
    ///
    /// # Errors
    ///
    /// Fails if `parent` does not resolve or either index is out of
    /// bounds.
    pub fn swap_children(
        &mut self,
        parent: &TreePath,
        i: usize,
        j: usize,
    ) -> Result<(), TreeError> {
        let node = self.node_at_mut(parent)?;
        let len = node.children().len();
        for idx in [i, j] {
            if idx >= len {
                return Err(TreeError::IndexOutOfBounds {
                    parent: parent.clone(),
                    index: idx,
                    len,
                });
            }
        }
        node.children_mut().swap(i, j);
        Ok(())
    }

    /// Sets the text of the node at `path`, returning the previous
    /// text.
    ///
    /// # Errors
    ///
    /// Fails if `path` does not resolve.
    pub fn set_text_at(
        &mut self,
        path: &TreePath,
        text: Option<String>,
    ) -> Result<Option<String>, TreeError> {
        Ok(self.node_at_mut(path)?.set_text(text))
    }

    /// Sets an attribute of the node at `path`, returning the previous
    /// value.
    ///
    /// # Errors
    ///
    /// Fails if `path` does not resolve.
    pub fn set_attr_at(
        &mut self,
        path: &TreePath,
        key: &str,
        value: &str,
    ) -> Result<Option<String>, TreeError> {
        Ok(self.node_at_mut(path)?.set_attr(key, value))
    }
}

/// After removing the node at `removed`, rewrites `path` so it still
/// addresses the same node. `path` must not be inside the removed
/// subtree (callers guarantee this).
fn adjust_path_after_removal(path: &TreePath, removed: &TreePath) -> TreePath {
    let r = removed.indices();
    let p = path.indices();
    if r.is_empty() || p.len() < r.len() {
        return path.clone();
    }
    let prefix_len = r.len() - 1;
    if p[..prefix_len] == r[..prefix_len] && p.len() >= r.len() && p[prefix_len] > r[prefix_len] {
        let mut v = p.to_vec();
        v[prefix_len] -= 1;
        TreePath::from(v)
    } else {
        path.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> ConfTree {
        // config
        //   sec-a [d1 d2]
        //   sec-b [d3]
        ConfTree::new(
            Node::new("config")
                .with_child(
                    Node::new("section")
                        .with_attr("name", "a")
                        .with_child(Node::new("directive").with_attr("name", "d1"))
                        .with_child(Node::new("directive").with_attr("name", "d2")),
                )
                .with_child(
                    Node::new("section")
                        .with_attr("name", "b")
                        .with_child(Node::new("directive").with_attr("name", "d3")),
                ),
        )
    }

    #[test]
    fn delete_returns_removed_node() {
        let mut t = tree();
        let removed = t.delete(&TreePath::from(vec![0, 1])).unwrap();
        assert_eq!(removed.attr("name"), Some("d2"));
        assert_eq!(
            t.node_at(&TreePath::from(vec![0]))
                .unwrap()
                .children()
                .len(),
            1
        );
    }

    #[test]
    fn delete_root_is_rejected() {
        let mut t = tree();
        assert!(matches!(
            t.delete(&TreePath::root()),
            Err(TreeError::InvalidEdit { .. })
        ));
    }

    #[test]
    fn insert_appends_and_errors_past_end() {
        let mut t = tree();
        let parent = TreePath::from(vec![1]);
        t.insert(&parent, 1, Node::new("directive").with_attr("name", "d4"))
            .unwrap();
        assert_eq!(t.node_at(&parent).unwrap().children().len(), 2);
        assert!(matches!(
            t.insert(&parent, 5, Node::new("x")),
            Err(TreeError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn duplicate_places_copy_after_original() {
        let mut t = tree();
        let out = t.duplicate(&TreePath::from(vec![0, 0])).unwrap();
        assert_eq!(out.path, Some(TreePath::from(vec![0, 1])));
        let sec = t.node_at(&TreePath::from(vec![0])).unwrap();
        assert_eq!(sec.children().len(), 3);
        assert_eq!(sec.children()[0].attr("name"), Some("d1"));
        assert_eq!(sec.children()[1].attr("name"), Some("d1"));
    }

    #[test]
    fn move_between_sections() {
        let mut t = tree();
        let out = t
            .move_node(&TreePath::from(vec![0, 0]), &TreePath::from(vec![1]), 0)
            .unwrap();
        assert_eq!(out.path, Some(TreePath::from(vec![1, 0])));
        assert_eq!(
            t.node_at(&TreePath::from(vec![1, 0])).unwrap().attr("name"),
            Some("d1")
        );
        assert_eq!(
            t.node_at(&TreePath::from(vec![0]))
                .unwrap()
                .children()
                .len(),
            1
        );
    }

    #[test]
    fn move_into_own_subtree_is_rejected() {
        let mut t = tree();
        let err = t
            .move_node(&TreePath::from(vec![0]), &TreePath::from(vec![0, 0]), 0)
            .unwrap_err();
        assert!(matches!(err, TreeError::InvalidEdit { .. }));
    }

    #[test]
    fn failed_move_leaves_tree_untouched() {
        let mut t = tree();
        let before = t.clone();
        // Destination index out of bounds: sec-b has 1 child.
        let err = t
            .move_node(&TreePath::from(vec![0, 0]), &TreePath::from(vec![1]), 5)
            .unwrap_err();
        assert!(matches!(err, TreeError::IndexOutOfBounds { .. }));
        assert_eq!(t, before, "no node may be lost on a failed move");
    }

    #[test]
    fn move_within_same_parent_counts_index_after_removal() {
        let mut t = tree();
        // sec-a has two children; moving d1 to index 1 (the last slot
        // after removal) puts it after d2.
        let out = t
            .move_node(&TreePath::from(vec![0, 0]), &TreePath::from(vec![0]), 1)
            .unwrap();
        assert_eq!(out.path, Some(TreePath::from(vec![0, 1])));
        let sec = t.node_at(&TreePath::from(vec![0])).unwrap();
        assert_eq!(sec.children()[0].attr("name"), Some("d2"));
        assert_eq!(sec.children()[1].attr("name"), Some("d1"));
        // Index 2 would be out of bounds post-removal.
        let mut t2 = tree();
        assert!(t2
            .move_node(&TreePath::from(vec![0, 0]), &TreePath::from(vec![0]), 2)
            .is_err());
    }

    #[test]
    fn move_earlier_sibling_adjusts_destination_path() {
        // Moving sec-a's child into sec-b where sec-b's path shifts
        // because sec-a itself was removed: move the whole sec-a (path
        // /0) into sec-b (path /1): destination becomes /0 after
        // removal.
        let mut t = tree();
        let out = t
            .move_node(&TreePath::from(vec![0]), &TreePath::from(vec![1]), 1)
            .unwrap();
        assert_eq!(out.path, Some(TreePath::from(vec![0, 1])));
        let root = t.root();
        assert_eq!(root.children().len(), 1);
        let sec_b = &root.children()[0];
        assert_eq!(sec_b.attr("name"), Some("b"));
        assert_eq!(sec_b.children()[1].attr("name"), Some("a"));
    }

    #[test]
    fn swap_children_swaps_and_validates() {
        let mut t = tree();
        t.swap_children(&TreePath::from(vec![0]), 0, 1).unwrap();
        let sec = t.node_at(&TreePath::from(vec![0])).unwrap();
        assert_eq!(sec.children()[0].attr("name"), Some("d2"));
        assert!(t.swap_children(&TreePath::from(vec![0]), 0, 9).is_err());
    }

    #[test]
    fn set_text_and_attr_at_paths() {
        let mut t = tree();
        let p = TreePath::from(vec![0, 0]);
        t.set_text_at(&p, Some("v".into())).unwrap();
        assert_eq!(t.node_at(&p).unwrap().text(), Some("v"));
        t.set_attr_at(&p, "name", "renamed").unwrap();
        assert_eq!(t.node_at(&p).unwrap().attr("name"), Some("renamed"));
    }
}
