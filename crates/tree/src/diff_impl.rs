//! Structural diffing between two configuration trees.
//!
//! Resilience reports describe each injected error as the edit it
//! performed on the original configuration. [`diff`] recovers that
//! description by comparing the pristine and mutated trees.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{ConfTree, Node, TreePath};

/// One observed difference between two trees.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DiffOp {
    /// A node present in the old tree is missing from the new one.
    Deleted {
        /// Path in the *old* tree.
        path: TreePath,
        /// Description of the deleted node.
        node: String,
    },
    /// A node present in the new tree has no counterpart in the old
    /// one.
    Inserted {
        /// Path in the *new* tree.
        path: TreePath,
        /// Description of the inserted node.
        node: String,
    },
    /// Kind, attributes or text changed in place.
    Changed {
        /// Path (valid in both trees).
        path: TreePath,
        /// Description of the node before.
        before: String,
        /// Description of the node after.
        after: String,
    },
}

impl fmt::Display for DiffOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiffOp::Deleted { path, node } => write!(f, "- {path} {node}"),
            DiffOp::Inserted { path, node } => write!(f, "+ {path} {node}"),
            DiffOp::Changed {
                path,
                before,
                after,
            } => {
                write!(f, "~ {path} {before} -> {after}")
            }
        }
    }
}

/// Computes the differences between `old` and `new`.
///
/// Children are aligned with a longest-common-subsequence match on
/// node *signatures* (kind plus `name` attribute), so a single
/// insertion or deletion in a long child list is reported as exactly
/// one op rather than a cascade of changes. Unaligned nodes are
/// reported as deleted/inserted; aligned nodes with differing
/// kind/attrs/text are reported as changed and their children compared
/// recursively.
pub fn diff(old: &ConfTree, new: &ConfTree) -> Vec<DiffOp> {
    let mut ops = Vec::new();
    let mut old_path = Vec::new();
    let mut new_path = Vec::new();
    diff_nodes(
        old.root(),
        new.root(),
        &mut old_path,
        &mut new_path,
        &mut ops,
    );
    ops
}

/// Materializes a path stack plus a final child index into a
/// [`TreePath`] — only called when an op is actually emitted, so the
/// all-equal hot path allocates nothing per node.
fn path_at(stack: &[usize], index: usize) -> TreePath {
    let mut segments = Vec::with_capacity(stack.len() + 1);
    segments.extend_from_slice(stack);
    segments.push(index);
    TreePath::from(segments)
}

fn signature(n: &Node) -> (&str, Option<&str>) {
    (n.kind(), n.attr("name"))
}

fn shallow_equal(a: &Node, b: &Node) -> bool {
    a.kind() == b.kind() && a.text() == b.text() && a.attrs().eq(b.attrs())
}

fn diff_nodes(
    old: &Node,
    new: &Node,
    old_path: &mut Vec<usize>,
    new_path: &mut Vec<usize>,
    ops: &mut Vec<DiffOp>,
) {
    if !shallow_equal(old, new) {
        ops.push(DiffOp::Changed {
            path: TreePath::from(new_path.clone()),
            before: old.describe(),
            after: new.describe(),
        });
    }
    let a = old.children();
    let b = new.children();
    let pairs = lcs_pairs(a, b);
    let mut ai = 0;
    let mut bi = 0;
    for &(pa, pb) in &pairs {
        while ai < pa {
            ops.push(DiffOp::Deleted {
                path: path_at(old_path, ai),
                node: a[ai].describe(),
            });
            ai += 1;
        }
        while bi < pb {
            ops.push(DiffOp::Inserted {
                path: path_at(new_path, bi),
                node: b[bi].describe(),
            });
            bi += 1;
        }
        // Equal subtrees need no recursion; the compare is shallow-
        // first and cheap, and single-point edits leave almost every
        // paired subtree untouched.
        if a[pa] != b[pb] {
            old_path.push(pa);
            new_path.push(pb);
            diff_nodes(&a[pa], &b[pb], old_path, new_path, ops);
            old_path.pop();
            new_path.pop();
        }
        ai = pa + 1;
        bi = pb + 1;
    }
    while ai < a.len() {
        ops.push(DiffOp::Deleted {
            path: path_at(old_path, ai),
            node: a[ai].describe(),
        });
        ai += 1;
    }
    while bi < b.len() {
        ops.push(DiffOp::Inserted {
            path: path_at(new_path, bi),
            node: b[bi].describe(),
        });
        bi += 1;
    }
}

/// Longest common subsequence over child signatures; returns matched
/// index pairs in increasing order.
///
/// Fault scenarios are single-point edits, so the two child lists
/// almost always share a long common prefix and suffix. Equal-
/// signature heads (and, symmetrically, tails) are always part of an
/// optimal matching, so they are paired directly and the quadratic
/// DP runs only on the usually tiny middle window — this is what
/// keeps the per-injection diff cost proportional to the edit, not
/// to the configuration size.
fn lcs_pairs(a: &[Node], b: &[Node]) -> Vec<(usize, usize)> {
    let n = a.len();
    let m = b.len();
    let mut prefix = 0;
    while prefix < n && prefix < m && signature(&a[prefix]) == signature(&b[prefix]) {
        prefix += 1;
    }
    let mut suffix = 0;
    while suffix < n - prefix
        && suffix < m - prefix
        && signature(&a[n - 1 - suffix]) == signature(&b[m - 1 - suffix])
    {
        suffix += 1;
    }
    let an = n - prefix - suffix;
    let bm = m - prefix - suffix;

    let mut pairs: Vec<(usize, usize)> = (0..prefix).map(|i| (i, i)).collect();
    if an > 0 && bm > 0 {
        let sig_a: Vec<_> = a[prefix..prefix + an].iter().map(signature).collect();
        let sig_b: Vec<_> = b[prefix..prefix + bm].iter().map(signature).collect();
        // dp[i * (bm + 1) + j] = LCS length of the windows'
        // suffixes a[i..], b[j..] (one flat buffer, no per-row
        // allocations).
        let width = bm + 1;
        let mut dp = vec![0usize; (an + 1) * width];
        for i in (0..an).rev() {
            for j in (0..bm).rev() {
                dp[i * width + j] = if sig_a[i] == sig_b[j] {
                    dp[(i + 1) * width + j + 1] + 1
                } else {
                    dp[(i + 1) * width + j].max(dp[i * width + j + 1])
                };
            }
        }
        let (mut i, mut j) = (0, 0);
        while i < an && j < bm {
            if sig_a[i] == sig_b[j] {
                pairs.push((prefix + i, prefix + j));
                i += 1;
                j += 1;
            } else if dp[(i + 1) * width + j] >= dp[i * width + j + 1] {
                i += 1;
            } else {
                j += 1;
            }
        }
    }
    pairs.extend((0..suffix).map(|k| (n - suffix + k, m - suffix + k)));
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ConfTree {
        ConfTree::new(
            Node::new("config")
                .with_child(Node::new("directive").with_attr("name", "a").with_text("1"))
                .with_child(Node::new("directive").with_attr("name", "b").with_text("2"))
                .with_child(Node::new("directive").with_attr("name", "c").with_text("3")),
        )
    }

    #[test]
    fn identical_trees_have_no_diff() {
        assert!(diff(&base(), &base()).is_empty());
    }

    #[test]
    fn single_deletion_is_one_op() {
        let mut new = base();
        new.delete(&TreePath::from(vec![1])).unwrap();
        let ops = diff(&base(), &new);
        assert_eq!(ops.len(), 1);
        match &ops[0] {
            DiffOp::Deleted { path, node } => {
                assert_eq!(*path, TreePath::from(vec![1]));
                assert!(node.contains("name=b"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn single_insertion_is_one_op() {
        let mut new = base();
        new.insert(
            &TreePath::root(),
            1,
            Node::new("directive").with_attr("name", "x").with_text("9"),
        )
        .unwrap();
        let ops = diff(&base(), &new);
        assert_eq!(ops.len(), 1);
        assert!(
            matches!(&ops[0], DiffOp::Inserted { path, .. } if *path == TreePath::from(vec![1]))
        );
    }

    #[test]
    fn text_change_is_reported_as_changed() {
        let mut new = base();
        new.set_text_at(&TreePath::from(vec![2]), Some("30".into()))
            .unwrap();
        let ops = diff(&base(), &new);
        assert_eq!(ops.len(), 1);
        match &ops[0] {
            DiffOp::Changed { before, after, .. } => {
                assert!(before.contains("\"3\""));
                assert!(after.contains("\"30\""));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn duplication_shows_as_insertion() {
        let mut new = base();
        new.duplicate(&TreePath::from(vec![0])).unwrap();
        let ops = diff(&base(), &new);
        assert_eq!(ops.len(), 1);
        assert!(matches!(&ops[0], DiffOp::Inserted { .. }));
    }

    #[test]
    fn display_renders_ops() {
        let mut new = base();
        new.delete(&TreePath::from(vec![0])).unwrap();
        let ops = diff(&base(), &new);
        let s = ops[0].to_string();
        assert!(s.starts_with("- /0"), "{s}");
    }
}
