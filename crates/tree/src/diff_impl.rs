//! Structural diffing between two configuration trees.
//!
//! Resilience reports describe each injected error as the edit it
//! performed on the original configuration. [`diff`] recovers that
//! description by comparing the pristine and mutated trees.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{ConfTree, Node, TreePath};

/// One observed difference between two trees.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DiffOp {
    /// A node present in the old tree is missing from the new one.
    Deleted {
        /// Path in the *old* tree.
        path: TreePath,
        /// Description of the deleted node.
        node: String,
    },
    /// A node present in the new tree has no counterpart in the old
    /// one.
    Inserted {
        /// Path in the *new* tree.
        path: TreePath,
        /// Description of the inserted node.
        node: String,
    },
    /// Kind, attributes or text changed in place.
    Changed {
        /// Path (valid in both trees).
        path: TreePath,
        /// Description of the node before.
        before: String,
        /// Description of the node after.
        after: String,
    },
}

impl fmt::Display for DiffOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiffOp::Deleted { path, node } => write!(f, "- {path} {node}"),
            DiffOp::Inserted { path, node } => write!(f, "+ {path} {node}"),
            DiffOp::Changed {
                path,
                before,
                after,
            } => {
                write!(f, "~ {path} {before} -> {after}")
            }
        }
    }
}

/// Computes the differences between `old` and `new`.
///
/// Children are aligned with a longest-common-subsequence match on
/// node *signatures* (kind plus `name` attribute), so a single
/// insertion or deletion in a long child list is reported as exactly
/// one op rather than a cascade of changes. Unaligned nodes are
/// reported as deleted/inserted; aligned nodes with differing
/// kind/attrs/text are reported as changed and their children compared
/// recursively.
pub fn diff(old: &ConfTree, new: &ConfTree) -> Vec<DiffOp> {
    let mut ops = Vec::new();
    diff_nodes(
        old.root(),
        new.root(),
        &TreePath::root(),
        &TreePath::root(),
        &mut ops,
    );
    ops
}

fn signature(n: &Node) -> (String, Option<String>) {
    (n.kind().to_string(), n.attr("name").map(str::to_string))
}

fn shallow_equal(a: &Node, b: &Node) -> bool {
    a.kind() == b.kind()
        && a.text() == b.text()
        && a.attrs().collect::<Vec<_>>() == b.attrs().collect::<Vec<_>>()
}

fn diff_nodes(
    old: &Node,
    new: &Node,
    old_path: &TreePath,
    new_path: &TreePath,
    ops: &mut Vec<DiffOp>,
) {
    if !shallow_equal(old, new) {
        ops.push(DiffOp::Changed {
            path: new_path.clone(),
            before: old.describe(),
            after: new.describe(),
        });
    }
    let a = old.children();
    let b = new.children();
    let pairs = lcs_pairs(a, b);
    let mut ai = 0;
    let mut bi = 0;
    for &(pa, pb) in &pairs {
        while ai < pa {
            ops.push(DiffOp::Deleted {
                path: old_path.child(ai),
                node: a[ai].describe(),
            });
            ai += 1;
        }
        while bi < pb {
            ops.push(DiffOp::Inserted {
                path: new_path.child(bi),
                node: b[bi].describe(),
            });
            bi += 1;
        }
        diff_nodes(
            &a[pa],
            &b[pb],
            &old_path.child(pa),
            &new_path.child(pb),
            ops,
        );
        ai = pa + 1;
        bi = pb + 1;
    }
    while ai < a.len() {
        ops.push(DiffOp::Deleted {
            path: old_path.child(ai),
            node: a[ai].describe(),
        });
        ai += 1;
    }
    while bi < b.len() {
        ops.push(DiffOp::Inserted {
            path: new_path.child(bi),
            node: b[bi].describe(),
        });
        bi += 1;
    }
}

/// Longest common subsequence over child signatures; returns matched
/// index pairs in increasing order.
fn lcs_pairs(a: &[Node], b: &[Node]) -> Vec<(usize, usize)> {
    let sig_a: Vec<_> = a.iter().map(signature).collect();
    let sig_b: Vec<_> = b.iter().map(signature).collect();
    let n = a.len();
    let m = b.len();
    // dp[i][j] = LCS length of a[i..], b[j..]
    let mut dp = vec![vec![0usize; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            dp[i][j] = if sig_a[i] == sig_b[j] {
                dp[i + 1][j + 1] + 1
            } else {
                dp[i + 1][j].max(dp[i][j + 1])
            };
        }
    }
    let mut pairs = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if sig_a[i] == sig_b[j] {
            pairs.push((i, j));
            i += 1;
            j += 1;
        } else if dp[i + 1][j] >= dp[i][j + 1] {
            i += 1;
        } else {
            j += 1;
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ConfTree {
        ConfTree::new(
            Node::new("config")
                .with_child(Node::new("directive").with_attr("name", "a").with_text("1"))
                .with_child(Node::new("directive").with_attr("name", "b").with_text("2"))
                .with_child(Node::new("directive").with_attr("name", "c").with_text("3")),
        )
    }

    #[test]
    fn identical_trees_have_no_diff() {
        assert!(diff(&base(), &base()).is_empty());
    }

    #[test]
    fn single_deletion_is_one_op() {
        let mut new = base();
        new.delete(&TreePath::from(vec![1])).unwrap();
        let ops = diff(&base(), &new);
        assert_eq!(ops.len(), 1);
        match &ops[0] {
            DiffOp::Deleted { path, node } => {
                assert_eq!(*path, TreePath::from(vec![1]));
                assert!(node.contains("name=b"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn single_insertion_is_one_op() {
        let mut new = base();
        new.insert(
            &TreePath::root(),
            1,
            Node::new("directive").with_attr("name", "x").with_text("9"),
        )
        .unwrap();
        let ops = diff(&base(), &new);
        assert_eq!(ops.len(), 1);
        assert!(
            matches!(&ops[0], DiffOp::Inserted { path, .. } if *path == TreePath::from(vec![1]))
        );
    }

    #[test]
    fn text_change_is_reported_as_changed() {
        let mut new = base();
        new.set_text_at(&TreePath::from(vec![2]), Some("30".into()))
            .unwrap();
        let ops = diff(&base(), &new);
        assert_eq!(ops.len(), 1);
        match &ops[0] {
            DiffOp::Changed { before, after, .. } => {
                assert!(before.contains("\"3\""));
                assert!(after.contains("\"30\""));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn duplication_shows_as_insertion() {
        let mut new = base();
        new.duplicate(&TreePath::from(vec![0])).unwrap();
        let ops = diff(&base(), &new);
        assert_eq!(ops.len(), 1);
        assert!(matches!(&ops[0], DiffOp::Inserted { .. }));
    }

    #[test]
    fn display_renders_ops() {
        let mut new = base();
        new.delete(&TreePath::from(vec![0])).unwrap();
        let ops = diff(&base(), &new);
        let s = ops[0].to_string();
        assert!(s.starts_with("- /0"), "{s}");
    }
}
