//! Abstract configuration-tree representation for ConfErr.
//!
//! # Architecture
//!
//! This crate is the *foundation layer* of the reproduction (paper
//! §3.2): in the workspace DAG
//! `tree → {keyboard, formats, model} → {plugins, sut} → core → bench`
//! every other crate builds on these trees — formats parse text into
//! them, the model edits them, plugins select injection targets in
//! them, and the campaign engine diffs them.
//!
//! The DSN 2008 ConfErr paper models configuration files as XML
//! information sets: trees of *information items* with attached
//! properties. This crate provides the native Rust equivalent:
//!
//! * [`Node`] — a tree node with a *kind* (element name), string
//!   attributes, optional text content and ordered children;
//! * [`ConfTree`] — a whole configuration document (a root node plus
//!   editing operations that address nodes by [`TreePath`]);
//! * [`NodeQuery`] — a small XPath-like query language used by error
//!   templates to select injection targets declaratively;
//! * [`diff`] — a structural differ used by resilience reports to
//!   describe the injected error as a human-readable edit.
//!
//! # Examples
//!
//! ```
//! use conferr_tree::{ConfTree, Node, NodeQuery};
//!
//! # fn main() -> Result<(), conferr_tree::TreeError> {
//! let tree = ConfTree::new(
//!     Node::new("config")
//!         .with_child(
//!             Node::new("section").with_attr("name", "mysqld").with_child(
//!                 Node::new("directive")
//!                     .with_attr("name", "port")
//!                     .with_text("3306"),
//!             ),
//!         ),
//! );
//!
//! let q: NodeQuery = "/section[@name='mysqld']/directive[@name='port']".parse()?;
//! let hits = q.select(&tree);
//! assert_eq!(hits.len(), 1);
//! assert_eq!(tree.node_at(&hits[0])?.text(), Some("3306"));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod diff_impl;
mod edit;
mod error;
mod node;
mod path;
mod query;

pub use diff_impl::{diff, DiffOp};
pub use edit::EditOutcome;
pub use error::TreeError;
pub use node::{Node, NodeIter};
pub use path::TreePath;
pub use query::{NodeQuery, Predicate, Step};

use serde::{Deserialize, Serialize};

/// A whole configuration document: a named root [`Node`] plus editing
/// operations addressed by [`TreePath`].
///
/// `ConfTree` is the unit that parsers produce, error templates mutate,
/// and serializers consume. Because [`Node`] is an `Arc`-backed
/// copy-on-write handle, cloning a tree is a reference-count bump and
/// editing a clone copies only the root-to-edit path
/// ([`ConfTree::node_at_mut`] detaches one node per level as it
/// descends); untouched subtrees stay shared with the original, which
/// [`Node::ptr_eq`] can observe.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConfTree {
    root: Node,
}

impl ConfTree {
    /// Creates a tree from its root node.
    pub fn new(root: Node) -> Self {
        ConfTree { root }
    }

    /// Shared access to the root node.
    pub fn root(&self) -> &Node {
        &self.root
    }

    /// Exclusive access to the root node.
    pub fn root_mut(&mut self) -> &mut Node {
        &mut self.root
    }

    /// Consumes the tree and returns the root node.
    pub fn into_root(self) -> Node {
        self.root
    }

    /// Resolves `path` to a shared node reference.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::PathNotFound`] if any index along the path
    /// is out of bounds.
    pub fn node_at(&self, path: &TreePath) -> Result<&Node, TreeError> {
        let mut cur = &self.root;
        for (depth, &idx) in path.indices().iter().enumerate() {
            cur = cur
                .children()
                .get(idx)
                .ok_or_else(|| TreeError::PathNotFound {
                    path: path.clone(),
                    depth,
                })?;
        }
        Ok(cur)
    }

    /// Resolves `path` to an exclusive node reference, detaching (at
    /// most) one shared node per level on the way down — the
    /// path-proportional copy that makes editing a clone of a shared
    /// tree cheap.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::PathNotFound`] if any index along the path
    /// is out of bounds.
    pub fn node_at_mut(&mut self, path: &TreePath) -> Result<&mut Node, TreeError> {
        let mut cur = &mut self.root;
        for (depth, &idx) in path.indices().iter().enumerate() {
            cur = cur
                .children_mut()
                .get_mut(idx)
                .ok_or(TreeError::PathNotFound {
                    path: path.clone(),
                    depth,
                })?;
        }
        Ok(cur)
    }

    /// Depth-first iterator over `(path, node)` pairs, root included.
    pub fn iter(&self) -> NodeIter<'_> {
        NodeIter::new(&self.root)
    }

    /// Total number of nodes in the tree, root included.
    pub fn len(&self) -> usize {
        self.iter().count()
    }

    /// `true` iff the tree consists of the root node only.
    pub fn is_empty(&self) -> bool {
        self.root.children().is_empty()
    }
}

impl From<Node> for ConfTree {
    fn from(root: Node) -> Self {
        ConfTree::new(root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ConfTree {
        ConfTree::new(
            Node::new("config")
                .with_child(
                    Node::new("section")
                        .with_attr("name", "main")
                        .with_child(Node::new("directive").with_attr("name", "a").with_text("1"))
                        .with_child(Node::new("directive").with_attr("name", "b").with_text("2")),
                )
                .with_child(Node::new("comment").with_text("# hi")),
        )
    }

    #[test]
    fn node_at_resolves_nested_paths() {
        let t = sample();
        let n = t.node_at(&TreePath::from(vec![0, 1])).unwrap();
        assert_eq!(n.attr("name"), Some("b"));
    }

    #[test]
    fn node_at_rejects_out_of_bounds() {
        let t = sample();
        let err = t.node_at(&TreePath::from(vec![0, 9])).unwrap_err();
        match err {
            TreeError::PathNotFound { depth, .. } => assert_eq!(depth, 1),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn iter_visits_all_nodes_depth_first() {
        let t = sample();
        let kinds: Vec<&str> = t.iter().map(|(_, n)| n.kind()).collect();
        assert_eq!(
            kinds,
            ["config", "section", "directive", "directive", "comment"]
        );
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn empty_checks_root_children() {
        assert!(ConfTree::new(Node::new("x")).is_empty());
        assert!(!sample().is_empty());
    }
}
