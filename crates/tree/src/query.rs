//! A small XPath-like query language for selecting tree nodes.
//!
//! ConfErr's error templates take "a description of the nodes that
//! should undergo the template-specific mutation" (paper §3.3); in the
//! original tool that description is an XPath query. [`NodeQuery`] is
//! the equivalent here. Supported syntax:
//!
//! ```text
//! /section/directive              children by kind, from the root
//! //directive                     any descendant of the root
//! /section[@name='mysqld']        attribute-equality predicate
//! //directive[@name]              attribute-presence predicate
//! /section[2]                     positional predicate (1-based)
//! //directive[text()='80']        text-equality predicate
//! //directive[contains(@name,'log')]  attribute-substring predicate
//! /*/directive                    wildcard kind test
//! ```
//!
//! Steps are separated by `/`; a step introduced by `//` searches the
//! whole subtree (descendant-or-self) instead of only direct children.
//! Predicates can be chained: `//directive[@name='port'][1]`.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::{ConfTree, Node, TreeError, TreePath};

/// One parsed query: a sequence of [`Step`]s evaluated from the root.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeQuery {
    steps: Vec<Step>,
}

/// One step of a [`NodeQuery`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Step {
    /// `true` for `//step` (descendant-or-self search), `false` for
    /// `/step` (direct children only).
    pub descendant: bool,
    /// Node-kind test: `Some(kind)` or `None` for the `*` wildcard.
    pub kind: Option<String>,
    /// Predicates applied in order; positional predicates are applied
    /// to the candidate list *as filtered so far*.
    pub predicates: Vec<Predicate>,
}

/// A filter inside `[...]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Predicate {
    /// `[@key='value']`
    AttrEquals(String, String),
    /// `[@key]`
    HasAttr(String),
    /// `[n]` — 1-based position among the candidates matched so far.
    Index(usize),
    /// `[text()='value']`
    TextEquals(String),
    /// `[contains(@key,'value')]`
    AttrContains(String, String),
}

impl NodeQuery {
    /// Builds a query programmatically from steps.
    pub fn from_steps(steps: Vec<Step>) -> Self {
        NodeQuery { steps }
    }

    /// Convenience: `//kind` — all descendants of the given kind.
    pub fn descendants(kind: impl Into<String>) -> Self {
        NodeQuery {
            steps: vec![Step {
                descendant: true,
                kind: Some(kind.into()),
                predicates: Vec::new(),
            }],
        }
    }

    /// The parsed steps.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Evaluates the query, returning the paths of all matching nodes
    /// in document (depth-first) order, without duplicates.
    pub fn select(&self, tree: &ConfTree) -> Vec<TreePath> {
        let mut context: Vec<TreePath> = vec![TreePath::root()];
        for step in &self.steps {
            let mut next: Vec<TreePath> = Vec::new();
            for ctx in &context {
                let Ok(node) = tree.node_at(ctx) else {
                    continue;
                };
                let mut candidates: Vec<(TreePath, &Node)> = Vec::new();
                if step.descendant {
                    collect_descendants(ctx, node, &mut candidates);
                } else {
                    for (i, child) in node.children().iter().enumerate() {
                        candidates.push((ctx.child(i), child));
                    }
                }
                candidates.retain(|(_, n)| match &step.kind {
                    Some(k) => n.kind() == k,
                    None => true,
                });
                for pred in &step.predicates {
                    candidates = apply_predicate(pred, candidates);
                }
                next.extend(candidates.into_iter().map(|(p, _)| p));
            }
            next.sort();
            next.dedup();
            context = next;
        }
        context
    }

    /// Evaluates the query and resolves each hit to a node reference.
    pub fn select_nodes<'t>(&self, tree: &'t ConfTree) -> Vec<(TreePath, &'t Node)> {
        self.select(tree)
            .into_iter()
            .filter_map(|p| tree.node_at(&p).ok().map(|n| (p, n)))
            .collect()
    }
}

fn collect_descendants<'t>(path: &TreePath, node: &'t Node, out: &mut Vec<(TreePath, &'t Node)>) {
    out.push((path.clone(), node));
    for (i, child) in node.children().iter().enumerate() {
        collect_descendants(&path.child(i), child, out);
    }
}

fn apply_predicate<'t>(
    pred: &Predicate,
    candidates: Vec<(TreePath, &'t Node)>,
) -> Vec<(TreePath, &'t Node)> {
    match pred {
        Predicate::AttrEquals(k, v) => candidates
            .into_iter()
            .filter(|(_, n)| n.attr(k) == Some(v.as_str()))
            .collect(),
        Predicate::HasAttr(k) => candidates
            .into_iter()
            .filter(|(_, n)| n.attr(k).is_some())
            .collect(),
        Predicate::TextEquals(v) => candidates
            .into_iter()
            .filter(|(_, n)| n.text() == Some(v.as_str()))
            .collect(),
        Predicate::AttrContains(k, v) => candidates
            .into_iter()
            .filter(|(_, n)| n.attr(k).is_some_and(|a| a.contains(v.as_str())))
            .collect(),
        Predicate::Index(i) => {
            let i = *i;
            if i == 0 {
                return Vec::new();
            }
            candidates.into_iter().skip(i - 1).take(1).collect()
        }
    }
}

impl fmt::Display for NodeQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for step in &self.steps {
            f.write_str(if step.descendant { "//" } else { "/" })?;
            match &step.kind {
                Some(k) => f.write_str(k)?,
                None => f.write_str("*")?,
            }
            for p in &step.predicates {
                match p {
                    Predicate::AttrEquals(k, v) => write!(f, "[@{k}='{v}']")?,
                    Predicate::HasAttr(k) => write!(f, "[@{k}]")?,
                    Predicate::Index(i) => write!(f, "[{i}]")?,
                    Predicate::TextEquals(v) => write!(f, "[text()='{v}']")?,
                    Predicate::AttrContains(k, v) => write!(f, "[contains(@{k},'{v}')]")?,
                }
            }
        }
        Ok(())
    }
}

impl FromStr for NodeQuery {
    type Err = TreeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Parser::new(s).parse()
    }
}

struct Parser<'a> {
    input: &'a str,
    chars: Vec<char>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input,
            chars: input.trim().chars().collect(),
            pos: 0,
        }
    }

    fn err(&self, reason: impl Into<String>) -> TreeError {
        TreeError::InvalidQuery {
            input: self.input.to_string(),
            reason: reason.into(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), TreeError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected {c:?} at position {}, found {:?}",
                self.pos,
                self.peek()
            )))
        }
    }

    fn parse(mut self) -> Result<NodeQuery, TreeError> {
        if self.chars.is_empty() {
            return Err(self.err("empty query"));
        }
        let mut steps = Vec::new();
        while self.peek().is_some() {
            self.expect('/')?;
            let descendant = self.eat('/');
            let kind = self.parse_kind_test()?;
            let mut predicates = Vec::new();
            while self.eat('[') {
                predicates.push(self.parse_predicate()?);
                self.expect(']')?;
            }
            steps.push(Step {
                descendant,
                kind,
                predicates,
            });
        }
        if steps.is_empty() {
            return Err(self.err("query has no steps"));
        }
        Ok(NodeQuery { steps })
    }

    fn parse_kind_test(&mut self) -> Result<Option<String>, TreeError> {
        if self.eat('*') {
            return Ok(None);
        }
        let name = self.parse_name()?;
        Ok(Some(name))
    }

    fn parse_name(&mut self) -> Result<String, TreeError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' || c == '-' || c == '.' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err(format!(
                "expected a name at position {start}, found {:?}",
                self.peek()
            )));
        }
        Ok(self.chars[start..self.pos].iter().collect())
    }

    fn parse_quoted(&mut self) -> Result<String, TreeError> {
        let quote = match self.bump() {
            Some(c @ ('\'' | '"')) => c,
            other => return Err(self.err(format!("expected a quoted string, found {other:?}"))),
        };
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == quote {
                let s: String = self.chars[start..self.pos].iter().collect();
                self.pos += 1;
                return Ok(s);
            }
            self.pos += 1;
        }
        Err(self.err("unterminated quoted string"))
    }

    fn parse_predicate(&mut self) -> Result<Predicate, TreeError> {
        match self.peek() {
            Some('@') => {
                self.pos += 1;
                let key = self.parse_name()?;
                if self.eat('=') {
                    let value = self.parse_quoted()?;
                    Ok(Predicate::AttrEquals(key, value))
                } else {
                    Ok(Predicate::HasAttr(key))
                }
            }
            Some(c) if c.is_ascii_digit() => {
                let start = self.pos;
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.pos += 1;
                }
                let digits: String = self.chars[start..self.pos].iter().collect();
                let n: usize = digits
                    .parse()
                    .map_err(|_| self.err(format!("invalid index {digits:?}")))?;
                if n == 0 {
                    return Err(self.err("positional predicates are 1-based; [0] is invalid"));
                }
                Ok(Predicate::Index(n))
            }
            Some('t') => {
                for expected in "text()".chars() {
                    self.expect(expected)?;
                }
                self.expect('=')?;
                let value = self.parse_quoted()?;
                Ok(Predicate::TextEquals(value))
            }
            Some('c') => {
                for expected in "contains(@".chars() {
                    self.expect(expected)?;
                }
                let key = self.parse_name()?;
                self.expect(',')?;
                let value = self.parse_quoted()?;
                self.expect(')')?;
                Ok(Predicate::AttrContains(key, value))
            }
            other => Err(self.err(format!("unsupported predicate starting with {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Node;

    fn tree() -> ConfTree {
        ConfTree::new(
            Node::new("config")
                .with_child(
                    Node::new("section")
                        .with_attr("name", "mysqld")
                        .with_child(
                            Node::new("directive")
                                .with_attr("name", "port")
                                .with_text("3306"),
                        )
                        .with_child(
                            Node::new("directive")
                                .with_attr("name", "log_error")
                                .with_text("/var/log/err"),
                        ),
                )
                .with_child(
                    Node::new("section").with_attr("name", "client").with_child(
                        Node::new("directive")
                            .with_attr("name", "port")
                            .with_text("3306"),
                    ),
                ),
        )
    }

    #[test]
    fn child_steps_select_direct_children_only() {
        let q: NodeQuery = "/section/directive".parse().unwrap();
        assert_eq!(q.select(&tree()).len(), 3);
    }

    #[test]
    fn descendant_step_searches_whole_tree() {
        let q: NodeQuery = "//directive".parse().unwrap();
        assert_eq!(q.select(&tree()).len(), 3);
        let q: NodeQuery = "//section".parse().unwrap();
        assert_eq!(q.select(&tree()).len(), 2);
    }

    #[test]
    fn attr_equals_predicate() {
        let q: NodeQuery = "/section[@name='mysqld']/directive".parse().unwrap();
        assert_eq!(q.select(&tree()).len(), 2);
    }

    #[test]
    fn positional_predicate_is_one_based() {
        let t = tree();
        let q: NodeQuery = "//directive[2]".parse().unwrap();
        let hits = q.select_nodes(&t);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1.attr("name"), Some("log_error"));
        assert!("//directive[0]".parse::<NodeQuery>().is_err());
    }

    #[test]
    fn text_and_contains_predicates() {
        let t = tree();
        let q: NodeQuery = "//directive[text()='3306']".parse().unwrap();
        assert_eq!(q.select(&t).len(), 2);
        let q: NodeQuery = "//directive[contains(@name,'log')]".parse().unwrap();
        let hits = q.select_nodes(&t);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1.attr("name"), Some("log_error"));
    }

    #[test]
    fn wildcard_kind_test() {
        let q: NodeQuery = "/*".parse().unwrap();
        assert_eq!(q.select(&tree()).len(), 2);
    }

    #[test]
    fn chained_predicates_filter_in_order() {
        let q: NodeQuery = "//directive[@name='port'][1]".parse().unwrap();
        let t = tree();
        let hits = q.select(&t);
        assert_eq!(hits.len(), 1);
        // Document order: the mysqld port comes first.
        assert_eq!(hits[0], TreePath::from(vec![0, 0]));
    }

    #[test]
    fn display_round_trips() {
        for s in [
            "/section/directive",
            "//directive[@name='port'][1]",
            "/*[@name]",
            "//directive[text()='80']",
            "//directive[contains(@name,'log')]",
        ] {
            let q: NodeQuery = s.parse().unwrap();
            assert_eq!(q.to_string(), s);
            let back: NodeQuery = q.to_string().parse().unwrap();
            assert_eq!(back, q);
        }
    }

    #[test]
    fn parse_errors_are_reported() {
        for s in [
            "",
            "section",
            "/section[",
            "/section[@]",
            "//directive[foo]",
        ] {
            assert!(s.parse::<NodeQuery>().is_err(), "{s:?} should fail");
        }
    }

    #[test]
    fn select_on_missing_kind_returns_empty() {
        let q: NodeQuery = "//nothing".parse().unwrap();
        assert!(q.select(&tree()).is_empty());
    }
}
