//! Error type for tree operations.

use std::fmt;

use crate::TreePath;

/// Errors produced by tree navigation, editing and query parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TreeError {
    /// A [`TreePath`] did not resolve to a node; `depth` is the step at
    /// which resolution failed.
    PathNotFound {
        /// The path that failed to resolve.
        path: TreePath,
        /// Zero-based step index at which the child lookup failed.
        depth: usize,
    },
    /// A textual path could not be parsed.
    InvalidPath {
        /// The offending input.
        input: String,
        /// Human-readable reason.
        reason: String,
    },
    /// A query string could not be parsed.
    InvalidQuery {
        /// The offending input.
        input: String,
        /// Human-readable reason.
        reason: String,
    },
    /// An edit was structurally impossible (e.g. moving a node into its
    /// own subtree, or deleting the root).
    InvalidEdit {
        /// Human-readable reason.
        reason: String,
    },
    /// An insertion index was out of bounds for the target parent.
    IndexOutOfBounds {
        /// Parent node path.
        parent: TreePath,
        /// Requested index.
        index: usize,
        /// Number of children the parent actually has.
        len: usize,
    },
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::PathNotFound { path, depth } => {
                write!(f, "path {path} does not resolve (failed at step {depth})")
            }
            TreeError::InvalidPath { input, reason } => {
                write!(f, "invalid tree path {input:?}: {reason}")
            }
            TreeError::InvalidQuery { input, reason } => {
                write!(f, "invalid node query {input:?}: {reason}")
            }
            TreeError::InvalidEdit { reason } => write!(f, "invalid edit: {reason}"),
            TreeError::IndexOutOfBounds { parent, index, len } => write!(
                f,
                "index {index} out of bounds for parent {parent} with {len} children"
            ),
        }
    }
}

impl std::error::Error for TreeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = TreeError::InvalidEdit {
            reason: "cannot delete root".into(),
        };
        let msg = e.to_string();
        assert!(msg.starts_with("invalid edit"));
        assert!(msg.contains("cannot delete root"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TreeError>();
    }
}
