//! Stable node addressing via child-index paths.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::TreeError;

/// A path from the root of a [`crate::ConfTree`] to one node, expressed
/// as a sequence of child indices.
///
/// The empty path addresses the root itself. Paths render as
/// `/0/3/1` and parse back from that notation:
///
/// ```
/// use conferr_tree::TreePath;
///
/// let p: TreePath = "/0/3/1".parse().unwrap();
/// assert_eq!(p.to_string(), "/0/3/1");
/// assert_eq!(TreePath::root().to_string(), "/");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct TreePath(Vec<usize>);

impl TreePath {
    /// The empty path, addressing the root node.
    pub fn root() -> Self {
        TreePath(Vec::new())
    }

    /// The child indices, from root to target.
    pub fn indices(&self) -> &[usize] {
        &self.0
    }

    /// `true` iff this is the root path.
    pub fn is_root(&self) -> bool {
        self.0.is_empty()
    }

    /// Number of steps (the root path has depth 0).
    pub fn depth(&self) -> usize {
        self.0.len()
    }

    /// Returns the path of this node's `i`-th child.
    #[must_use]
    pub fn child(&self, i: usize) -> TreePath {
        let mut v = self.0.clone();
        v.push(i);
        TreePath(v)
    }

    /// Returns the parent path, or `None` for the root.
    pub fn parent(&self) -> Option<TreePath> {
        if self.0.is_empty() {
            None
        } else {
            Some(TreePath(self.0[..self.0.len() - 1].to_vec()))
        }
    }

    /// The index of this node within its parent, or `None` for the
    /// root.
    pub fn last_index(&self) -> Option<usize> {
        self.0.last().copied()
    }

    /// `true` iff `self` is a strict ancestor of `other`.
    pub fn is_ancestor_of(&self, other: &TreePath) -> bool {
        self.0.len() < other.0.len() && other.0[..self.0.len()] == self.0[..]
    }

    /// Returns a sibling path with the last index replaced by `i`.
    ///
    /// # Panics
    ///
    /// Panics if called on the root path.
    #[must_use]
    pub fn with_last_index(&self, i: usize) -> TreePath {
        assert!(!self.0.is_empty(), "root path has no sibling index");
        let mut v = self.0.clone();
        *v.last_mut().expect("non-empty") = i;
        TreePath(v)
    }
}

impl From<Vec<usize>> for TreePath {
    fn from(v: Vec<usize>) -> Self {
        TreePath(v)
    }
}

impl From<&[usize]> for TreePath {
    fn from(v: &[usize]) -> Self {
        TreePath(v.to_vec())
    }
}

impl fmt::Display for TreePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return f.write_str("/");
        }
        for i in &self.0 {
            write!(f, "/{i}")?;
        }
        Ok(())
    }
}

impl FromStr for TreePath {
    type Err = TreeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s == "/" || s.is_empty() {
            return Ok(TreePath::root());
        }
        let body = s.strip_prefix('/').ok_or_else(|| TreeError::InvalidPath {
            input: s.to_string(),
            reason: "path must start with '/'".to_string(),
        })?;
        let mut v = Vec::new();
        for part in body.split('/') {
            let idx: usize = part.parse().map_err(|_| TreeError::InvalidPath {
                input: s.to_string(),
                reason: format!("invalid index segment {part:?}"),
            })?;
            v.push(idx);
        }
        Ok(TreePath(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_round_trip() {
        for p in [
            TreePath::root(),
            TreePath::from(vec![0]),
            TreePath::from(vec![3, 1, 4]),
        ] {
            let s = p.to_string();
            let back: TreePath = s.parse().unwrap();
            assert_eq!(back, p, "round-trip failed for {s}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("/a/b".parse::<TreePath>().is_err());
        assert!("0/1".parse::<TreePath>().is_err());
        assert!("/1//2".parse::<TreePath>().is_err());
    }

    #[test]
    fn ancestry_is_strict() {
        let a = TreePath::from(vec![0, 1]);
        let b = TreePath::from(vec![0, 1, 2]);
        assert!(a.is_ancestor_of(&b));
        assert!(!b.is_ancestor_of(&a));
        assert!(!a.is_ancestor_of(&a));
        assert!(TreePath::root().is_ancestor_of(&a));
    }

    #[test]
    fn parent_child_inverse() {
        let p = TreePath::from(vec![2, 5]);
        assert_eq!(p.parent().unwrap().child(5), p);
        assert_eq!(p.last_index(), Some(5));
        assert!(TreePath::root().parent().is_none());
    }

    #[test]
    fn with_last_index_replaces_only_tail() {
        let p = TreePath::from(vec![2, 5]);
        assert_eq!(p.with_last_index(7), TreePath::from(vec![2, 7]));
    }
}
