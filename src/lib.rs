//! `conferr-suite` is the umbrella package of the ConfErr reproduction
//! workspace. It exists to host the runnable [examples] and the
//! cross-crate integration tests; the actual functionality lives in the
//! `conferr*` crates re-exported below.
//!
//! The workspace layers form the DAG
//! `tree → {keyboard, formats, model} → {plugins, sut} → core → bench`;
//! see each crate's `# Architecture` section for the paper layer it
//! implements, and `docs/ARCHITECTURE.md` for the full map.
//!
//! [examples]: https://github.com/conferr/conferr-rs/tree/main/examples

pub use conferr;
pub use conferr_formats as formats;
pub use conferr_keyboard as keyboard;
pub use conferr_model as model;
pub use conferr_plugins as plugins;
pub use conferr_sut as sut;
pub use conferr_tree as tree;
