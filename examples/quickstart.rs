//! Quickstart: measure a database's resilience to configuration
//! typos in under a minute.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The campaign parses MySQL's default `my.cnf`, generates every
//! single-edit typo against directive names and values using a real
//! keyboard model, injects each one, and classifies how the server
//! responds — the end-to-end loop of the ConfErr paper's Figure 1.
//!
//! This is the minimal *serial* driver; for large fault loads, swap
//! `Campaign` for `conferr::ParallelCampaign` (see the
//! `structural_matrix` and `dns_semantic` examples) to shard
//! injections across every core with byte-identical results.

use conferr::{Campaign, InjectionResult};
use conferr_keyboard::Keyboard;
use conferr_plugins::{TokenClass, TypoPlugin};
use conferr_sut::MySqlSim;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sut = MySqlSim::new();
    let mut campaign = Campaign::new(&mut sut)?;
    campaign.add_generator(Box::new(TypoPlugin::new(
        Keyboard::qwerty_us(),
        TokenClass::DirectiveNames,
    )));
    campaign.add_generator(Box::new(TypoPlugin::new(
        Keyboard::qwerty_us(),
        TokenClass::DirectiveValues,
    )));

    let profile = campaign.run()?;
    println!("{profile}");

    // The interesting rows: mistakes the server silently absorbed.
    println!("example silently-absorbed mistakes:");
    for outcome in profile.undetected().take(8) {
        println!("  - {} ({})", outcome.description, outcome.class);
        for line in outcome.diff.iter() {
            println!("      {line}");
        }
    }

    // And the ones an administrator would only discover in production.
    let latent = profile
        .outcomes()
        .iter()
        .filter(|o| {
            matches!(o.result, InjectionResult::Undetected { .. }) && o.id.contains("mysqldump")
        })
        .count();
    println!();
    println!(
        "{latent} mistakes in the [mysqldump] tool section were absorbed at startup — they \
         would only surface when the nightly backup cron job runs (paper §5.2's latent-error \
         design flaw)"
    );
    Ok(())
}
