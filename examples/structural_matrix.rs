//! Which semantically neutral configuration variations does each
//! system accept? (paper §5.3, Table 2)
//!
//! ```text
//! cargo run --example structural_matrix
//! ```
//!
//! For each variation class — reordering, whitespace, case changes,
//! truncated names — ten seeded variant configurations are generated;
//! a system "supports" the class when it accepts all ten. The matrix
//! shows which administrator mental-model variations each system
//! tolerates.

use conferr::{sut_factory, CampaignBatch, CampaignExecutor, ExecutorCampaign, InjectionResult};
use conferr_model::IntoFaultSource;
use conferr_plugins::{VariationClass, VariationPlugin};
use conferr_sut::{ApacheSim, MySqlSim, PostgresSim};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Every (class, system) cell is a tiny campaign — exactly the
    // many-small-campaign workload the persistent executor exists
    // for. All applicable cells go into ONE batch: a single
    // campaign-tagged fault queue, workers stealing across systems,
    // each system's engine shared by its five cells. Cells are pushed
    // as lazy *sources*, so each cell's variants are generated only
    // when the queue reaches it — generation overlaps injection.
    let executor = CampaignExecutor::with_default_threads();
    let systems = [
        ("MySQL", ExecutorCampaign::new(sut_factory(MySqlSim::new))?),
        (
            "Postgres",
            ExecutorCampaign::new(sut_factory(PostgresSim::new))?,
        ),
        (
            "Apache",
            ExecutorCampaign::new(sut_factory(ApacheSim::new))?,
        ),
    ];

    let mut batch = CampaignBatch::new();
    let mut cells: Vec<Vec<Option<usize>>> = Vec::new(); // batch index per cell
    let mut scheduled = 0;
    for class in VariationClass::ALL {
        let mut row = Vec::new();
        for (name, campaign) in &systems {
            // The paper reports Apache's section order as n/a:
            // container order has defined semantics there (first
            // VirtualHost wins).
            if *name == "Apache" && class == VariationClass::SectionOrder {
                row.push(None);
                continue;
            }
            // Every applicable cell is pushed lazily; classes that
            // turn out to generate no variants come back as empty
            // profiles and render as n/a below — no eager probe.
            let plugin = VariationPlugin::new(class, 10, 1912);
            batch.push_source(campaign, Box::new(plugin.into_source(campaign.baseline())));
            row.push(Some(scheduled));
            scheduled += 1;
        }
        cells.push(row);
    }
    let profiles = executor.run_batch(batch)?;

    println!(
        "{:<28} {:<8} {:<8} {:<8}",
        "variation class", "MySQL", "Postgres", "Apache"
    );
    println!("{}", "-".repeat(56));
    for (class, row) in VariationClass::ALL.iter().zip(cells) {
        let verdicts: Vec<String> = row
            .into_iter()
            .map(|cell| match cell {
                None => "n/a".to_string(),
                Some(idx) if profiles[idx].is_empty() => "n/a".to_string(),
                Some(idx) => {
                    let rejected = profiles[idx]
                        .outcomes()
                        .iter()
                        .filter(|o| !matches!(o.result, InjectionResult::Undetected { .. }))
                        .count();
                    if rejected == 0 {
                        "Yes".to_string()
                    } else {
                        format!("No ({rejected}/10 rejected)")
                    }
                }
            })
            .collect();
        println!(
            "{:<28} {:<8} {:<8} {:<8}",
            class.label(),
            verdicts[0],
            verdicts[1],
            verdicts[2],
        );
    }
    println!();
    println!(
        "an ideal system would accept every neutral variation; none of the three does\n\
         (paper §5.3: \"we do believe that all three systems should offer the flexibility\n\
         of all mutations\")"
    );
    Ok(())
}
