//! Which semantically neutral configuration variations does each
//! system accept? (paper §5.3, Table 2)
//!
//! ```text
//! cargo run --example structural_matrix
//! ```
//!
//! For each variation class — reordering, whitespace, case changes,
//! truncated names — ten seeded variant configurations are generated;
//! a system "supports" the class when it accepts all ten. The matrix
//! shows which administrator mental-model variations each system
//! tolerates.

use conferr::{sut_factory, InjectionResult, ParallelCampaign};
use conferr_model::ErrorGenerator;
use conferr_plugins::{VariationClass, VariationPlugin};
use conferr_sut::{ApacheSim, MySqlSim, PostgresSim, SystemUnderTest};

fn verdict<F>(make_sut: F, class: VariationClass) -> Result<String, Box<dyn std::error::Error>>
where
    F: Fn() -> Box<dyn SystemUnderTest> + Sync,
{
    // Each class's ten variant files inject independently, so the
    // parallel driver shards them across every available core.
    let campaign = ParallelCampaign::new(make_sut)?;
    let plugin = VariationPlugin::new(class, 10, 1912);
    let faults = plugin.generate(campaign.baseline())?;
    if faults.is_empty() {
        return Ok("n/a".to_string());
    }
    let profile = campaign.run_faults(faults)?;
    let rejected = profile
        .outcomes()
        .iter()
        .filter(|o| !matches!(o.result, InjectionResult::Undetected { .. }))
        .count();
    Ok(if rejected == 0 {
        "Yes".to_string()
    } else {
        format!("No ({rejected}/10 rejected)")
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<28} {:<8} {:<8} {:<8}",
        "variation class", "MySQL", "Postgres", "Apache"
    );
    println!("{}", "-".repeat(56));
    for class in VariationClass::ALL {
        // The paper reports Apache's section order as n/a: container
        // order has defined semantics there (first VirtualHost wins).
        let apache_cell = if class == VariationClass::SectionOrder {
            "n/a".to_string()
        } else {
            verdict(sut_factory(ApacheSim::new), class)?
        };
        println!(
            "{:<28} {:<8} {:<8} {:<8}",
            class.label(),
            verdict(sut_factory(MySqlSim::new), class)?,
            verdict(sut_factory(PostgresSim::new), class)?,
            apache_cell,
        );
    }
    println!();
    println!(
        "an ideal system would accept every neutral variation; none of the three does\n\
         (paper §5.3: \"we do believe that all three systems should offer the flexibility\n\
         of all mutations\")"
    );
    Ok(())
}
