//! Comparing two functionally equivalent systems (paper §5.5).
//!
//! ```text
//! cargo run --example compare_databases
//! ```
//!
//! Runs the configuration-process benchmark: for every directive of a
//! full-coverage configuration, inject seeded value typos and measure
//! the fraction each database detects, then bin the per-directive
//! rates into the paper's Poor/Fair/Good/Excellent bands (Figure 3).

use conferr::report::stacked_bar;
use conferr::{parallel_value_typo_resilience, sut_factory, CampaignExecutor};
use conferr_keyboard::Keyboard;
use conferr_model::TypoKind;
use conferr_plugins::typos_of_kind;
use conferr_sut::{ConfigPayload, FileText, MySqlSim, PostgresSim};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let keyboard = Keyboard::qwerty_us();
    let mutator = move |value: &str| {
        let mut out = Vec::new();
        for kind in [
            TypoKind::Omission,
            TypoKind::Insertion,
            TypoKind::Substitution,
            TypoKind::CaseAlteration,
            TypoKind::Transposition,
        ] {
            out.extend(typos_of_kind(&keyboard, kind, value));
        }
        out
    };

    // Ten experiments per directive keeps the example fast; the paper
    // (and the fig3 bench binary) use twenty.
    let experiments = 10;
    let seed = 1912;

    // The batched runner parses each full-coverage configuration into
    // one shared engine, schedules every directive as a batch entry on
    // the persistent executor (one worker and one cached SUT instance
    // per core), and merges outcomes per directive; per-directive
    // seeding makes the numbers identical to the serial
    // `value_typo_resilience`. The MySQL comparison reuses the worker
    // pool the Postgres one warmed up.
    let executor = CampaignExecutor::with_default_threads();

    let postgres = {
        let mut configs = ConfigPayload::new();
        configs.insert(
            "postgresql.conf",
            FileText::mutated(PostgresSim::full_coverage_config()),
        );
        parallel_value_typo_resilience(
            sut_factory(PostgresSim::new),
            &configs,
            &mutator,
            experiments,
            seed,
            &PostgresSim::boolean_directive_names(),
            &executor,
        )?
    };
    let mysql = {
        let mut configs = ConfigPayload::new();
        configs.insert(
            "my.cnf",
            FileText::mutated(MySqlSim::full_coverage_config()),
        );
        parallel_value_typo_resilience(
            sut_factory(MySqlSim::new),
            &configs,
            &mutator,
            experiments,
            seed,
            &MySqlSim::boolean_directive_names(),
            &executor,
        )?
    };

    println!("value-typo resilience, {experiments} experiments per directive:\n");
    for system in [&postgres, &mysql] {
        let p = system.band_percentages();
        println!(
            "{:<14} mean {:>5.1}%  {}",
            system.system,
            system.mean_detection_pct(),
            stacked_bar(&[('E', p[3]), ('G', p[2]), ('F', p[1]), ('P', p[0])], 40),
        );
    }
    println!("\n(E)xcellent 75-100%  (G)ood 50-75%  (F)air 25-50%  (P)oor 0-25%\n");

    let winner = if postgres.mean_detection_pct() > mysql.mean_detection_pct() {
        "Postgres"
    } else {
        "MySQL"
    };
    println!(
        "{winner} is markedly more robust to configuration typos — the paper's §5.5 \
         conclusion, driven by strict value parsing plus cross-directive constraint checks."
    );

    // Show a couple of the directives behind each verdict.
    println!("\nstrongest and weakest directives per system:");
    for system in [&postgres, &mysql] {
        let mut sorted = system.directives.clone();
        sorted.sort_by(|a, b| {
            a.detection_pct()
                .partial_cmp(&b.detection_pct())
                .expect("rates are finite")
        });
        if let (Some(worst), Some(best)) = (sorted.first(), sorted.last()) {
            println!(
                "  {:<14} best: {} ({:.0}%), worst: {} ({:.0}%)",
                system.system,
                best.directive,
                best.detection_pct(),
                worst.directive,
                worst.detection_pct()
            );
        }
    }
    Ok(())
}
