//! Semantic DNS error injection against BIND and djbdns (paper §5.4).
//!
//! ```text
//! cargo run --example dns_semantic
//! ```
//!
//! Generates RFC-1912 misconfigurations on the abstract DNS record
//! set and maps them back through each server's configuration format.
//! The output shows all three possible fates: faults BIND's zone
//! loader catches, faults that load silently, and faults that djbdns'
//! combined `=` directive makes *impossible to write down*.

use conferr::{sut_factory, InjectionResult, ParallelCampaign};
use conferr_model::ErrorGenerator;
use conferr_plugins::{DnsFaultKind, DnsSemanticPlugin};
use conferr_sut::{BindSim, DjbdnsSim, SystemUnderTest};

fn run<F>(
    name: &str,
    make_sut: F,
    plugin: DnsSemanticPlugin,
) -> Result<(), Box<dyn std::error::Error>>
where
    F: Fn() -> Box<dyn SystemUnderTest> + Sync,
{
    // One worker (and one simulated name server) per core; outcomes
    // come back in fault order, identical to a serial campaign.
    let campaign = ParallelCampaign::new(make_sut)?;
    let faults = plugin.generate(campaign.baseline())?;
    let profile = campaign.run_faults(faults)?;
    println!("=== {name} ===");
    for outcome in profile.outcomes() {
        let verdict = match &outcome.result {
            InjectionResult::DetectedAtStartup { diagnostic } => {
                format!("DETECTED at zone load: {diagnostic}")
            }
            InjectionResult::DetectedByFunctionalTest { test, .. } => {
                format!("DETECTED by {test}")
            }
            InjectionResult::Undetected { .. } => "loaded silently (NOT detected)".to_string(),
            InjectionResult::Inexpressible { reason } => {
                format!("INEXPRESSIBLE in this format: {reason}")
            }
            InjectionResult::Skipped { reason } => format!("skipped: {reason}"),
        };
        println!("  {:<46} -> {verdict}", outcome.description);
    }
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The four Table 3 rows plus the extended RFC-1912 error set.
    let kinds = DnsFaultKind::ALL;

    run(
        "BIND (zone files)",
        sut_factory(BindSim::new),
        DnsSemanticPlugin::bind().with_kinds(kinds),
    )?;

    run(
        "djbdns (tinydns-data)",
        sut_factory(DjbdnsSim::new),
        DnsSemanticPlugin::tinydns().with_kinds(kinds),
    )?;

    println!(
        "note the asymmetry the paper highlights: BIND *detects* the alias-consistency\n\
         errors (3, 4) but accepts broken reverse mappings (1, 2); djbdns' combined A+PTR\n\
         directive makes errors (1, 2) unwritable, yet it performs no consistency checks,\n\
         so errors (3, 4) load without complaint."
    );
    Ok(())
}
