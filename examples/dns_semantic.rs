//! Semantic DNS error injection against BIND and djbdns (paper §5.4).
//!
//! ```text
//! cargo run --example dns_semantic
//! ```
//!
//! Generates RFC-1912 misconfigurations on the abstract DNS record
//! set and maps them back through each server's configuration format.
//! The output shows all three possible fates: faults BIND's zone
//! loader catches, faults that load silently, and faults that djbdns'
//! combined `=` directive makes *impossible to write down*.

use conferr::{sut_factory, CampaignBatch, CampaignExecutor, ExecutorCampaign, InjectionResult};
use conferr_model::ErrorGenerator;
use conferr_plugins::{DnsFaultKind, DnsSemanticPlugin};
use conferr_sut::{BindSim, DjbdnsSim};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The four Table 3 rows plus the extended RFC-1912 error set.
    let kinds = DnsFaultKind::ALL;

    // Both name servers' fault loads go into one batch on a shared
    // executor: workers steal across systems off a single
    // campaign-tagged queue, and outcomes come back per campaign in
    // fault order — identical to two serial campaigns.
    let executor = CampaignExecutor::with_default_threads();
    let mut batch = CampaignBatch::new();
    let mut names = Vec::new();
    for (name, factory, plugin) in [
        (
            "BIND (zone files)",
            sut_factory(BindSim::new),
            DnsSemanticPlugin::bind().with_kinds(kinds),
        ),
        (
            "djbdns (tinydns-data)",
            sut_factory(DjbdnsSim::new),
            DnsSemanticPlugin::tinydns().with_kinds(kinds),
        ),
    ] {
        let campaign = ExecutorCampaign::new(factory)?;
        let faults = plugin.generate(campaign.baseline())?;
        batch.push(&campaign, faults);
        names.push(name);
    }
    let profiles = executor.run_batch(batch)?;

    for (name, profile) in names.into_iter().zip(&profiles) {
        println!("=== {name} ===");
        for outcome in profile.outcomes() {
            let verdict = match &outcome.result {
                InjectionResult::DetectedAtStartup { diagnostic } => {
                    format!("DETECTED at zone load: {diagnostic}")
                }
                InjectionResult::DetectedByFunctionalTest { test, .. } => {
                    format!("DETECTED by {test}")
                }
                InjectionResult::Undetected { .. } => "loaded silently (NOT detected)".to_string(),
                InjectionResult::Inexpressible { reason } => {
                    format!("INEXPRESSIBLE in this format: {reason}")
                }
                InjectionResult::Skipped { reason } => format!("skipped: {reason}"),
                InjectionResult::TimedOut { phase, budget_ms } => {
                    format!("TIMED OUT: {phase} exceeded {budget_ms} ms")
                }
                InjectionResult::HarnessFailure { panic_msg } => {
                    format!("HARNESS FAILURE: {panic_msg}")
                }
            };
            println!("  {:<46} -> {verdict}", outcome.description);
        }
        println!();
    }

    println!(
        "note the asymmetry the paper highlights: BIND *detects* the alias-consistency\n\
         errors (3, 4) but accepts broken reverse mappings (1, 2); djbdns' combined A+PTR\n\
         directive makes errors (1, 2) unwritable, yet it performs no consistency checks,\n\
         so errors (3, 4) load without complaint."
    );
    Ok(())
}
