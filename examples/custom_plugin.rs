//! Extending ConfErr with a custom error-generator plugin (paper §3:
//! "ConfErr can be extended with new error models ... as needed").
//!
//! ```text
//! cargo run --example custom_plugin
//! ```
//!
//! The custom model here is *value swapping*: an administrator editing
//! two related directives in one sitting pastes each value into the
//! other's slot (a classic copy-paste slip the built-in plugins do not
//! model). The plugin enumerates every directive pair within a
//! section and emits one two-edit scenario per pair.
//!
//! The second half of the example shows the same plugin on the
//! *streaming* pipeline: the plugin becomes a lazy `FaultSource`
//! (generation deferred to first pull), a seeded `sample` thins the
//! load, and a `CsvSink` receives each outcome as it completes — the
//! bounded-memory shape a custom plugin with a huge fault space
//! should use.

use conferr::{Campaign, CsvSink};
use conferr_model::{
    ConfigSet, ErrorClass, ErrorGenerator, FaultScenario, FaultSourceExt, GenerateError,
    GeneratedFault, IntoFaultSource, StructuralKind, TreeEdit,
};
use conferr_sut::PostgresSim;
use conferr_tree::NodeQuery;

/// The custom plugin: swaps the values of two directives that live in
/// the same parent node.
#[derive(Debug)]
struct ValueSwapPlugin;

impl ErrorGenerator for ValueSwapPlugin {
    fn name(&self) -> &str {
        "value-swap"
    }

    fn generate(&self, set: &ConfigSet) -> Result<Vec<GeneratedFault>, GenerateError> {
        let query: NodeQuery = "//directive"
            .parse()
            .map_err(|e| GenerateError::new("value-swap", format!("bad query: {e}")))?;
        let mut out = Vec::new();
        for (file, tree) in set.iter() {
            let directives: Vec<_> = query
                .select_nodes(tree)
                .into_iter()
                .filter(|(_, n)| n.text().is_some_and(|t| !t.is_empty()))
                .collect();
            for i in 0..directives.len() {
                for j in (i + 1)..directives.len() {
                    let (pa, na) = &directives[i];
                    let (pb, nb) = &directives[j];
                    // Same parent = "edited in one sitting".
                    if pa.parent() != pb.parent() {
                        continue;
                    }
                    let (va, vb) = (na.text().unwrap_or(""), nb.text().unwrap_or(""));
                    if va == vb {
                        continue;
                    }
                    out.push(GeneratedFault::Scenario(FaultScenario {
                        id: format!("swap-values:{file}:{pa}<->{pb}"),
                        description: format!(
                            "swap the values of {} and {}",
                            na.attr("name").unwrap_or("?"),
                            nb.attr("name").unwrap_or("?")
                        ),
                        class: ErrorClass::Structural(StructuralKind::Misplacement),
                        edits: vec![
                            TreeEdit::SetText {
                                file: file.to_string(),
                                path: pa.clone(),
                                text: Some(vb.to_string()),
                            },
                            TreeEdit::SetText {
                                file: file.to_string(),
                                path: pb.clone(),
                                text: Some(va.to_string()),
                            },
                        ],
                    }));
                }
            }
        }
        Ok(out)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sut = PostgresSim::new();
    let mut campaign = Campaign::new(&mut sut)?;
    campaign.add_generator(Box::new(ValueSwapPlugin));
    let profile = campaign.run()?;

    println!("{profile}");
    println!("sample outcomes:");
    for outcome in profile.outcomes().iter().take(10) {
        println!(
            "  {:<58} -> {}",
            outcome.description,
            outcome.result.label()
        );
    }
    println!();
    println!(
        "swapping max_fsm_pages with max_fsm_relations violates Postgres' cross-directive\n\
         constraint and is caught; swapping two unconstrained values is absorbed silently —\n\
         exactly the class of inconsistency error the paper's §2.3 semantic model describes."
    );

    // The streaming shape of the same campaign: the plugin's
    // generation is deferred to the first chunk pull, a seeded 40%
    // sample thins the pair space without materializing it, and each
    // outcome streams into a CSV sink as it completes — memory stays
    // O(chunk) however many pairs the plugin can enumerate.
    let mut source = ValueSwapPlugin
        .into_source(campaign.baseline())
        .sample(1912, 0.4);
    let mut sink = CsvSink::new("postgres-sim", Vec::new());
    campaign.run_source(&mut source, &mut sink)?;
    let csv = String::from_utf8(sink.finish()?)?;
    println!();
    println!(
        "streamed a sampled subset into CSV ({} rows); first lines:",
        csv.lines().count().saturating_sub(1)
    );
    for line in csv.lines().take(4) {
        println!("  {line}");
    }
    Ok(())
}
