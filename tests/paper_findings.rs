//! Every qualitative finding of the paper's §5.2–§5.4 case studies,
//! reproduced as an end-to-end injection through the public API: the
//! fault is injected via a campaign (not by poking the simulator), and
//! the classified outcome must match what the paper reported.

use conferr::{Campaign, InjectionResult};
use conferr_model::{ConfigSet, ErrorClass, FaultScenario, GeneratedFault, TreeEdit, TypoKind};
use conferr_sut::{ApacheSim, ConfigPayload, Deadline, MySqlSim, PostgresSim, SystemUnderTest};
use conferr_tree::{NodeQuery, TreePath};

/// Builds a one-scenario fault load that rewrites the value of the
/// named directive.
fn set_value_fault(set: &ConfigSet, directive: &str, new_value: &str) -> Vec<GeneratedFault> {
    let query: NodeQuery = format!("//directive[@name='{directive}']")
        .parse()
        .expect("valid query");
    for (file, tree) in set.iter() {
        if let Some(path) = query.select(tree).first() {
            return vec![GeneratedFault::Scenario(FaultScenario {
                id: format!("finding:{directive}"),
                description: format!("set {directive} = {new_value}"),
                class: ErrorClass::Typo(TypoKind::Substitution),
                edits: vec![TreeEdit::SetText {
                    file: file.to_string(),
                    path: path.clone(),
                    text: Some(new_value.to_string()),
                }],
            })];
        }
    }
    panic!("directive {directive} not found in default configuration");
}

fn inject_value(sut: &mut dyn SystemUnderTest, directive: &str, value: &str) -> InjectionResult {
    let mut campaign = Campaign::new(sut).expect("campaign");
    let faults = set_value_fault(campaign.baseline(), directive, value);
    let profile = campaign.run_faults(faults).expect("run");
    profile.outcomes()[0].result.clone()
}

// ---------------------------------------------------------------------------
// MySQL findings (§5.2)
// ---------------------------------------------------------------------------

#[test]
fn mysql_accepts_out_of_bounds_value_silently() {
    // "key_buffer_size=1 is accepted and ignored, although the value
    // has to be at least 8 [KiB]".
    let mut sut = MySqlSim::new();
    let result = inject_value(&mut sut, "key_buffer_size", "1");
    assert!(
        matches!(result, InjectionResult::Undetected { .. }),
        "out-of-bounds size must be silently absorbed: {result}"
    );
}

#[test]
fn mysql_accepts_one_m_zero() {
    // "a value like '1M0' is accepted as valid, whereas it is clearly
    // an unintended value (the operator likely meant '10M')".
    let mut sut = MySqlSim::new();
    let result = inject_value(&mut sut, "max_allowed_packet", "1M0");
    assert!(
        matches!(result, InjectionResult::Undetected { .. }),
        "1M0 must be accepted: {result}"
    );
}

#[test]
fn mysql_silently_ignores_suffix_leading_values() {
    // "Numeric values that start with one of the mentioned suffixes
    // (and are thus invalid) are also silently ignored."
    let mut sut = MySqlSim::new();
    let result = inject_value(&mut sut, "sort_buffer_size", "K512");
    assert!(
        matches!(result, InjectionResult::Undetected { .. }),
        "suffix-leading value must be silently absorbed: {result}"
    );
}

#[test]
fn mysql_accepts_valueless_directives() {
    // "Directives specified without a value are also accepted and
    // replaced with defaults by MySQL."
    let mut sut = MySqlSim::new();
    let result = inject_value(&mut sut, "table_open_cache", "");
    assert!(
        matches!(result, InjectionResult::Undetected { .. }),
        "valueless directive must be absorbed: {result}"
    );
}

#[test]
fn mysql_tool_section_errors_stay_latent_until_the_tool_runs() {
    // "if an administrator inadvertently inserts an error in one of
    // the other sections, it will become apparent at the earliest on
    // the next run of the corresponding tool."
    let mut sut = MySqlSim::new();
    let mut campaign = Campaign::new(&mut sut).expect("campaign");
    // Typo the name of a [mysqldump] directive.
    let query: NodeQuery = "//section[@name='mysqldump']/directive[@name='quick']"
        .parse()
        .expect("query");
    let tree = campaign.baseline().get("my.cnf").expect("my.cnf");
    let path = query
        .select(tree)
        .into_iter()
        .next()
        .expect("quick directive");
    let faults = vec![GeneratedFault::Scenario(FaultScenario {
        id: "latent".into(),
        description: "typo in [mysqldump] quick".into(),
        class: ErrorClass::Typo(TypoKind::Transposition),
        edits: vec![TreeEdit::SetAttr {
            file: "my.cnf".into(),
            path,
            key: "name".into(),
            value: "qiuck".into(),
        }],
    })];
    let profile = campaign.run_faults(faults).expect("run");
    // The daemon starts and the admin smoke test passes.
    assert!(
        matches!(
            profile.outcomes()[0].result,
            InjectionResult::Undetected { .. }
        ),
        "{:?}",
        profile.outcomes()[0].result
    );
    drop(campaign);
    // But the backup tool, run later, trips over it.
    let configs = conferr_sut::default_configs(&sut);
    let mut broken = configs.clone();
    *broken.get_mut("my.cnf").expect("my.cnf") = broken["my.cnf"].replace("quick", "qiuck");
    assert!(sut
        .start(&ConfigPayload::from_texts(&broken), &Deadline::unlimited())
        .is_running());
    let tool = sut.run_test("mysqldump-tool", &Deadline::unlimited());
    assert!(!tool.passed(), "the tool must surface the latent error");
}

// ---------------------------------------------------------------------------
// Apache findings (§5.2)
// ---------------------------------------------------------------------------

#[test]
fn apache_accepts_freeform_mime_types() {
    // "directives related to MIME types (AddType and DefaultType)
    // should take values in the format type/subtype ... Apache,
    // however, accepts freeform strings instead."
    let mut sut = ApacheSim::new();
    let result = inject_value(&mut sut, "DefaultType", "textplain");
    assert!(
        matches!(result, InjectionResult::Undetected { .. }),
        "freeform MIME type must be accepted: {result}"
    );
}

#[test]
fn apache_accepts_freeform_server_admin() {
    // "according to the manual, [ServerAdmin] should take a URL or an
    // email address; ... freeform strings are readily accepted here."
    let mut sut = ApacheSim::new();
    let result = inject_value(&mut sut, "ServerAdmin", "not an email at all");
    assert!(
        matches!(result, InjectionResult::Undetected { .. }),
        "{result}"
    );
}

#[test]
fn apache_accepts_freeform_server_name() {
    // "ServerName should only accept DNS host names, but instead
    // accepts anything."
    let mut sut = ApacheSim::new();
    let result = inject_value(&mut sut, "ServerName", "definitely not a hostname!");
    assert!(
        matches!(result, InjectionResult::Undetected { .. }),
        "{result}"
    );
}

#[test]
fn apache_listen_port_typo_caught_only_by_functional_test() {
    // "typos in listening ports ... is why 5% of Apache errors were
    // caught by functional tests."
    let mut sut = ApacheSim::new();
    let result = inject_value(&mut sut, "Listen", "81");
    assert!(
        matches!(result, InjectionResult::DetectedByFunctionalTest { .. }),
        "valid-but-wrong port must slip past startup: {result}"
    );
}

// ---------------------------------------------------------------------------
// Postgres findings (§5.2)
// ---------------------------------------------------------------------------

#[test]
fn postgres_enforces_fsm_cross_directive_constraint() {
    // "a typo injected in the max_fsm_pages directive (replacing
    // 153600 with 15600) caused Postgres to immediately shutdown with
    // an error message explaining that max_fsm_pages must be at least
    // 16 × max_fsm_relations."
    let mut sut = PostgresSim::new();
    let result = inject_value(&mut sut, "max_fsm_pages", "15600");
    match result {
        InjectionResult::DetectedAtStartup { diagnostic } => {
            assert!(
                diagnostic.contains("16 * max_fsm_relations"),
                "the diagnostic must explain the constraint: {diagnostic}"
            );
        }
        other => panic!("constraint violation must stop startup: {other}"),
    }
}

#[test]
fn postgres_rejects_unknown_parameters_fatally() {
    let mut sut = PostgresSim::new();
    let mut campaign = Campaign::new(&mut sut).expect("campaign");
    let tree = campaign.baseline().get("postgresql.conf").expect("conf");
    let query: NodeQuery = "//directive[@name='port']".parse().expect("query");
    let path: TreePath = query.select(tree).into_iter().next().expect("port");
    let faults = vec![GeneratedFault::Scenario(FaultScenario {
        id: "unknown".into(),
        description: "typo in parameter name".into(),
        class: ErrorClass::Typo(TypoKind::Insertion),
        edits: vec![TreeEdit::SetAttr {
            file: "postgresql.conf".into(),
            path,
            key: "name".into(),
            value: "porrt".into(),
        }],
    })];
    let profile = campaign.run_faults(faults).expect("run");
    assert!(
        matches!(
            profile.outcomes()[0].result,
            InjectionResult::DetectedAtStartup { .. }
        ),
        "{:?}",
        profile.outcomes()[0].result
    );
}

#[test]
fn databases_detect_boolean_typos() {
    // §5.5: "neither Postgres nor MySQL accept typos in directives
    // with boolean values" — the reason booleans are excluded from the
    // comparison benchmark.
    let mut pg = PostgresSim::new();
    let mut configs = conferr_sut::default_configs(&pg);
    configs
        .get_mut("postgresql.conf")
        .expect("conf")
        .push_str("autovacuum = onn\n");
    assert!(!pg
        .start(&ConfigPayload::from_texts(&configs), &Deadline::unlimited())
        .is_running());

    let mut my = MySqlSim::new();
    let mut configs = conferr_sut::default_configs(&my);
    *configs.get_mut("my.cnf").expect("cnf") =
        configs["my.cnf"].replace("skip-external-locking", "skip-external-locking=VES");
    assert!(!my
        .start(&ConfigPayload::from_texts(&configs), &Deadline::unlimited())
        .is_running());
}
