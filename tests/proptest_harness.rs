//! Cross-crate property tests: arbitrary injections must never break
//! the pipeline's invariants.

use conferr::{Campaign, InjectionResult};
use conferr_model::{ErrorClass, FaultScenario, GeneratedFault, TreeEdit, TypoKind};
use conferr_sut::{MySqlSim, PostgresSim};
use conferr_tree::NodeQuery;
use proptest::prelude::*;

/// Arbitrary printable-ASCII value strings, including empty and
/// whitespace-bearing ones.
fn arb_value() -> impl Strategy<Value = String> {
    "[ -~]{0,24}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever value string lands in a Postgres directive, the
    /// campaign must classify it without panicking, and the outcome
    /// is never "skipped" (the scenario always applies).
    #[test]
    fn postgres_classifies_arbitrary_values(value in arb_value(), idx in 0usize..8) {
        let mut sut = PostgresSim::new();
        let mut campaign = Campaign::new(&mut sut).unwrap();
        let query: NodeQuery = "//directive".parse().unwrap();
        let tree = campaign.baseline().get("postgresql.conf").unwrap();
        let paths = query.select(tree);
        let path = paths[idx % paths.len()].clone();
        let faults = vec![GeneratedFault::Scenario(FaultScenario {
            id: "prop".into(),
            description: "arbitrary value".into(),
            class: ErrorClass::Typo(TypoKind::Substitution),
            edits: vec![TreeEdit::SetText {
                file: "postgresql.conf".into(),
                path,
                text: Some(value),
            }],
        })];
        let profile = campaign.run_faults(faults).unwrap();
        prop_assert_eq!(profile.len(), 1);
        let skipped = matches!(
            profile.outcomes()[0].result,
            InjectionResult::Skipped { .. }
        );
        prop_assert!(!skipped);
    }

    /// Same for MySQL, whose leniency must never turn into a crash,
    /// and whose silently-absorbed values must leave the server in a
    /// startable state.
    #[test]
    fn mysql_classifies_arbitrary_values(value in arb_value(), idx in 0usize..8) {
        let mut sut = MySqlSim::new();
        let mut campaign = Campaign::new(&mut sut).unwrap();
        let query: NodeQuery = "//section[@name='mysqld']/directive".parse().unwrap();
        let tree = campaign.baseline().get("my.cnf").unwrap();
        let paths = query.select(tree);
        let path = paths[idx % paths.len()].clone();
        let faults = vec![GeneratedFault::Scenario(FaultScenario {
            id: "prop".into(),
            description: "arbitrary value".into(),
            class: ErrorClass::Typo(TypoKind::Substitution),
            edits: vec![TreeEdit::SetText {
                file: "my.cnf".into(),
                path,
                text: Some(value),
            }],
        })];
        let profile = campaign.run_faults(faults).unwrap();
        prop_assert_eq!(profile.len(), 1);
    }

    /// Arbitrary *name* corruption is always either detected at
    /// startup or absorbed — never a functional-test surprise for
    /// Postgres (names are checked before the server comes up).
    #[test]
    fn postgres_name_corruption_never_reaches_functional_tests(
        name in "[a-zA-Z_]{1,20}",
    ) {
        let mut sut = PostgresSim::new();
        let mut campaign = Campaign::new(&mut sut).unwrap();
        let query: NodeQuery = "//directive[@name='port']".parse().unwrap();
        let tree = campaign.baseline().get("postgresql.conf").unwrap();
        let path = query.select(tree).into_iter().next().unwrap();
        let faults = vec![GeneratedFault::Scenario(FaultScenario {
            id: "prop-name".into(),
            description: "arbitrary name".into(),
            class: ErrorClass::Typo(TypoKind::Substitution),
            edits: vec![TreeEdit::SetAttr {
                file: "postgresql.conf".into(),
                path,
                key: "name".into(),
                value: name,
            }],
        })];
        let profile = campaign.run_faults(faults).unwrap();
        let functional = matches!(
            profile.outcomes()[0].result,
            InjectionResult::DetectedByFunctionalTest { .. }
        );
        prop_assert!(!functional);
    }
}
