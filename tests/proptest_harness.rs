//! Cross-crate property tests: arbitrary injections must never break
//! the pipeline's invariants.

use std::sync::OnceLock;

use conferr::{
    profile_to_json, sut_factory, Campaign, CampaignExecutor, CollectingSink, ExecutorCampaign,
    InjectionResult,
};
use conferr_keyboard::Keyboard;
use conferr_model::{
    EagerSource, ErrorClass, ErrorGenerator, FaultScenario, GeneratedFault, TreeEdit, TypoKind,
};
use conferr_plugins::{TokenClass, TypoPlugin};
use conferr_sut::{MySqlSim, PostgresSim};
use conferr_tree::NodeQuery;
use proptest::prelude::*;

/// Arbitrary printable-ASCII value strings, including empty and
/// whitespace-bearing ones.
fn arb_value() -> impl Strategy<Value = String> {
    "[ -~]{0,24}"
}

/// A small shared workload for the scheduler properties: one
/// Postgres campaign, a modest typo load, and its serial reference
/// profile — built once, reused by every proptest case.
struct SchedulerFixture {
    campaign: ExecutorCampaign,
    faults: Vec<GeneratedFault>,
    reference: String,
}

fn scheduler_fixture() -> &'static SchedulerFixture {
    static FIXTURE: OnceLock<SchedulerFixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let campaign = ExecutorCampaign::new(sut_factory(PostgresSim::new)).expect("campaign");
        let plugin = TypoPlugin::new(Keyboard::qwerty_us(), TokenClass::DirectiveNames)
            .with_kinds([TypoKind::Omission, TypoKind::Transposition]);
        let faults: Vec<GeneratedFault> = plugin
            .generate(campaign.baseline())
            .expect("generate")
            .into_iter()
            .take(48)
            .collect();
        let reference = {
            let mut sut = PostgresSim::new();
            let mut serial = Campaign::new(&mut sut).expect("campaign");
            profile_to_json(&serial.run_faults(faults.clone()).expect("serial run"))
        };
        SchedulerFixture {
            campaign,
            faults,
            reference,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever value string lands in a Postgres directive, the
    /// campaign must classify it without panicking, and the outcome
    /// is never "skipped" (the scenario always applies).
    #[test]
    fn postgres_classifies_arbitrary_values(value in arb_value(), idx in 0usize..8) {
        let mut sut = PostgresSim::new();
        let mut campaign = Campaign::new(&mut sut).unwrap();
        let query: NodeQuery = "//directive".parse().unwrap();
        let tree = campaign.baseline().get("postgresql.conf").unwrap();
        let paths = query.select(tree);
        let path = paths[idx % paths.len()].clone();
        let faults = vec![GeneratedFault::Scenario(FaultScenario {
            id: "prop".into(),
            description: "arbitrary value".into(),
            class: ErrorClass::Typo(TypoKind::Substitution),
            edits: vec![TreeEdit::SetText {
                file: "postgresql.conf".into(),
                path,
                text: Some(value),
            }],
        })];
        let profile = campaign.run_faults(faults).unwrap();
        prop_assert_eq!(profile.len(), 1);
        let skipped = matches!(
            profile.outcomes()[0].result,
            InjectionResult::Skipped { .. }
        );
        prop_assert!(!skipped);
    }

    /// Same for MySQL, whose leniency must never turn into a crash,
    /// and whose silently-absorbed values must leave the server in a
    /// startable state.
    #[test]
    fn mysql_classifies_arbitrary_values(value in arb_value(), idx in 0usize..8) {
        let mut sut = MySqlSim::new();
        let mut campaign = Campaign::new(&mut sut).unwrap();
        let query: NodeQuery = "//section[@name='mysqld']/directive".parse().unwrap();
        let tree = campaign.baseline().get("my.cnf").unwrap();
        let paths = query.select(tree);
        let path = paths[idx % paths.len()].clone();
        let faults = vec![GeneratedFault::Scenario(FaultScenario {
            id: "prop".into(),
            description: "arbitrary value".into(),
            class: ErrorClass::Typo(TypoKind::Substitution),
            edits: vec![TreeEdit::SetText {
                file: "my.cnf".into(),
                path,
                text: Some(value),
            }],
        })];
        let profile = campaign.run_faults(faults).unwrap();
        prop_assert_eq!(profile.len(), 1);
    }

    /// Arbitrary *name* corruption is always either detected at
    /// startup or absorbed — never a functional-test surprise for
    /// Postgres (names are checked before the server comes up).
    #[test]
    fn postgres_name_corruption_never_reaches_functional_tests(
        name in "[a-zA-Z_]{1,20}",
    ) {
        let mut sut = PostgresSim::new();
        let mut campaign = Campaign::new(&mut sut).unwrap();
        let query: NodeQuery = "//directive[@name='port']".parse().unwrap();
        let tree = campaign.baseline().get("postgresql.conf").unwrap();
        let path = query.select(tree).into_iter().next().unwrap();
        let faults = vec![GeneratedFault::Scenario(FaultScenario {
            id: "prop-name".into(),
            description: "arbitrary name".into(),
            class: ErrorClass::Typo(TypoKind::Substitution),
            edits: vec![TreeEdit::SetAttr {
                file: "postgresql.conf".into(),
                path,
                key: "name".into(),
                value: name,
            }],
        })];
        let profile = campaign.run_faults(faults).unwrap();
        let functional = matches!(
            profile.outcomes()[0].result,
            InjectionResult::DetectedByFunctionalTest { .. }
        );
        prop_assert!(!functional);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Completion batching is a pure lock-traffic optimisation: at
    /// ANY batch size K (1 = the per-fault publication it replaced),
    /// chunk size and thread count, a streamed run delivers its
    /// outcomes to the sink in fault order, byte-identical to the
    /// serial campaign — and the reorder buffer never exceeds the
    /// per-entry `chunk × threads` window.
    #[test]
    fn completion_batching_preserves_sink_order_and_window_bound(
        k in 1usize..=64,
        chunk in 1usize..=32,
        threads in 2usize..=4,
    ) {
        let fixture = scheduler_fixture();
        let executor = CampaignExecutor::new(threads);
        executor.set_chunk_size(chunk);
        executor.set_completion_batch(k);
        prop_assert_eq!(executor.completion_batch(), k);
        let mut sink = CollectingSink::new();
        let stats = executor
            .run_source(
                &fixture.campaign,
                Box::new(EagerSource::new(fixture.faults.clone())),
                &mut sink,
            )
            .expect("streamed run");
        prop_assert_eq!(stats.outcomes, fixture.faults.len());
        prop_assert!(
            stats.peak_buffered <= chunk * threads,
            "peak {} exceeds window {} (K = {}, chunk = {}, threads = {})",
            stats.peak_buffered, chunk * threads, k, chunk, threads
        );
        let streamed = sink.into_profile(fixture.campaign.system());
        prop_assert_eq!(
            &profile_to_json(&streamed),
            &fixture.reference,
            "diverged at K = {}, chunk = {}, threads = {}",
            k, chunk, threads
        );
    }
}
