//! The static analysis layer's two hard promises, checked against the
//! dynamic pipeline over the paper's full fault loads:
//!
//! * **Verdict soundness** (precision gate): a non-`Unknown`
//!   [`StaticVerdict`] on an injection outcome is a guarantee, not a
//!   guess. `WillFailParse` / `WillFailValidate` must coincide with
//!   `DetectedAtStartup`; `SemanticallySilent` must coincide with a
//!   warning-free `Undetected`. Zero unsound predictions over the full
//!   §5.2 (Table 1) load for every schema-publishing system.
//! * **Pruning transparency**: test-impact pruning (skipping
//!   functional tests whose schema-declared read-set is provably
//!   disjoint from a fault's touch map) must be a pure wall-clock
//!   optimisation — profiles byte-identical to the unpruned reference,
//!   serially and at every thread count.
//!
//! Plus the supporting contracts: `LintedSource` transparency inside a
//! real campaign, and the `examples/configs/` drift guard that keeps
//! the CI lint gate's inputs honest.

use std::path::Path;

use conferr::{
    profile_to_json, sut_factory, Campaign, CollectingSink, InjectionResult, LintedSource,
    ParallelCampaign, ResilienceProfile, StaticVerdict,
};
use conferr_bench::{all_typos, table1_faultload, DEFAULT_SEED};
use conferr_keyboard::Keyboard;
use conferr_model::{
    ConfigSet, EagerSource, ErrorClass, ErrorGenerator, FaultScenario, GeneratedFault,
    StructuralKind, TreeEdit, TypoKind,
};
use conferr_plugins::{VariationClass, VariationPlugin};
use conferr_sut::{
    ApacheSim, AppServerSim, BindSim, DjbdnsSim, MySqlSim, PostgresSim, SystemUnderTest,
};
use conferr_tree::NodeQuery;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Precision gate: every non-Unknown verdict must agree with the
// dynamic outcome.
// ---------------------------------------------------------------------------

/// Checks every outcome's verdict against its dynamic result and
/// returns `(predicted_failures, predicted_silent)` so callers can
/// also assert the linter actually commits to claims.
fn assert_verdicts_sound(profile: &ResilienceProfile) -> (usize, usize) {
    let mut predicted_failures = 0usize;
    let mut predicted_silent = 0usize;
    for o in profile.outcomes() {
        match &o.verdict {
            StaticVerdict::WillFailParse | StaticVerdict::WillFailValidate { .. } => {
                predicted_failures += 1;
                assert!(
                    matches!(o.result, InjectionResult::DetectedAtStartup { .. }),
                    "unsound verdict on {}: static {} vs dynamic {}",
                    o.id,
                    o.verdict,
                    o.result
                );
            }
            StaticVerdict::SemanticallySilent => {
                predicted_silent += 1;
                assert!(
                    matches!(&o.result, InjectionResult::Undetected { warnings } if warnings.is_empty()),
                    "unsound verdict on {}: static {} vs dynamic {}",
                    o.id,
                    o.verdict,
                    o.result
                );
            }
            StaticVerdict::Unknown => {}
        }
    }
    (predicted_failures, predicted_silent)
}

/// Runs the full Table 1 load against one system and gates every
/// verdict; `expect_claims` additionally requires the linter to have
/// predicted at least one startup failure (a vacuously-sound
/// all-Unknown linter must not pass for fully-modeled dialects).
fn table1_precision_gate(sut: &mut dyn SystemUnderTest, expect_claims: bool) {
    let mut campaign = Campaign::new(sut).expect("campaign");
    let faults = table1_faultload(campaign.baseline(), &Keyboard::qwerty_us(), DEFAULT_SEED);
    let total = faults.len();
    let profile = campaign.run_faults(faults).expect("run");
    assert_eq!(profile.len(), total);
    let (failures, _) = assert_verdicts_sound(&profile);
    if expect_claims {
        assert!(
            failures > 0,
            "a modeled dialect must commit to startup-failure predictions"
        );
    }
}

#[test]
fn table1_verdicts_are_sound_mysql() {
    table1_precision_gate(&mut MySqlSim::new(), true);
}

#[test]
fn table1_verdicts_are_sound_postgres() {
    table1_precision_gate(&mut PostgresSim::new(), true);
}

#[test]
fn table1_verdicts_are_sound_apache() {
    table1_precision_gate(&mut ApacheSim::new(), true);
}

#[test]
fn table1_verdicts_are_sound_bind_and_appserver() {
    // Unmodeled dialects: the schema exists (for test read-sets) but
    // the linter has no round-trip model, so every verdict must be
    // Unknown — vacuously sound, and checked so a future partial
    // model cannot ship unsound claims unnoticed.
    table1_precision_gate(&mut BindSim::new(), false);
    table1_precision_gate(&mut AppServerSim::new(), false);
}

/// A Table 1-shaped load for djbdns. The §5.2 protocol targets
/// `//directive` nodes, which a tinydns-data file does not have; the
/// equivalent line-level load deletes each record, typos each
/// record's payload, and corrupts record-type prefixes.
fn djbdns_faultload(set: &ConfigSet) -> Vec<GeneratedFault> {
    let query: NodeQuery = "//line".parse().expect("static query");
    let keyboard = Keyboard::qwerty_us();
    let mut out = Vec::new();
    for (file, tree) in set.iter() {
        for (path, node) in query.select_nodes(tree) {
            out.push(GeneratedFault::Scenario(FaultScenario {
                id: format!("djb-delete:{file}:{path}"),
                description: format!("omit record {}", node.describe()),
                class: ErrorClass::Structural(StructuralKind::DirectiveOmission),
                edits: vec![TreeEdit::Delete {
                    file: file.to_string(),
                    path: path.clone(),
                }],
            }));
            out.push(GeneratedFault::Scenario(FaultScenario {
                id: format!("djb-type:{file}:{path}"),
                description: "corrupt record-type prefix".into(),
                class: ErrorClass::Typo(TypoKind::Substitution),
                edits: vec![TreeEdit::SetAttr {
                    file: file.to_string(),
                    path: path.clone(),
                    key: "type".to_string(),
                    value: "!".to_string(),
                }],
            }));
            let Some(payload) = node.text().filter(|t| !t.is_empty()) else {
                continue;
            };
            // Deterministically corrupt the one field the loader
            // checks (the IPv4 address), yielding an out-of-range
            // octet — the WillFailValidate half of the gate.
            if payload.contains("192.0.2.") {
                out.push(GeneratedFault::Scenario(FaultScenario {
                    id: format!("djb-ip:{file}:{path}"),
                    description: "out-of-range IPv4 octet".into(),
                    class: ErrorClass::Typo(TypoKind::Insertion),
                    edits: vec![TreeEdit::SetText {
                        file: file.to_string(),
                        path: path.clone(),
                        text: Some(payload.replacen("192.0.2.", "192.0.2222.", 1)),
                    }],
                }));
            }
            for (v, (mutated, label)) in all_typos(&keyboard, payload)
                .into_iter()
                .take(6)
                .enumerate()
            {
                out.push(GeneratedFault::Scenario(FaultScenario {
                    id: format!("djb-payload:{file}:{path}#{v}"),
                    description: format!("payload typo: {label}"),
                    class: ErrorClass::Typo(TypoKind::Substitution),
                    edits: vec![TreeEdit::SetText {
                        file: file.to_string(),
                        path: path.clone(),
                        text: Some(mutated),
                    }],
                }));
            }
        }
    }
    out
}

#[test]
fn djbdns_line_edit_verdicts_are_sound() {
    let mut sut = DjbdnsSim::new();
    let mut campaign = Campaign::new(&mut sut).expect("campaign");
    let faults = djbdns_faultload(campaign.baseline());
    assert!(faults.len() > 30, "the data file must yield a real load");
    let profile = campaign.run_faults(faults).expect("run");
    let (failures, _) = assert_verdicts_sound(&profile);
    assert!(
        failures > 0,
        "corrupted prefixes and payloads must yield WillFail predictions"
    );
}

// ---------------------------------------------------------------------------
// Proptest: soundness holds for arbitrary values, not just the
// keyboard model's typos.
// ---------------------------------------------------------------------------

/// Arbitrary printable-ASCII value strings, including empty and
/// whitespace-bearing ones.
fn arb_value() -> impl Strategy<Value = String> {
    "[ -~]{0,24}"
}

fn assert_single_edit_sound(sut: &mut dyn SystemUnderTest, file: &str, edit: TreeEdit, id: &str) {
    let mut campaign = Campaign::new(sut).expect("campaign");
    let faults = vec![GeneratedFault::Scenario(FaultScenario {
        id: id.to_string(),
        description: format!("arbitrary edit in {file}"),
        class: ErrorClass::Typo(TypoKind::Substitution),
        edits: vec![edit],
    })];
    let profile = campaign.run_faults(faults).expect("run");
    assert_verdicts_sound(&profile);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever string lands in a MySQL directive value, a WillFail*
    /// verdict must coincide with a failing start and a
    /// SemanticallySilent verdict with a clean pass.
    #[test]
    fn mysql_arbitrary_value_verdicts_are_sound(value in arb_value(), idx in 0usize..16) {
        let mut sut = MySqlSim::new();
        let campaign = Campaign::new(&mut sut).expect("campaign");
        let query: NodeQuery = "//directive".parse().expect("query");
        let tree = campaign.baseline().get("my.cnf").expect("baseline file");
        let paths = query.select(tree);
        let path = paths[idx % paths.len()].clone();
        drop(campaign);
        assert_single_edit_sound(
            &mut sut,
            "my.cnf",
            TreeEdit::SetText { file: "my.cnf".into(), path, text: Some(value) },
            "prop-mysql-value",
        );
    }

    /// Same for arbitrary directive *names* in Postgres, where the
    /// registry lookup (not the value check) decides.
    #[test]
    fn postgres_arbitrary_name_verdicts_are_sound(name in arb_value(), idx in 0usize..16) {
        let mut sut = PostgresSim::new();
        let campaign = Campaign::new(&mut sut).expect("campaign");
        let query: NodeQuery = "//directive".parse().expect("query");
        let tree = campaign.baseline().get("postgresql.conf").expect("baseline file");
        let paths = query.select(tree);
        let path = paths[idx % paths.len()].clone();
        drop(campaign);
        assert_single_edit_sound(
            &mut sut,
            "postgresql.conf",
            TreeEdit::SetAttr {
                file: "postgresql.conf".into(),
                path,
                key: "name".into(),
                value: name,
            },
            "prop-postgres-name",
        );
    }
}

// ---------------------------------------------------------------------------
// Pruning transparency: byte-identical profiles, serial and parallel.
// ---------------------------------------------------------------------------

fn pruned_equals_unpruned_table1(make_sut: impl Fn() -> Box<dyn SystemUnderTest>) {
    let mut reference_sut = make_sut();
    let mut reference = Campaign::new(reference_sut.as_mut()).expect("campaign");
    reference.set_impact_pruning(false);
    let faults = table1_faultload(reference.baseline(), &Keyboard::qwerty_us(), DEFAULT_SEED);
    let unpruned = reference.run_faults(faults.clone()).expect("run");

    let mut pruned_sut = make_sut();
    let mut pruned = Campaign::new(pruned_sut.as_mut()).expect("campaign");
    pruned.set_impact_pruning(true);
    let pruned = pruned.run_faults(faults).expect("run");

    assert_eq!(profile_to_json(&unpruned), profile_to_json(&pruned));
}

#[test]
fn pruned_profile_is_byte_identical_mysql() {
    pruned_equals_unpruned_table1(|| Box::new(MySqlSim::new()));
}

#[test]
fn pruned_profile_is_byte_identical_postgres() {
    pruned_equals_unpruned_table1(|| Box::new(PostgresSim::new()));
}

#[test]
fn pruned_profile_is_byte_identical_apache() {
    pruned_equals_unpruned_table1(|| Box::new(ApacheSim::new()));
}

#[test]
fn pruned_parallel_profile_is_byte_identical_at_every_thread_count() {
    // The serial unpruned run is the single source of truth; pruned
    // parallel runs at 1, 2 and 4 threads must reproduce it exactly.
    let mut sut = MySqlSim::new();
    let mut reference = Campaign::new(&mut sut).expect("campaign");
    reference.set_impact_pruning(false);
    let faults = table1_faultload(reference.baseline(), &Keyboard::qwerty_us(), DEFAULT_SEED);
    let unpruned = reference.run_faults(faults.clone()).expect("run");

    for threads in [1, 2, 4] {
        let mut parallel = ParallelCampaign::new(sut_factory(MySqlSim::new))
            .expect("campaign")
            .with_threads(threads);
        parallel.set_impact_pruning(true);
        let pruned = parallel.run_faults(faults.clone()).expect("run");
        assert_eq!(
            profile_to_json(&unpruned),
            profile_to_json(&pruned),
            "threads = {threads}"
        );
    }
}

#[test]
fn pruned_profile_is_byte_identical_over_table2_variations() {
    // The §5.3 neutral-variation load reorders and reformats whole
    // files — the touch maps are wide, so pruning rarely fires; the
    // point is that it stays invisible even on loads it cannot help.
    for class in VariationClass::ALL {
        let mut reference_sut = ApacheSim::new();
        let mut reference = Campaign::new(&mut reference_sut).expect("campaign");
        reference.set_impact_pruning(false);
        let plugin = VariationPlugin::new(class, 10, DEFAULT_SEED);
        let faults = plugin.generate(reference.baseline()).expect("generate");
        if faults.is_empty() {
            continue;
        }
        let unpruned = reference.run_faults(faults.clone()).expect("run");

        let mut pruned_sut = ApacheSim::new();
        let mut pruned = Campaign::new(&mut pruned_sut).expect("campaign");
        pruned.set_impact_pruning(true);
        let pruned = pruned.run_faults(faults).expect("run");
        assert_eq!(
            profile_to_json(&unpruned),
            profile_to_json(&pruned),
            "class = {}",
            class.label()
        );
    }
}

// ---------------------------------------------------------------------------
// LintedSource inside a real campaign.
// ---------------------------------------------------------------------------

#[test]
fn linted_source_observes_every_fault_and_stays_transparent() {
    let mut sut = MySqlSim::new();
    let mut campaign = Campaign::new(&mut sut).expect("campaign");
    let faults = table1_faultload(campaign.baseline(), &Keyboard::qwerty_us(), DEFAULT_SEED);
    let total = faults.len();
    let reference = campaign.run_faults(faults.clone()).expect("run");

    let mut sut = MySqlSim::new();
    let mut campaign = Campaign::new(&mut sut).expect("campaign");
    let linter = campaign.linter().expect("mysql publishes a schema");
    let mut observed = Vec::new();
    let mut source = LintedSource::new(EagerSource::new(faults), linter, |fault, lint| {
        let id = match fault {
            GeneratedFault::Scenario(s) => s.id.clone(),
            GeneratedFault::Inexpressible { id, .. } => id.clone(),
        };
        observed.push((id, lint.verdict.clone()));
    });
    let mut sink = CollectingSink::with_capacity(total);
    campaign
        .run_source(&mut source, &mut sink)
        .expect("streamed run");
    let streamed = sink.into_profile("mysql-sim");
    drop(source);

    // Transparent: the streamed profile is byte-identical to the plain
    // run over the same faults.
    assert_eq!(profile_to_json(&reference), profile_to_json(&streamed));
    // Exhaustive: one observation per fault, in order, and each
    // observed verdict matches the annotated outcome (the serial
    // campaign applies no downgrades beyond the engine's own).
    assert_eq!(observed.len(), total);
    for ((id, verdict), outcome) in observed.iter().zip(streamed.outcomes()) {
        assert_eq!(id, &outcome.id);
        match verdict {
            // The engine may downgrade SemanticallySilent to Unknown
            // when the scout could not certify a clean baseline;
            // every other verdict must round-trip exactly.
            StaticVerdict::SemanticallySilent => assert!(
                matches!(
                    outcome.verdict,
                    StaticVerdict::SemanticallySilent | StaticVerdict::Unknown
                ),
                "{id}: {} became {}",
                verdict,
                outcome.verdict
            ),
            v => assert_eq!(v, &outcome.verdict, "{id}"),
        }
    }
}

// ---------------------------------------------------------------------------
// examples/configs drift guard.
// ---------------------------------------------------------------------------

#[test]
fn example_configs_match_simulator_defaults() {
    // CI lints `examples/configs/` as the schema-coverage gate; the
    // files must stay byte-identical to the simulators' defaults.
    // Regenerate with `conferr-lint --write-defaults examples/configs`.
    let sims: Vec<Box<dyn SystemUnderTest>> = vec![
        Box::new(MySqlSim::new()),
        Box::new(PostgresSim::new()),
        Box::new(ApacheSim::new()),
        Box::new(BindSim::new()),
        Box::new(DjbdnsSim::new()),
        Box::new(AppServerSim::new()),
    ];
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/configs");
    for sim in sims {
        let short = sim.name().strip_suffix("-sim").unwrap_or(sim.name());
        for spec in sim.config_files() {
            let path = root.join(short).join(&spec.name);
            let on_disk = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
            assert_eq!(
                on_disk,
                spec.default_contents,
                "{} drifted from the {} default",
                path.display(),
                sim.name()
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Static triage: synthesized startup outcomes, byte-identical.
// ---------------------------------------------------------------------------

/// Runs Table 1 twice — triage explicitly off (the reference knob)
/// and on — asserts byte-identity, and returns the triaged run's
/// `(dynamic, synthesized)` start counts.
fn triaged_equals_dynamic_table1(
    make_sut: impl Fn() -> Box<dyn SystemUnderTest>,
) -> (usize, usize) {
    let mut reference_sut = make_sut();
    let mut reference = Campaign::new(reference_sut.as_mut()).expect("campaign");
    reference.set_static_triage(false);
    let faults = table1_faultload(reference.baseline(), &Keyboard::qwerty_us(), DEFAULT_SEED);
    let dynamic = reference.run_faults(faults.clone()).expect("run");
    let (reference_dynamic, reference_synthesized) = reference.triage_stats();
    assert!(reference_dynamic > 0);
    assert_eq!(reference_synthesized, 0, "triage off = every start dynamic");

    let mut triaged_sut = make_sut();
    let mut triaged = Campaign::new(triaged_sut.as_mut()).expect("campaign");
    triaged.set_static_triage(true);
    let profile = triaged.run_faults(faults).expect("run");
    assert_eq!(profile_to_json(&dynamic), profile_to_json(&profile));
    triaged.triage_stats()
}

#[test]
fn triaged_profile_is_byte_identical_mysql() {
    let (dynamic, synthesized) = triaged_equals_dynamic_table1(|| Box::new(MySqlSim::new()));
    assert!(
        synthesized >= dynamic,
        "triage replaced {synthesized} of {} starts",
        dynamic + synthesized
    );
}

#[test]
fn triaged_profile_is_byte_identical_postgres() {
    let (dynamic, synthesized) = triaged_equals_dynamic_table1(|| Box::new(PostgresSim::new()));
    assert!(
        synthesized >= dynamic,
        "triage replaced {synthesized} of {} starts",
        dynamic + synthesized
    );
}

#[test]
fn triaged_profile_is_byte_identical_apache() {
    // Apache's Table 1 load is almost entirely statically decidable:
    // strict validation makes the name typos provably fatal
    // (`WillFail*` → `DetectedAtStartup`) and the rest is provably
    // inert (`SemanticallySilent` → warning-free `Undetected`).
    // Triage must replace at least half the starts (the §4 claim the
    // bench gates as `triage_speedup`).
    let (dynamic, synthesized) = triaged_equals_dynamic_table1(|| Box::new(ApacheSim::new()));
    assert!(
        synthesized >= dynamic,
        "triage replaced {synthesized} of {} starts",
        dynamic + synthesized
    );
}

#[test]
fn triaged_executor_batch_is_byte_identical_across_threads() {
    // The same contract through the pooled executor: a triaged Table 1
    // run at 1/2/4 threads matches the untriaged serial reference, and
    // the engine's counters show the shared knob took effect.
    let reference_campaign =
        conferr::ExecutorCampaign::new(sut_factory(ApacheSim::new)).expect("campaign");
    reference_campaign.set_static_triage(false);
    let faults = table1_faultload(
        reference_campaign.baseline(),
        &Keyboard::qwerty_us(),
        DEFAULT_SEED,
    );
    let reference = {
        let executor = conferr::CampaignExecutor::new(1);
        executor
            .run_faults(&reference_campaign, faults.clone())
            .expect("reference run")
    };

    let triaged_campaign =
        conferr::ExecutorCampaign::new(sut_factory(ApacheSim::new)).expect("campaign");
    triaged_campaign.set_static_triage(true);
    for threads in [1, 2, 4] {
        let executor = conferr::CampaignExecutor::new(threads);
        let profile = executor
            .run_faults(&triaged_campaign, faults.clone())
            .expect("triaged run");
        assert_eq!(
            profile_to_json(&reference),
            profile_to_json(&profile),
            "threads = {threads}"
        );
    }
    let (_, synthesized) = triaged_campaign.triage_stats();
    assert!(synthesized > 0, "the shared engine synthesized outcomes");
}
