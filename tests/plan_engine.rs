//! Plan-engine acceptance gates: seeded counterexamples must shrink,
//! persist, and replay byte-identically at every thread count.

use conferr::{CampaignExecutor, InjectionResult};
use conferr_model::{FaultPlan, PlanAction};
use conferr_plan::{
    is_subplan, single_faults, BugBase, BugBaseError, ChaosSpec, PlanHarness, Property,
};

/// The chaos spec the gates hunt under: start failures and fabricated
/// test failures, deterministic per payload.
const CHAOS: ChaosSpec = ChaosSpec {
    seed: 7,
    panic_pm: 0,
    stall_pm: 0,
    fail_pm: 350,
    fail_test_pm: 200,
    stall_ms: 5,
};

const PROFILE: &str = "revert-happy";
const STEPS: usize = 12;

/// Scans seeds until a plan violates any property, returning
/// `(seed, property)`.
fn first_failing_seed(harness: &PlanHarness, executor: &CampaignExecutor) -> (u64, Property) {
    for seed in 0..200 {
        let plan = harness.generate(PROFILE, seed, STEPS).unwrap();
        let trace = harness.run(executor, &plan).unwrap();
        for property in Property::ALL {
            if property.evaluate(&trace).is_some() {
                return (seed, property);
            }
        }
    }
    panic!("no failing seed in 0..200 — the chaos harness should trip a property");
}

/// The tentpole acceptance gate: find a seeded failing plan, shrink it
/// to a minimal counterexample, persist it to a bug base, and replay
/// it byte-identically from both the JSON record and the bare seed —
/// with every artifact identical at 1, 2 and 4 executor threads.
#[test]
fn seeded_counterexample_shrinks_persists_and_replays_at_every_thread_count() {
    let harness = PlanHarness::new("mysql", Some(CHAOS)).unwrap();
    let reference_executor = CampaignExecutor::new(1);
    let (seed, property) = first_failing_seed(&harness, &reference_executor);

    let plan = harness.generate(PROFILE, seed, STEPS).unwrap();
    let reference_trace = harness.run(&reference_executor, &plan).unwrap();
    let reference_report = harness
        .shrink(&reference_executor, &plan, property)
        .unwrap()
        .expect("the failing plan must shrink");
    assert!(is_subplan(&reference_report.minimal, &plan));
    assert!(
        reference_report.minimal.len() < plan.len(),
        "shrink made progress"
    );
    let reference_record = harness
        .build_record(
            &reference_executor,
            PROFILE,
            seed,
            STEPS,
            property,
            &plan,
            &reference_report.minimal,
        )
        .unwrap();

    let dir = std::env::temp_dir().join(format!("conferr-plan-gate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let base = BugBase::new(&dir);
    let path = base.store(&reference_record).unwrap();
    let loaded = BugBase::load(&path).unwrap();
    assert_eq!(loaded, reference_record, "round trip through disk");

    for threads in [1, 2, 4] {
        let executor = CampaignExecutor::new(threads);
        // Identical plan and trace.
        assert_eq!(harness.generate(PROFILE, seed, STEPS).unwrap(), plan);
        let trace = harness.run(&executor, &plan).unwrap();
        assert_eq!(
            trace.render_lines(),
            reference_trace.render_lines(),
            "{threads} threads"
        );
        // Identical shrink result.
        let report = harness.shrink(&executor, &plan, property).unwrap().unwrap();
        assert_eq!(
            report.minimal, reference_report.minimal,
            "{threads} threads"
        );
        assert_eq!(
            report.violation, reference_report.violation,
            "{threads} threads"
        );
        // Replay by file: byte-identical trace, still violating.
        let replay = harness.replay_record(&executor, &loaded).unwrap();
        assert!(replay.matched, "{threads} threads: {replay:?}");
        assert_eq!(replay.trace, loaded.trace, "{threads} threads");
        // Replay by bare seed: the whole pipeline rebuilds the record.
        let rebuilt = harness
            .replay_seed(&executor, &loaded)
            .unwrap()
            .expect("seed replay must still violate");
        assert_eq!(rebuilt, reference_record, "{threads} threads");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// A stalling revert or restart must classify `TimedOut` with the
/// plan-level phase name instead of hanging (or reading "startup").
#[test]
fn stalling_revert_and_restart_classify_timed_out_with_plan_phases() {
    let stall = ChaosSpec {
        seed: 1,
        panic_pm: 0,
        stall_pm: 1000,
        fail_pm: 0,
        fail_test_pm: 0,
        stall_ms: 120,
    };
    let mut harness = PlanHarness::new("mysql", Some(stall)).unwrap();
    harness.set_deadline_ms(40);
    let singles = single_faults(harness.campaign().baseline());
    // Two stacked faults so the revert still leaves a mutated payload
    // (a revert to a pristine baseline never stalls — chaos only
    // perturbs mutated starts).
    let plan = FaultPlan::new(
        0,
        vec![
            PlanAction::Inject(singles[0].clone()),
            PlanAction::Inject(singles[1].clone()),
            PlanAction::Revert { of: 0 },
            PlanAction::Restart,
        ],
    );
    let executor = CampaignExecutor::new(1);
    let trace = harness.run(&executor, &plan).unwrap();
    for (record, phase) in trace.records[2..].iter().zip(["revert", "restart"]) {
        match &record.outcome.as_ref().unwrap().result {
            InjectionResult::TimedOut {
                phase: actual,
                budget_ms,
            } => {
                assert_eq!(actual, phase, "step {}", record.id);
                assert_eq!(*budget_ms, 40);
            }
            other => panic!("step {} should time out, got {other}", record.id),
        }
    }
}

/// Torn or foreign bug-base files are rejected as malformed, never
/// misread — the same contract as the checkpoint journal.
#[test]
fn torn_and_foreign_bugbase_records_are_rejected() {
    let dir = std::env::temp_dir().join(format!("conferr-plan-torn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let harness = PlanHarness::new("mysql", Some(CHAOS)).unwrap();
    let executor = CampaignExecutor::new(1);
    let (seed, property) = first_failing_seed(&harness, &executor);
    let plan = harness.generate(PROFILE, seed, STEPS).unwrap();
    let report = harness.shrink(&executor, &plan, property).unwrap().unwrap();
    let record = harness
        .build_record(
            &executor,
            PROFILE,
            seed,
            STEPS,
            property,
            &plan,
            &report.minimal,
        )
        .unwrap();
    let json = record.to_json();

    // Torn prefixes of a real record: all rejected.
    for cut in [10, json.len() / 2, json.len() - 1] {
        let path = dir.join("torn.json");
        std::fs::write(&path, &json[..cut]).unwrap();
        assert!(
            matches!(BugBase::load(&path), Err(BugBaseError::Malformed { .. })),
            "cut at {cut}"
        );
    }
    // Foreign JSON (a checkpoint record) is not a bug record.
    let path = dir.join("foreign.json");
    std::fs::write(&path, "{\"checkpoint\":{\"completed\":3}}\n").unwrap();
    assert!(matches!(
        BugBase::load(&path),
        Err(BugBaseError::Malformed { .. })
    ));
    // And a torn file poisons directory enumeration loudly.
    assert!(BugBase::new(&dir).records().is_err());

    let _ = std::fs::remove_dir_all(&dir);
}

/// Without any chaos, a corrupt-then-delete masking pair on a real
/// simulator trips `degraded-still-diagnosed`: the delete masks a
/// directive whose corruption was already diagnosed. The
/// counterexample is already minimal — shrinking cannot drop either
/// step.
#[test]
fn masking_pair_trips_degraded_still_diagnosed_without_chaos() {
    let harness = PlanHarness::new("postgres", None).unwrap();
    let executor = CampaignExecutor::new(1);
    let pairs = conferr_plugins::masking_pairs(harness.campaign().baseline(), 24);
    assert!(!pairs.is_empty());

    let property = Property::DegradedStillDiagnosed;
    let mut found = None;
    for (corrupt, delete) in pairs {
        let plan = FaultPlan::new(
            0,
            vec![PlanAction::Inject(corrupt), PlanAction::Inject(delete)],
        );
        let trace = harness.run(&executor, &plan).unwrap();
        if property.evaluate(&trace).is_some() {
            found = Some(plan);
            break;
        }
    }
    let plan = found.expect("some masking pair must trip the oracle");
    let report = harness.shrink(&executor, &plan, property).unwrap().unwrap();
    assert_eq!(
        report.minimal.len(),
        2,
        "corrupt + masking delete are both load-bearing"
    );
    assert!(is_subplan(&report.minimal, &plan));
}
