//! The streaming fault pipeline (source → chunked queue → sink) must
//! be a pure memory/overlap optimisation: a campaign fed from a live
//! `FaultSource` and drained into an `OutcomeSink` must produce
//! byte-identical results to the eager, fully-materialized path —
//! every id, diff line and diagnostic included — at every thread
//! count and chunk size, while never buffering more than the
//! streaming window.

use conferr::{
    profile_to_csv, profile_to_json, sut_factory, Campaign, CampaignBatch, CampaignError,
    CampaignExecutor, CollectingSink, CountingSink, CsvSink, ExecutorCampaign, JsonlSink,
    ParallelCampaign, ResilienceProfile,
};
use conferr_bench::{table1_faultload, DEFAULT_SEED};
use conferr_keyboard::Keyboard;
use conferr_model::{EagerSource, ErrorGenerator, FaultSourceExt, GeneratedFault, IntoFaultSource};
use conferr_plugins::{
    double_fault_source, plugin_source, StructuralPlugin, TokenClass, TypoPlugin, VariationClass,
    VariationPlugin,
};
use conferr_sut::{ApacheSim, MySqlSim, PostgresSim, SystemUnderTest};

fn serial_profile(
    mut sut: Box<dyn SystemUnderTest>,
    faults: Vec<GeneratedFault>,
) -> ResilienceProfile {
    let mut campaign = Campaign::new(sut.as_mut()).expect("campaign");
    campaign.run_faults(faults).expect("serial run")
}

/// The full Table 1 protocol per system, streamed from a source into
/// a collecting sink at 1/2/4 threads, must match the eager serial
/// profile byte for byte.
#[test]
fn table1_streaming_is_byte_identical_to_eager_across_threads() {
    type FreshSut = fn() -> Box<dyn SystemUnderTest>;
    let keyboard = Keyboard::qwerty_us();
    let systems: [(FreshSut, conferr::SutFactory); 3] = [
        (|| Box::new(MySqlSim::new()), sut_factory(MySqlSim::new)),
        (
            || Box::new(PostgresSim::new()),
            sut_factory(PostgresSim::new),
        ),
        (|| Box::new(ApacheSim::new()), sut_factory(ApacheSim::new)),
    ];
    for (fresh_sut, factory) in systems {
        let campaign = ExecutorCampaign::new(factory).expect("campaign");
        let faults = table1_faultload(campaign.baseline(), &keyboard, DEFAULT_SEED);
        let reference = serial_profile(fresh_sut(), faults.clone());
        for threads in [1, 2, 4] {
            let executor = CampaignExecutor::new(threads);
            let mut sink = CollectingSink::new();
            let stats = executor
                .run_source(
                    &campaign,
                    Box::new(EagerSource::new(faults.clone())),
                    &mut sink,
                )
                .expect("streamed run");
            assert_eq!(stats.outcomes, faults.len());
            assert!(
                stats.peak_buffered <= executor.chunk_size() * threads,
                "{}: peak {} exceeds window at {threads} threads",
                campaign.system(),
                stats.peak_buffered
            );
            let streamed = sink.into_profile(campaign.system());
            assert_eq!(
                profile_to_json(&streamed),
                profile_to_json(&reference),
                "{} diverged at {threads} threads",
                campaign.system()
            );
        }
    }
}

/// The full Table 2 cell load — 14 small campaigns across three
/// systems — scheduled as one batch of *sources* must match per-cell
/// serial runs at 1/2/4 threads.
#[test]
fn table2_source_batch_is_byte_identical_to_per_cell_serial_runs() {
    let factories = [
        ("MySQL", sut_factory(MySqlSim::new)),
        ("Postgres", sut_factory(PostgresSim::new)),
        ("Apache", sut_factory(ApacheSim::new)),
    ];
    let mut cells: Vec<(ExecutorCampaign, Vec<GeneratedFault>)> = Vec::new();
    for class in VariationClass::ALL {
        for (name, factory) in &factories {
            if *name == "Apache" && class == VariationClass::SectionOrder {
                continue;
            }
            let campaign = ExecutorCampaign::new(factory.clone()).expect("campaign");
            let plugin = VariationPlugin::new(class, 10, DEFAULT_SEED);
            let faults = plugin.generate(campaign.baseline()).expect("generate");
            if faults.is_empty() {
                continue;
            }
            cells.push((campaign, faults));
        }
    }
    assert!(cells.len() >= 10);

    let serial: Vec<ResilienceProfile> = cells
        .iter()
        .map(|(campaign, faults)| {
            let sut: Box<dyn SystemUnderTest> = match campaign.system() {
                "mysql-sim" => Box::new(MySqlSim::new()),
                "postgres-sim" => Box::new(PostgresSim::new()),
                _ => Box::new(ApacheSim::new()),
            };
            serial_profile(sut, faults.clone())
        })
        .collect();

    for threads in [1, 2, 4] {
        let executor = CampaignExecutor::new(threads);
        let mut batch = CampaignBatch::new();
        for (campaign, faults) in &cells {
            batch.push_source(campaign, Box::new(EagerSource::new(faults.clone())));
        }
        let profiles = executor.run_batch(batch).expect("source batch");
        assert_eq!(profiles.len(), serial.len());
        for (i, (streamed, reference)) in profiles.iter().zip(&serial).enumerate() {
            assert_eq!(
                profile_to_json(streamed),
                profile_to_json(reference),
                "cell {i} ({}) diverged at threads = {threads}",
                reference.system()
            );
        }
    }
}

/// A streamed CSV export equals exporting the collected profile, byte
/// for byte, even when outcomes complete out of order on a pool.
#[test]
fn csv_sink_streams_byte_identically_through_the_executor() {
    let keyboard = Keyboard::qwerty_us();
    let campaign = ExecutorCampaign::new(sut_factory(MySqlSim::new)).expect("campaign");
    let faults = table1_faultload(campaign.baseline(), &keyboard, DEFAULT_SEED);
    let reference = serial_profile(Box::new(MySqlSim::new()), faults.clone());
    for threads in [1, 3] {
        let executor = CampaignExecutor::new(threads);
        let mut sink = CsvSink::new(campaign.system(), Vec::new());
        executor
            .run_source(
                &campaign,
                Box::new(EagerSource::new(faults.clone())),
                &mut sink,
            )
            .expect("streamed run");
        let streamed = String::from_utf8(sink.finish().expect("no io errors")).unwrap();
        assert_eq!(streamed, profile_to_csv(&reference), "threads = {threads}");
    }
}

/// JSONL streaming: one self-describing object per outcome, in fault
/// order, with the object bodies matching the profile JSON encoding.
#[test]
fn jsonl_sink_streams_outcome_objects_in_fault_order() {
    let keyboard = Keyboard::qwerty_us();
    let campaign = ExecutorCampaign::new(sut_factory(PostgresSim::new)).expect("campaign");
    let faults = table1_faultload(campaign.baseline(), &keyboard, DEFAULT_SEED);
    let reference = serial_profile(Box::new(PostgresSim::new()), faults.clone());
    let executor = CampaignExecutor::new(2);
    let mut sink = JsonlSink::new(campaign.system(), Vec::new());
    executor
        .run_source(&campaign, Box::new(EagerSource::new(faults)), &mut sink)
        .expect("streamed run");
    let text = String::from_utf8(sink.finish().expect("no io errors")).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), reference.len());
    for (line, outcome) in lines.iter().zip(reference.outcomes()) {
        assert_eq!(
            *line,
            conferr::outcome_to_jsonl(reference.system(), outcome)
        );
    }
}

/// A counting sink over a streamed run reproduces the eager profile's
/// summary without storing a single outcome.
#[test]
fn counting_sink_matches_eager_summary() {
    let keyboard = Keyboard::qwerty_us();
    let campaign = ExecutorCampaign::new(sut_factory(ApacheSim::new)).expect("campaign");
    let faults = table1_faultload(campaign.baseline(), &keyboard, DEFAULT_SEED);
    let reference = serial_profile(Box::new(ApacheSim::new()), faults.clone());
    let executor = CampaignExecutor::new(2);
    let mut sink = CountingSink::new();
    executor
        .run_source(&campaign, Box::new(EagerSource::new(faults)), &mut sink)
        .expect("streamed run");
    assert_eq!(sink.summary(), reference.summary());
}

/// Lazily chained plugin sources through `ParallelCampaign` match the
/// generator-based eager `run`.
#[test]
fn plugin_source_stream_matches_parallel_campaign_run() {
    let make_plugin = || {
        Box::new(TypoPlugin::new(
            Keyboard::qwerty_us(),
            TokenClass::DirectiveNames,
        )) as Box<dyn ErrorGenerator + Send>
    };
    let structural = || Box::new(StructuralPlugin::new()) as Box<dyn ErrorGenerator + Send>;

    let mut eager_campaign = ParallelCampaign::new(sut_factory(MySqlSim::new))
        .expect("campaign")
        .with_threads(3);
    eager_campaign.add_generator(make_plugin());
    eager_campaign.add_generator(structural());
    let reference = eager_campaign.run().expect("eager run");

    let streaming_campaign = ParallelCampaign::new(sut_factory(MySqlSim::new))
        .expect("campaign")
        .with_threads(3);
    let source = plugin_source(
        vec![make_plugin(), structural()],
        streaming_campaign.baseline(),
    );
    let mut sink = CollectingSink::new();
    streaming_campaign
        .run_source(source, &mut sink)
        .expect("streamed run");
    let streamed = sink.into_profile(reference.system());
    assert_eq!(profile_to_json(&streamed), profile_to_json(&reference));
}

/// A lazy double-fault cross-product streamed through the executor
/// matches eagerly materializing the product and running it — the
/// product space itself never exists in memory on the streaming side.
#[test]
fn double_fault_product_stream_matches_eager_product_run() {
    let omission =
        || StructuralPlugin::new().with_kinds([conferr_model::StructuralKind::DirectiveOmission]);
    let typo = || {
        TypoPlugin::new(Keyboard::qwerty_us(), TokenClass::DirectiveValues)
            .with_kinds([conferr_model::TypoKind::Transposition])
    };
    let campaign = ExecutorCampaign::new(sut_factory(MySqlSim::new)).expect("campaign");
    let eager_product = conferr_model::product_eager(
        &omission().generate(campaign.baseline()).expect("generate"),
        &typo().generate(campaign.baseline()).expect("generate"),
    );
    assert!(eager_product.len() > 100, "a real cross-product");
    let reference = serial_profile(Box::new(MySqlSim::new()), eager_product);

    for threads in [1, 4] {
        let executor = CampaignExecutor::new(threads);
        let mut sink = CollectingSink::new();
        let source = double_fault_source(omission(), typo(), campaign.baseline());
        executor
            .run_source(&campaign, Box::new(source), &mut sink)
            .expect("streamed run");
        let streamed = sink.into_profile(campaign.system());
        assert_eq!(
            profile_to_json(&streamed),
            profile_to_json(&reference),
            "threads = {threads}"
        );
    }
}

/// `Campaign::run_source` (the serial streaming path) is
/// byte-identical to `run_faults` and composes with combinators.
#[test]
fn serial_run_source_matches_run_faults() {
    let keyboard = Keyboard::qwerty_us();
    let mut sut = PostgresSim::new();
    let mut campaign = Campaign::new(&mut sut).expect("campaign");
    let faults = table1_faultload(campaign.baseline(), &keyboard, DEFAULT_SEED);
    let reference = campaign.run_faults(faults.clone()).expect("eager");

    let mut sink = CollectingSink::new();
    campaign
        .run_source(
            &mut EagerSource::new(faults.clone()).take(faults.len()),
            &mut sink,
        )
        .expect("streamed");
    let streamed = sink.into_profile(reference.system());
    assert_eq!(profile_to_json(&streamed), profile_to_json(&reference));
}

/// Generator failures on the producer path surface as
/// `CampaignError::Generate`, exactly like the eager drivers.
#[test]
fn failing_generator_source_propagates_campaign_error() {
    use conferr_model::{ConfigSet, GenerateError};

    #[derive(Debug)]
    struct Failing;
    impl ErrorGenerator for Failing {
        fn name(&self) -> &str {
            "failing"
        }
        fn generate(&self, _set: &ConfigSet) -> Result<Vec<GeneratedFault>, GenerateError> {
            Err(GenerateError::new("failing", "no zone files in set"))
        }
    }

    let campaign = ExecutorCampaign::new(sut_factory(PostgresSim::new)).expect("campaign");
    for threads in [1, 2] {
        let executor = CampaignExecutor::new(threads);
        let mut sink = CountingSink::new();
        let err = executor
            .run_source(
                &campaign,
                Box::new(Failing.into_source(campaign.baseline())),
                &mut sink,
            )
            .expect_err("must fail");
        assert!(matches!(err, CampaignError::Generate(_)), "{err}");
    }
}
