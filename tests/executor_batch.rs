//! The persistent executor and the batch scheduler must be pure
//! wall-clock optimisations: reusing a pool across submissions, or
//! scheduling many campaigns through one queue, must produce profiles
//! byte-identical to fresh serial campaigns — every id, diff line and
//! diagnostic included.

use conferr::{
    profile_to_json, sut_factory, Campaign, CampaignBatch, CampaignExecutor, ExecutorCampaign,
    ResilienceProfile,
};
use conferr_bench::{table1_faultload, DEFAULT_SEED};
use conferr_keyboard::Keyboard;
use conferr_model::{ErrorGenerator, GeneratedFault};
use conferr_plugins::{VariationClass, VariationPlugin};
use conferr_sut::{ApacheSim, MySqlSim, PostgresSim, SystemUnderTest};

fn serial_profile(
    mut sut: Box<dyn SystemUnderTest>,
    faults: Vec<GeneratedFault>,
) -> ResilienceProfile {
    let mut campaign = Campaign::new(sut.as_mut()).expect("campaign");
    campaign.run_faults(faults).expect("serial run")
}

/// Two `run_faults` calls on ONE executor — whose workers and SUT
/// caches persist between the calls — must match two campaigns run on
/// fresh serial `Campaign`s byte for byte. This is the soundness
/// condition for reusing SUT instances (and their parse caches)
/// across campaigns.
#[test]
fn executor_reuse_is_byte_identical_to_fresh_serial_campaigns() {
    let keyboard = Keyboard::qwerty_us();
    let campaign = ExecutorCampaign::new(sut_factory(PostgresSim::new)).expect("campaign");
    let faults = table1_faultload(campaign.baseline(), &keyboard, DEFAULT_SEED);

    for threads in [1, 3] {
        let executor = CampaignExecutor::new(threads);
        let first = executor
            .run_faults(&campaign, faults.clone())
            .expect("first run");
        let second = executor
            .run_faults(&campaign, faults.clone())
            .expect("second run");

        let serial_first = serial_profile(Box::new(PostgresSim::new()), faults.clone());
        let serial_second = serial_profile(Box::new(PostgresSim::new()), faults.clone());

        assert_eq!(
            profile_to_json(&first),
            profile_to_json(&serial_first),
            "threads = {threads}"
        );
        assert_eq!(
            profile_to_json(&second),
            profile_to_json(&serial_second),
            "threads = {threads}"
        );
    }
}

/// The cell campaigns of the §5.3 Table 2 protocol: every applicable
/// (variation class, system) pair with its 10-variant fault load.
fn table2_cells() -> Vec<(ExecutorCampaign, Vec<GeneratedFault>)> {
    let factories = [
        ("MySQL", sut_factory(MySqlSim::new)),
        ("Postgres", sut_factory(PostgresSim::new)),
        ("Apache", sut_factory(ApacheSim::new)),
    ];
    let mut cells = Vec::new();
    for class in VariationClass::ALL {
        for (name, factory) in &factories {
            if *name == "Apache" && class == VariationClass::SectionOrder {
                continue;
            }
            let campaign = ExecutorCampaign::new(factory.clone()).expect("campaign");
            let plugin = VariationPlugin::new(class, 10, DEFAULT_SEED);
            let faults = plugin.generate(campaign.baseline()).expect("generate");
            if faults.is_empty() {
                continue;
            }
            cells.push((campaign, faults));
        }
    }
    cells
}

/// The full Table 2 workload — 14 small campaigns across three
/// systems — scheduled as ONE batch must be byte-identical to running
/// each cell through its own fresh serial campaign. This is the
/// many-small-campaign workload the batch queue exists for.
#[test]
fn table2_batch_is_byte_identical_to_per_cell_serial_runs() {
    let cells = table2_cells();
    assert!(
        cells.len() >= 10,
        "Table 2 yields at least 10 scheduled cells"
    );

    let serial: Vec<ResilienceProfile> = cells
        .iter()
        .map(|(campaign, faults)| {
            let sut: Box<dyn SystemUnderTest> = match campaign.system() {
                "mysql-sim" => Box::new(MySqlSim::new()),
                "postgres-sim" => Box::new(PostgresSim::new()),
                _ => Box::new(ApacheSim::new()),
            };
            serial_profile(sut, faults.clone())
        })
        .collect();

    for threads in [1, 2, 4] {
        let executor = CampaignExecutor::new(threads);
        let mut batch = CampaignBatch::new();
        for (campaign, faults) in &cells {
            batch.push(campaign, faults.clone());
        }
        let profiles = executor.run_batch(batch).expect("batch run");
        assert_eq!(profiles.len(), serial.len());
        for (i, (batched, reference)) in profiles.iter().zip(&serial).enumerate() {
            assert_eq!(
                profile_to_json(batched),
                profile_to_json(reference),
                "cell {i} ({}) diverged at threads = {threads}",
                reference.system()
            );
        }
    }
}

/// A single-thread executor spawns no workers at all and runs batches
/// through the serial fast path — same results, no queue.
#[test]
fn single_thread_executor_takes_serial_fast_path_over_batches() {
    let executor = CampaignExecutor::new(1);
    let cells = table2_cells();
    let mut batch = CampaignBatch::new();
    for (campaign, faults) in &cells {
        batch.push(campaign, faults.clone());
    }
    let fast = executor.run_batch(batch).expect("fast-path run");

    let multi = CampaignExecutor::new(3);
    let mut batch = CampaignBatch::new();
    for (campaign, faults) in &cells {
        batch.push(campaign, faults.clone());
    }
    let pooled = multi.run_batch(batch).expect("pooled run");

    for (a, b) in fast.iter().zip(&pooled) {
        assert_eq!(profile_to_json(a), profile_to_json(b));
    }
}

/// Chunked stealing is a pure scheduling knob: any chunk size yields
/// the same profiles, and on a 1-thread executor (the serial fast
/// path, which never touches the queue) the setting is inert.
#[test]
fn chunk_size_is_result_neutral_over_batches() {
    let cells = table2_cells();
    let reference: Vec<ResilienceProfile> = {
        let executor = CampaignExecutor::new(1);
        let mut batch = CampaignBatch::new();
        for (campaign, faults) in &cells {
            batch.push(campaign, faults.clone());
        }
        executor.run_batch(batch).expect("reference run")
    };
    for threads in [1, 3] {
        for chunk in [1, 5, 32] {
            let executor = CampaignExecutor::new(threads);
            executor.set_chunk_size(chunk);
            let mut batch = CampaignBatch::new();
            for (campaign, faults) in &cells {
                batch.push(campaign, faults.clone());
            }
            let profiles = executor.run_batch(batch).expect("batch run");
            for (a, b) in profiles.iter().zip(&reference) {
                assert_eq!(
                    profile_to_json(a),
                    profile_to_json(b),
                    "threads = {threads}, chunk = {chunk}"
                );
            }
        }
    }
}

/// A many-entry batch — one entry per (system × typo kind), nine in
/// all, each with a small fault load fed from a LIVE source so
/// generation interleaves with injection across all the producer
/// shards — must splice byte-identically to fresh serial campaigns at
/// 1/2/4 threads. This is the shape that exercises the sharded
/// scheduler hardest: many small independent feeds, stolen from
/// concurrently via the entry cursor.
#[test]
fn many_entry_live_source_batch_matches_serial() {
    use conferr_model::{IntoFaultSource, TypoKind};
    use conferr_plugins::{TokenClass, TypoPlugin};

    let factories = [
        sut_factory(MySqlSim::new),
        sut_factory(PostgresSim::new),
        sut_factory(ApacheSim::new),
    ];
    let suts: [fn() -> Box<dyn SystemUnderTest>; 3] = [
        || Box::new(MySqlSim::new()),
        || Box::new(PostgresSim::new()),
        || Box::new(ApacheSim::new()),
    ];
    let kinds = [
        TypoKind::Omission,
        TypoKind::Transposition,
        TypoKind::CaseAlteration,
    ];

    let mut entries: Vec<(ExecutorCampaign, TypoPlugin)> = Vec::new();
    let mut serial: Vec<ResilienceProfile> = Vec::new();
    for (factory, fresh_sut) in factories.iter().zip(suts) {
        let campaign = ExecutorCampaign::new(factory.clone()).expect("campaign");
        for kind in kinds {
            let plugin = TypoPlugin::new(Keyboard::qwerty_us(), TokenClass::DirectiveNames)
                .with_kinds([kind]);
            let faults = plugin.generate(campaign.baseline()).expect("generate");
            assert!(
                !faults.is_empty(),
                "every (system, kind) cell yields faults"
            );
            serial.push(serial_profile(fresh_sut(), faults));
            entries.push((campaign.clone(), plugin));
        }
    }
    assert!(entries.len() >= 8, "a genuinely many-entry batch");

    for threads in [1, 2, 4] {
        let executor = CampaignExecutor::new(threads);
        let mut batch = CampaignBatch::new();
        for (campaign, plugin) in &entries {
            batch.push_source(
                campaign,
                Box::new(plugin.clone().into_source(campaign.baseline())),
            );
        }
        let profiles = executor.run_batch(batch).expect("batch run");
        assert_eq!(profiles.len(), serial.len());
        for (i, (batched, reference)) in profiles.iter().zip(&serial).enumerate() {
            assert_eq!(
                profile_to_json(batched),
                profile_to_json(reference),
                "entry {i} ({}) diverged at threads = {threads}",
                reference.system()
            );
        }
    }
}

/// A cross-system batch (the Table 1 protocol against all three
/// systems through one queue) matches per-system serial runs.
#[test]
fn cross_system_table1_batch_matches_serial() {
    let keyboard = Keyboard::qwerty_us();
    let executor = CampaignExecutor::new(4);
    let mut batch = CampaignBatch::new();
    let mut serial = Vec::new();
    let factories = [
        sut_factory(MySqlSim::new),
        sut_factory(PostgresSim::new),
        sut_factory(ApacheSim::new),
    ];
    let suts: [fn() -> Box<dyn SystemUnderTest>; 3] = [
        || Box::new(MySqlSim::new()),
        || Box::new(PostgresSim::new()),
        || Box::new(ApacheSim::new()),
    ];
    for (factory, fresh_sut) in factories.into_iter().zip(suts) {
        let campaign = ExecutorCampaign::new(factory).expect("campaign");
        let faults = table1_faultload(campaign.baseline(), &keyboard, DEFAULT_SEED);
        serial.push(serial_profile(fresh_sut(), faults.clone()));
        batch.push(&campaign, faults);
    }
    let profiles = executor.run_batch(batch).expect("batch run");
    for (batched, reference) in profiles.iter().zip(&serial) {
        assert_eq!(
            profile_to_json(batched),
            profile_to_json(reference),
            "{} diverged",
            reference.system()
        );
    }
}
