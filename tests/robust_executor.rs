//! Robustness suite: fault isolation, the deadline watchdog and
//! checkpoint resume, exercised end to end with the shared
//! [`ChaosSut`] wrapper over the full Table 1 fault load.
//!
//! The load-bearing claims (ISSUE acceptance):
//!
//! * a seeded chaos batch at 1/2/4 threads yields **non-chaos**
//!   outcomes byte-identical to a clean reference run, and the chaos
//!   outcomes themselves are identical across thread counts;
//! * killing a campaign mid-flight and resuming from the recovered
//!   checkpoint reproduces the uninterrupted run's final profile
//!   byte-identically;
//! * strict mode (`set_fault_isolation(false)`) still poisons the
//!   submission on a harness panic.

use std::io::{self, Write};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use conferr::{
    Campaign, CampaignError, CampaignExecutor, Checkpoint, CheckpointSink, CollectingSink,
    ExecutorCampaign, InjectionResult, RetryPolicy, SutFactory,
};
use conferr_bench::{table1_faultload, DEFAULT_SEED};
use conferr_keyboard::Keyboard;
use conferr_model::{EagerSource, FaultSourceExt, GeneratedFault};
use conferr_sut::{ChaosConfig, ChaosSut, MySqlSim, CHAOS_PREFIX};

/// The clean campaign, its chaos twin (same baseline, same fault
/// space) and the shared Table 1 fault load.
fn fixtures(chaos: ChaosConfig) -> (ExecutorCampaign, ExecutorCampaign, Vec<GeneratedFault>) {
    let clean = ExecutorCampaign::new(SutFactory::new(MySqlSim::new)).expect("clean campaign");
    let chaotic = ExecutorCampaign::new(SutFactory::new(move || {
        ChaosSut::new(MySqlSim::new(), chaos)
    }))
    .expect("chaos campaign");
    let faults = table1_faultload(clean.baseline(), &Keyboard::qwerty_us(), DEFAULT_SEED);
    assert!(faults.len() > 100, "Table 1 load is non-trivial");
    (clean, chaotic, faults)
}

/// `true` for outcomes fabricated (or perturbed) by the chaos layer.
fn is_chaotic(result: &InjectionResult) -> bool {
    match result {
        InjectionResult::HarnessFailure { panic_msg } => panic_msg.contains(CHAOS_PREFIX),
        InjectionResult::DetectedAtStartup { diagnostic } => diagnostic.contains(CHAOS_PREFIX),
        InjectionResult::TimedOut { .. } => true,
        _ => false,
    }
}

#[test]
fn chaos_non_chaos_outcomes_match_the_clean_reference_at_every_thread_count() {
    let config = ChaosConfig {
        seed: DEFAULT_SEED,
        panic_rate: 0.10,
        fail_rate: 0.10,
        ..ChaosConfig::default()
    };
    let (clean, chaotic, faults) = fixtures(config);
    let reference = CampaignExecutor::new(1)
        .run_faults(&clean, faults.clone())
        .expect("reference run");

    let mut chaos_profiles = Vec::new();
    for threads in [1, 2, 4] {
        let executor = CampaignExecutor::new(threads);
        let profile = executor
            .run_faults(&chaotic, faults.clone())
            .expect("chaos run survives isolated");
        assert_eq!(profile.len(), reference.len(), "threads = {threads}");

        let mut chaotic_seen = 0;
        for (chaos_outcome, clean_outcome) in profile.outcomes().iter().zip(reference.outcomes()) {
            if is_chaotic(&chaos_outcome.result) {
                chaotic_seen += 1;
                assert_eq!(chaos_outcome.id, clean_outcome.id);
            } else {
                assert_eq!(
                    chaos_outcome, clean_outcome,
                    "non-chaos outcomes are byte-identical (threads = {threads})"
                );
            }
        }
        assert!(
            chaotic_seen > 0,
            "the seeded rates actually perturbed something"
        );
        assert!(
            chaotic_seen < profile.len(),
            "and left most faults untouched"
        );
        // Every chaos panic fails its single (no-retry) attempt, so
        // it lands in quarantine.
        assert_eq!(
            executor.quarantined().len(),
            profile.summary().harness_failures,
            "threads = {threads}"
        );
        chaos_profiles.push(profile);
    }
    // The chaos decision is a pure function of payload and seed, so
    // whole chaos profiles agree across thread counts too.
    assert_eq!(chaos_profiles[0], chaos_profiles[1]);
    assert_eq!(chaos_profiles[0], chaos_profiles[2]);
}

/// A journal writer whose bytes survive the sink being dropped — the
/// in-process stand-in for a file that outlives a killed process.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn text(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).expect("utf8 journal")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[test]
fn kill_and_resume_reproduces_the_uninterrupted_profile() {
    let (clean, _, faults) = fixtures(ChaosConfig::default());
    let executor = CampaignExecutor::new(2);
    let reference = executor
        .run_faults(&clean, faults.clone())
        .expect("uninterrupted run");

    // "Kill" mid-campaign: the process dies after ~55% of the faults,
    // at a point that is deliberately not a checkpoint boundary, with
    // no chance to write a final record.
    let killed_at = faults.len() * 55 / 100;
    let interval = 7;
    assert!(killed_at % interval != 0, "kill between checkpoints");
    let journal = SharedBuf::default();
    let mut sink = CheckpointSink::new(CollectingSink::new(), journal.clone(), interval);
    executor
        .run_source(
            &clean,
            Box::new(EagerSource::new(faults.clone()).take(killed_at)),
            &mut sink,
        )
        .expect("killed run");
    // Snapshot the journal BEFORE finish(): a killed process never
    // writes the final record. `finish` only serves to recover the
    // killed run's delivered outcomes for the splice below.
    let journal_text = journal.text();
    let (killed_outcomes, _) = sink.finish().expect("journal healthy");
    let killed_outcomes = killed_outcomes.into_outcomes();
    assert_eq!(killed_outcomes.len(), killed_at);

    let recovered = Checkpoint::from_journal(&journal_text).expect("a durable checkpoint");
    assert_eq!(
        recovered.completed,
        killed_at - killed_at % interval,
        "the last durable record is an interval boundary"
    );

    // Resume: same source, completed prefix skipped, counts seeded
    // from the journal.
    let mut resumed_sink = CheckpointSink::resume(
        CollectingSink::new(),
        SharedBuf::default(),
        interval,
        &recovered,
    );
    executor
        .resume_from(
            &clean,
            Box::new(EagerSource::new(faults.clone())),
            &recovered,
            &mut resumed_sink,
        )
        .expect("resumed run");
    let final_state = resumed_sink.checkpoint();
    assert_eq!(final_state.completed, faults.len());
    assert_eq!(
        final_state.summary,
        reference.summary(),
        "resumed counts equal the uninterrupted run's"
    );
    let (resumed_outcomes, _) = resumed_sink.finish().expect("journal healthy");

    // At-least-once splice: the first `completed` outcomes of the
    // killed run plus everything the resumed run delivered equal the
    // uninterrupted stream byte for byte.
    let mut spliced = killed_outcomes[..recovered.completed].to_vec();
    spliced.extend(resumed_outcomes.into_outcomes());
    assert_eq!(spliced.as_slice(), reference.outcomes());
}

#[test]
fn strict_mode_still_poisons_on_chaos_panics() {
    let config = ChaosConfig {
        seed: DEFAULT_SEED,
        panic_rate: 1.0,
        ..ChaosConfig::default()
    };
    let (_, chaotic, faults) = fixtures(config);
    let executor = CampaignExecutor::new(2);
    executor.set_fault_isolation(false);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        executor.run_faults(&chaotic, faults.iter().take(16).cloned().collect())
    }));
    assert!(result.is_err(), "strict mode re-raises the harness panic");

    // The pool survives and, back in isolated mode, the same load
    // completes with every fault recorded.
    executor.set_fault_isolation(true);
    let profile = executor
        .run_faults(&chaotic, faults.iter().take(16).cloned().collect())
        .expect("isolated run completes");
    assert_eq!(profile.len(), 16);
    assert!(profile.summary().harness_failures > 0);
}

#[test]
fn stalls_past_the_deadline_are_classified_timed_out() {
    let config = ChaosConfig {
        seed: DEFAULT_SEED,
        stall_rate: 1.0,
        stall_for: Duration::from_millis(30),
        ..ChaosConfig::default()
    };
    let (_, chaotic, faults) = fixtures(config);
    chaotic.set_fault_deadline(Some(Duration::from_millis(5)));
    let executor = CampaignExecutor::new(1);
    let profile = executor
        .run_faults(&chaotic, faults.iter().take(4).cloned().collect())
        .expect("timed-out faults are outcomes, not errors");
    let summary = profile.summary();
    assert_eq!(summary.timed_out, 4);
    // Timed-out faults were injected (unlike harness failures).
    assert_eq!(summary.injected(), 4);
    for outcome in profile.outcomes() {
        assert!(
            matches!(
                &outcome.result,
                InjectionResult::TimedOut { phase, budget_ms: 5 } if phase == "startup"
            ),
            "{:?}",
            outcome.result
        );
    }
    // A timed-out single attempt exhausts the no-retry policy.
    assert_eq!(executor.quarantined().len(), 4);

    // With the deadline lifted the same stalls pass normally.
    chaotic.set_fault_deadline(None);
    let profile = executor
        .run_faults(&chaotic, faults.iter().take(2).cloned().collect())
        .expect("no deadline, no timeouts");
    assert_eq!(profile.summary().timed_out, 0);
}

#[test]
fn retries_heal_timed_out_faults_when_the_stall_is_transient() {
    // A deadline generous enough that the *second* attempt (which
    // stalls again — chaos is deterministic — but starts with a fresh
    // deadline) still overruns: so this instead demonstrates that
    // retries of deterministic overruns exhaust and quarantine, while
    // the retry counter reports the spent attempts.
    let config = ChaosConfig {
        seed: DEFAULT_SEED,
        stall_rate: 1.0,
        stall_for: Duration::from_millis(20),
        ..ChaosConfig::default()
    };
    let (_, chaotic, faults) = fixtures(config);
    chaotic.set_fault_deadline(Some(Duration::from_millis(4)));
    let executor = CampaignExecutor::new(1);
    executor.set_retry_policy(RetryPolicy::new(
        3,
        Duration::from_millis(1),
        Duration::from_millis(2),
    ));
    let mut sink = CollectingSink::new();
    let stats = executor
        .run_source(
            &chaotic,
            Box::new(EagerSource::new(faults.iter().take(2).cloned().collect())),
            &mut sink,
        )
        .expect("run completes");
    assert_eq!(stats.outcomes, 2);
    assert_eq!(stats.retries, 4, "two faults x two retries each");
    assert_eq!(executor.quarantined().len(), 2);
    chaotic.set_fault_deadline(None);
}

#[test]
fn serial_campaign_surfaces_sink_io_errors() {
    /// Fails after two successful writes (header + first row).
    struct Failing {
        ok: usize,
    }
    impl Write for Failing {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.ok == 0 {
                return Err(io::Error::other("no space left on device"));
            }
            self.ok -= 1;
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    let mut sut = MySqlSim::new();
    let mut campaign = Campaign::new(&mut sut).expect("campaign");
    let faults = table1_faultload(campaign.baseline(), &Keyboard::qwerty_us(), DEFAULT_SEED);
    let mut sink = conferr::CsvSink::new("mysql-sim", Failing { ok: 2 });
    let err = campaign
        .run_source(
            &mut EagerSource::new(faults.iter().take(32).cloned().collect()),
            &mut sink,
        )
        .expect_err("the write failure aborts the campaign");
    assert!(
        matches!(&err, CampaignError::SinkIo(e) if e.to_string().contains("no space left")),
        "{err}"
    );
    assert!(sink.finish().is_err(), "the sink stays tripped");
}
