//! End-to-end campaigns across every simulated system with every
//! applicable plugin: the whole pipeline must hold together, stay
//! deterministic, and keep its accounting honest.

use conferr::{Campaign, InjectionResult, ResilienceProfile};
use conferr_keyboard::Keyboard;
use conferr_model::StructuralKind;
use conferr_plugins::{
    DnsSemanticPlugin, StructuralPlugin, TokenClass, TypoPlugin, VariationClass, VariationPlugin,
};
use conferr_sut::{ApacheSim, BindSim, DjbdnsSim, MySqlSim, PostgresSim, SystemUnderTest};

fn assert_profile_sane(profile: &ResilienceProfile) {
    let s = profile.summary();
    assert_eq!(
        s.total,
        s.detected_at_startup + s.detected_by_tests + s.undetected + s.inexpressible + s.skipped,
        "buckets must partition the total: {s:?}"
    );
    assert_eq!(s.total, profile.len());
    assert_eq!(s.skipped, 0, "no scenario may fail to apply: {s:?}");
    // Per-class summaries must add back up to the overall numbers.
    let by_class = profile.by_class();
    let class_total: usize = by_class.values().map(|c| c.total).sum();
    assert_eq!(class_total, s.total);
    // Every outcome has an id and description.
    for o in profile.outcomes() {
        assert!(!o.id.is_empty());
        assert!(!o.description.is_empty());
    }
}

fn typo_campaign(sut: &mut dyn SystemUnderTest) -> ResilienceProfile {
    let mut campaign = Campaign::new(sut).expect("campaign");
    campaign.add_generator(Box::new(TypoPlugin::new(
        Keyboard::qwerty_us(),
        TokenClass::DirectiveNames,
    )));
    campaign.add_generator(Box::new(TypoPlugin::new(
        Keyboard::qwerty_us(),
        TokenClass::DirectiveValues,
    )));
    campaign.run().expect("run")
}

#[test]
fn mysql_full_typo_campaign() {
    let mut sut = MySqlSim::new();
    let profile = typo_campaign(&mut sut);
    assert!(profile.len() > 500, "my.cnf yields a rich fault load");
    assert_profile_sane(&profile);
    // Both detection and absorption must occur — a profile that is
    // all-detected or all-ignored means the simulator is broken.
    let s = profile.summary();
    assert!(s.detected_at_startup > 0);
    assert!(s.undetected > 0);
}

#[test]
fn postgres_full_typo_campaign() {
    let mut sut = PostgresSim::new();
    let profile = typo_campaign(&mut sut);
    assert!(profile.len() > 200);
    assert_profile_sane(&profile);
    assert!(profile.summary().detection_rate() > 0.5);
}

#[test]
fn apache_full_typo_campaign() {
    let mut sut = ApacheSim::new();
    let profile = typo_campaign(&mut sut);
    assert!(
        profile.len() > 1000,
        "98 directives yield a huge fault load"
    );
    assert_profile_sane(&profile);
    // Apache's lax value validation leaves most value typos unseen.
    let s = profile.summary();
    assert!(s.undetected > s.total / 4, "{s:?}");
}

#[test]
fn structural_campaigns_run_on_all_section_systems() {
    for (name, sut) in [
        (
            "mysql",
            Box::new(MySqlSim::new()) as Box<dyn SystemUnderTest>,
        ),
        ("postgres", Box::new(PostgresSim::new())),
        ("apache", Box::new(ApacheSim::new())),
    ] {
        let mut sut = sut;
        let mut campaign = Campaign::new(sut.as_mut()).expect("campaign");
        campaign.add_generator(Box::new(StructuralPlugin::new().with_kinds([
            StructuralKind::DirectiveOmission,
            StructuralKind::Duplication,
            StructuralKind::Misplacement,
        ])));
        let profile = campaign.run().expect(name);
        assert!(!profile.is_empty(), "{name}");
        assert_profile_sane(&profile);
    }
}

#[test]
fn variation_campaigns_run_on_all_section_systems() {
    for class in VariationClass::ALL {
        let mut sut = MySqlSim::new();
        let mut campaign = Campaign::new(&mut sut).expect("campaign");
        campaign.add_generator(Box::new(VariationPlugin::new(class, 10, 7)));
        let profile = campaign.run().expect("run");
        assert_profile_sane(&profile);
    }
}

#[test]
fn dns_campaigns_cover_both_servers() {
    {
        let mut sut = BindSim::new();
        let mut campaign = Campaign::new(&mut sut).expect("campaign");
        campaign.add_generator(Box::new(DnsSemanticPlugin::bind()));
        let profile = campaign.run().expect("run");
        assert_profile_sane(&profile);
        assert!(
            profile.summary().inexpressible == 0,
            "zone files express everything"
        );
        assert!(profile.summary().detected_at_startup > 0);
        assert!(profile.summary().undetected > 0);
    }
    {
        let mut sut = DjbdnsSim::new();
        let mut campaign = Campaign::new(&mut sut).expect("campaign");
        campaign.add_generator(Box::new(DnsSemanticPlugin::tinydns()));
        let profile = campaign.run().expect("run");
        assert_profile_sane(&profile);
        assert!(
            profile.summary().inexpressible > 0,
            "the combined A+PTR directive must make some faults unwritable"
        );
    }
}

#[test]
fn campaigns_are_deterministic_across_runs() {
    let run = || {
        let mut sut = PostgresSim::new();
        typo_campaign(&mut sut)
    };
    let a = run();
    let b = run();
    assert_eq!(a.outcomes(), b.outcomes());
}

#[test]
fn undetected_outcomes_iterate_consistently() {
    let mut sut = MySqlSim::new();
    let profile = typo_campaign(&mut sut);
    let n = profile
        .outcomes()
        .iter()
        .filter(|o| matches!(o.result, InjectionResult::Undetected { .. }))
        .count();
    assert_eq!(profile.undetected().count(), n);
    assert_eq!(profile.summary().undetected, n);
}

#[test]
fn suts_recover_after_failed_start() {
    // A campaign interleaves failing and succeeding configurations;
    // the SUT must come back cleanly after a detected error.
    let mut sut = PostgresSim::new();
    let good = conferr_sut::default_configs(&sut);
    let mut bad = good.clone();
    bad.get_mut("postgresql.conf")
        .expect("conf")
        .push_str("bogus_param = 1\n");
    assert!(!sut
        .start(
            &conferr_sut::ConfigPayload::from_texts(&bad),
            &conferr_sut::Deadline::unlimited()
        )
        .is_running());
    assert!(sut
        .start(
            &conferr_sut::ConfigPayload::from_texts(&good),
            &conferr_sut::Deadline::unlimited()
        )
        .is_running());
    assert!(sut
        .run_test("connect-and-query", &conferr_sut::Deadline::unlimited())
        .passed());
}
