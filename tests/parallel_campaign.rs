//! The parallel campaign driver must be a pure wall-clock
//! optimisation: over the full §5.2 fault load, its profile —
//! including every diagnostic string, diff line and warning — must be
//! byte-identical to the serial driver's, at any thread count.

use conferr::{profile_to_json, sut_factory, Campaign, ParallelCampaign, ResilienceProfile};
use conferr_bench::{
    table1, table1_faultload, table1_parallel, table2, table2_parallel, table3, table3_parallel,
    DEFAULT_SEED,
};
use conferr_keyboard::Keyboard;
use conferr_model::GeneratedFault;
use conferr_sut::{MySqlSim, PostgresSim, SystemUnderTest};

/// The full §5.2 (Table 1) fault load for one system: deletion of
/// every directive plus sampled name/value typos.
fn full_faultload(sut: &mut dyn SystemUnderTest) -> Vec<GeneratedFault> {
    let keyboard = Keyboard::qwerty_us();
    let campaign = Campaign::new(sut).expect("campaign");
    table1_faultload(campaign.baseline(), &keyboard, DEFAULT_SEED)
}

fn serial_profile(sut: &mut dyn SystemUnderTest, faults: Vec<GeneratedFault>) -> ResilienceProfile {
    let mut campaign = Campaign::new(sut).expect("campaign");
    campaign.run_faults(faults).expect("serial run")
}

#[test]
fn parallel_equals_serial_for_mysql_full_faultload() {
    let mut sut = MySqlSim::new();
    let faults = full_faultload(&mut sut);
    let serial = serial_profile(&mut sut, faults.clone());
    for threads in [1, 2, 5] {
        let parallel =
            Campaign::run_faults_parallel(sut_factory(MySqlSim::new), faults.clone(), threads)
                .expect("parallel run");
        assert_eq!(
            serial.outcomes(),
            parallel.outcomes(),
            "threads = {threads}"
        );
        // Byte-identical, not merely equal: the exported JSON (every
        // id, description, diff line and diagnostic) matches exactly.
        assert_eq!(
            profile_to_json(&serial),
            profile_to_json(&parallel),
            "threads = {threads}"
        );
    }
}

#[test]
fn parallel_equals_serial_for_postgres_full_faultload() {
    let mut sut = PostgresSim::new();
    let faults = full_faultload(&mut sut);
    let serial = serial_profile(&mut sut, faults.clone());
    for threads in [2, 8] {
        let parallel =
            Campaign::run_faults_parallel(sut_factory(PostgresSim::new), faults.clone(), threads)
                .expect("parallel run");
        assert_eq!(
            profile_to_json(&serial),
            profile_to_json(&parallel),
            "threads = {threads}"
        );
    }
}

#[test]
fn parallel_campaign_generators_match_serial() {
    // The generator-driven entry point (`run`) goes through the same
    // sharded path as `run_faults`.
    let mut parallel = ParallelCampaign::new(sut_factory(PostgresSim::new))
        .expect("campaign")
        .with_threads(3);
    parallel.add_generator(Box::new(conferr_plugins::StructuralPlugin::new()));
    let parallel = parallel.run().expect("parallel run");

    let mut sut = PostgresSim::new();
    let mut serial = Campaign::new(&mut sut).expect("campaign");
    serial.add_generator(Box::new(conferr_plugins::StructuralPlugin::new()));
    let serial = serial.run().expect("serial run");

    assert_eq!(profile_to_json(&serial), profile_to_json(&parallel));
}

#[test]
fn parallel_paper_artifacts_match_serial() {
    // One persistent executor drives all three artifacts — the
    // cross-artifact reuse `paper_all` performs, with its SUT caches
    // warmed by earlier tables when later ones run.
    let executor = conferr::CampaignExecutor::new(4);

    // Table 1 summaries (one cross-system batch).
    let serial = table1(DEFAULT_SEED).expect("table1");
    let parallel = table1_parallel(&executor, DEFAULT_SEED).expect("table1 parallel");
    assert_eq!(serial, parallel);

    // Table 2 verdict matrix (14 cell campaigns in one batch).
    let serial = table2(DEFAULT_SEED).expect("table2");
    let parallel = table2_parallel(&executor, DEFAULT_SEED).expect("table2 parallel");
    assert_eq!(serial.systems, parallel.systems);
    assert_eq!(serial.rows, parallel.rows);

    // Table 3 verdicts (includes inexpressible faults on djbdns).
    let serial = table3().expect("table3");
    let parallel = table3_parallel(&executor).expect("table3 parallel");
    assert_eq!(serial.rows, parallel.rows);
}
