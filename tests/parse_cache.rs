//! Parse-cache correctness: memoized startup parsing must be
//! observationally invisible.
//!
//! The simulators memoize their parse-and-validate startup path in a
//! content-addressed `ParseCache` (see `conferr_sut::payload`). These
//! tests pin the soundness argument end to end over the full §5.2
//! (Table 1) fault load:
//!
//! * a campaign run with caching enabled produces a profile
//!   **byte-identical** (exported JSON, every diagnostic and diff
//!   line) to a run with caching disabled;
//! * a `start` served from a cache hit yields a `StartOutcome`
//!   identical to a cold parse of the same payload, fault by fault;
//! * repeated fault loads actually hit the cache (the speedup is
//!   real, not a no-op flag).

use std::collections::BTreeMap;
use std::sync::Arc;

use conferr::{profile_to_json, Campaign, ResilienceProfile};
use conferr_bench::{table1_faultload, DEFAULT_SEED};
use conferr_formats::{format_by_name, ConfigFormat};
use conferr_keyboard::Keyboard;
use conferr_model::{ConfigSet, GeneratedFault};
use conferr_sut::{
    ApacheSim, BindSim, ConfigPayload, Deadline, DjbdnsSim, FileText, MySqlSim, PostgresSim,
    SystemUnderTest,
};

/// Runs the full Table 1 fault load through a serial campaign with
/// every cache layer (SUT parse cache + engine fault memo) on or off.
fn table1_profile(sut: &mut dyn SystemUnderTest, caching: bool) -> ResilienceProfile {
    sut.set_parse_caching(caching);
    let mut campaign = Campaign::new(sut).expect("campaign");
    campaign.set_fault_memoization(caching);
    let faults = table1_faultload(campaign.baseline(), &Keyboard::qwerty_us(), DEFAULT_SEED);
    campaign.run_faults(faults).expect("run")
}

fn assert_cached_equals_uncached(make_sut: impl Fn() -> Box<dyn SystemUnderTest>) {
    let mut cold_sut = make_sut();
    let uncached = table1_profile(cold_sut.as_mut(), false);
    let stats = cold_sut
        .parse_cache_stats()
        .expect("simulators have caches");
    assert_eq!(stats.hits, 0, "disabled cache must never hit");
    assert_eq!(stats.entries, 0, "disabled cache must store nothing");

    let mut warm_sut = make_sut();
    let cached = table1_profile(warm_sut.as_mut(), true);
    let stats = warm_sut
        .parse_cache_stats()
        .expect("simulators have caches");
    assert!(stats.misses > 0, "first sighting always parses in full");

    // Byte-identical, not merely equal: every id, description, diff
    // line and diagnostic in the exported JSON matches exactly.
    assert_eq!(profile_to_json(&uncached), profile_to_json(&cached));
}

#[test]
fn cached_profile_is_byte_identical_to_uncached_mysql() {
    assert_cached_equals_uncached(|| Box::new(MySqlSim::new()));
}

#[test]
fn cached_profile_is_byte_identical_to_uncached_postgres() {
    assert_cached_equals_uncached(|| Box::new(PostgresSim::new()));
}

#[test]
fn cached_profile_is_byte_identical_to_uncached_apache() {
    assert_cached_equals_uncached(|| Box::new(ApacheSim::new()));
}

#[test]
fn cached_profile_is_byte_identical_to_uncached_bind() {
    assert_cached_equals_uncached(|| Box::new(BindSim::new()));
}

#[test]
fn cached_start_is_identical_to_uncached_djbdns() {
    // The Table 1 protocol does not target tinydns data lines, so
    // djbdns is exercised with direct starts: the default data plus
    // hand-made mutations covering clean loads, syntax errors and
    // semantic loader errors.
    let mut warm = DjbdnsSim::new();
    let mut cold = DjbdnsSim::new();
    cold.set_parse_caching(false);
    let default_data = conferr_sut::default_configs(&warm)["data"].clone();
    let mutations = [
        default_data.clone(),
        default_data.replace("=www.example.com", "=www.examplecom"),
        default_data.replace("=www", "?www"),
        default_data.replace("192.0.2.10", "192.0.2.999"),
        default_data.replace(":86400", ":"),
    ];
    for text in &mutations {
        let mut payload = ConfigPayload::new();
        payload.insert("data", FileText::mutated(text.as_str()));
        let first = warm.start(&payload, &Deadline::unlimited());
        let hit = warm.start(&payload, &Deadline::unlimited());
        let reference = cold.start(&payload, &Deadline::unlimited());
        assert_eq!(first, reference);
        assert_eq!(hit, reference);
    }
    let stats = warm.parse_cache_stats().expect("cache");
    assert_eq!(stats.misses, mutations.len() as u64);
    assert_eq!(stats.hits, mutations.len() as u64);
}

#[test]
fn repeated_fault_load_hits_the_cache_and_stays_identical() {
    // The bench protocol: the same fault load injected repeatedly.
    // Repeat 2..n present texts the cache has already parsed — every
    // one must hit, and the merged profile must stay byte-identical
    // to the uncached reference.
    let run = |caching: bool| {
        let mut sut = ApacheSim::new();
        sut.set_parse_caching(caching);
        let mut campaign = Campaign::new(&mut sut).expect("campaign");
        campaign.set_fault_memoization(caching);
        let one = table1_faultload(campaign.baseline(), &Keyboard::qwerty_us(), DEFAULT_SEED);
        let mut faults = one.clone();
        faults.extend(one.iter().cloned());
        faults.extend(one);
        let profile = campaign.run_faults(faults).expect("run");
        let stats = sut.parse_cache_stats().expect("cache");
        (profile, stats)
    };
    let (uncached, _) = run(false);
    let (cached, stats) = run(true);
    assert_eq!(profile_to_json(&uncached), profile_to_json(&cached));
    // The engine's construction-time baseline scout contributes the
    // pinned baseline misses; the fault load itself must still serve
    // at least 2/3 from the cache.
    assert!(
        stats.hits >= 2 * (stats.misses - stats.pinned as u64),
        "3x the same load must serve at least 2/3 from the cache: {stats:?}"
    );
}

/// Builds the engine-shaped pieces by hand — parsed baseline,
/// per-file formats, baseline payload — so each fault's exact startup
/// payload can be replayed against multiple SUT instances.
struct Replayer {
    baseline: ConfigSet,
    formats: BTreeMap<String, Box<dyn ConfigFormat>>,
    baseline_payload: ConfigPayload,
}

impl Replayer {
    fn new(sut: &dyn SystemUnderTest) -> Self {
        let mut baseline = ConfigSet::new();
        let mut formats = BTreeMap::new();
        let mut baseline_payload = ConfigPayload::new();
        for spec in sut.config_files() {
            let format = format_by_name(&spec.format).expect("known format");
            let tree = format
                .parse(&spec.default_contents)
                .expect("baseline parses");
            let text = format.serialize(&tree).expect("baseline serializes");
            baseline.insert(spec.name.clone(), tree);
            baseline_payload.insert(spec.name.clone(), FileText::baseline(text));
            formats.insert(spec.name, format);
        }
        Replayer {
            baseline,
            formats,
            baseline_payload,
        }
    }

    /// The payload one fault's injection would hand to `start`, built
    /// exactly as the campaign engine builds it: baseline entries for
    /// pointer-shared files, fresh mutated entries otherwise. `None`
    /// when the fault is inexpressible or inapplicable.
    fn payload_for(&self, fault: &GeneratedFault) -> Option<ConfigPayload> {
        let GeneratedFault::Scenario(scenario) = fault else {
            return None;
        };
        let mutated = scenario.apply(&self.baseline).ok()?;
        let mut payload = ConfigPayload::new();
        for (file, tree) in mutated.iter_arcs() {
            if self
                .baseline
                .get_arc(file)
                .is_some_and(|b| Arc::ptr_eq(b, tree))
            {
                payload.insert(file.to_string(), self.baseline_payload.get(file)?.clone());
            } else {
                let text = self.formats.get(file)?.serialize(tree).ok()?;
                payload.insert(file.to_string(), FileText::mutated(text));
            }
        }
        Some(payload)
    }
}

fn assert_hit_equals_cold(make_sut: impl Fn() -> Box<dyn SystemUnderTest>) {
    let mut warm = make_sut();
    let mut cold = make_sut();
    cold.set_parse_caching(false);
    let replayer = Replayer::new(warm.as_ref());
    let faults = table1_faultload(&replayer.baseline, &Keyboard::qwerty_us(), DEFAULT_SEED);

    let mut replayed = 0usize;
    for fault in &faults {
        let Some(payload) = replayer.payload_for(fault) else {
            continue;
        };
        let first = warm.start(&payload, &Deadline::unlimited()); // cold or hit, depending on history
        let hit = warm.start(&payload, &Deadline::unlimited()); // guaranteed byte-identical content
        let reference = cold.start(&payload, &Deadline::unlimited()); // full parse, no memoization
        assert_eq!(first, reference, "fault {}", fault.id());
        assert_eq!(hit, reference, "fault {} (cache hit)", fault.id());
        warm.stop();
        cold.stop();
        replayed += 1;
    }
    assert!(replayed > 50, "the Table 1 load must exercise many faults");
    let stats = warm.parse_cache_stats().expect("cache");
    assert!(
        stats.hits as usize >= replayed,
        "every replayed fault must hit at least once: {stats:?}"
    );
    let cold_stats = cold.parse_cache_stats().expect("cache");
    assert_eq!(cold_stats.hits, 0);
    assert_eq!(cold_stats.entries, 0);
}

#[test]
fn cache_hit_start_equals_cold_start_over_table1_mysql() {
    assert_hit_equals_cold(|| Box::new(MySqlSim::new()));
}

#[test]
fn cache_hit_start_equals_cold_start_over_table1_postgres() {
    assert_hit_equals_cold(|| Box::new(PostgresSim::new()));
}

#[test]
fn cache_hit_start_equals_cold_start_over_table1_apache() {
    assert_hit_equals_cold(|| Box::new(ApacheSim::new()));
}

#[test]
fn cache_hit_start_equals_cold_start_over_table1_bind() {
    assert_hit_equals_cold(|| Box::new(BindSim::new()));
}

#[test]
fn unchanged_files_of_multi_file_suts_parse_once() {
    // BIND reads two zone files; a fault load that only ever mutates
    // one of them must leave the other's single pinned parse as the
    // only work done for it.
    let mut sut = BindSim::new();
    let replayer = Replayer::new(&sut);
    let faults = table1_faultload(&replayer.baseline, &Keyboard::qwerty_us(), DEFAULT_SEED);
    let mut starts = 0u64;
    for fault in &faults {
        let Some(payload) = replayer.payload_for(fault) else {
            continue;
        };
        sut.start(&payload, &Deadline::unlimited());
        sut.stop();
        starts += 1;
    }
    let stats = sut.parse_cache_stats().expect("cache");
    // Uncached, this would be up to 2 * starts full parses (a failing
    // first zone still short-circuits the second). With the cache,
    // misses cover each *distinct* mutated text once plus the two
    // pinned baselines — per start, at most the one mutated file is
    // parsed.
    assert!(stats.hits + stats.misses <= 2 * starts);
    assert!(
        stats.misses <= starts + 2,
        "only the mutated file may parse per start: {stats:?} over {starts} starts"
    );
    assert!(stats.hits > starts / 2, "untouched zones must mostly hit");
    assert_eq!(stats.pinned, 2, "both baseline zone files are pinned");
}
