//! The batched comparison runner must produce results bit-identical
//! to the sequential §5.5 procedure: per-directive seeding depends
//! only on the directive index, never on scheduling.

use conferr::{
    parallel_value_typo_resilience, sut_factory, value_typo_resilience, CampaignExecutor,
};
use conferr_keyboard::Keyboard;
use conferr_model::TypoKind;
use conferr_plugins::typos_of_kind;
use conferr_sut::{ConfigPayload, FileText, PostgresSim};

fn mutator(keyboard: &Keyboard) -> impl Fn(&str) -> Vec<(String, String)> + Sync + '_ {
    move |value: &str| {
        let mut out = Vec::new();
        for kind in [
            TypoKind::Omission,
            TypoKind::Insertion,
            TypoKind::Substitution,
            TypoKind::Transposition,
        ] {
            out.extend(typos_of_kind(keyboard, kind, value));
        }
        out
    }
}

#[test]
fn parallel_equals_sequential() {
    let keyboard = Keyboard::qwerty_us();
    let m = mutator(&keyboard);
    let mut configs = ConfigPayload::new();
    configs.insert(
        "postgresql.conf",
        FileText::mutated(PostgresSim::full_coverage_config()),
    );
    let skip = PostgresSim::boolean_directive_names();

    let sequential = {
        let mut sut = PostgresSim::new();
        value_typo_resilience(&mut sut, &configs, &m, 8, 42, &skip).expect("sequential")
    };
    for threads in [1, 3, 8] {
        let executor = CampaignExecutor::new(threads);
        let parallel = parallel_value_typo_resilience(
            sut_factory(PostgresSim::new),
            &configs,
            &m,
            8,
            42,
            &skip,
            &executor,
        )
        .expect("parallel");
        assert_eq!(parallel, sequential, "threads = {threads}");
    }
}

#[test]
fn repeated_runs_on_one_executor_stay_identical() {
    // The §5.5 runner reuses a persistent pool (warm SUT caches and
    // all) without drifting: the second run over the same payload is
    // bit-identical to the first.
    let keyboard = Keyboard::qwerty_us();
    let m = mutator(&keyboard);
    let mut configs = ConfigPayload::new();
    configs.insert(
        "postgresql.conf",
        FileText::mutated("port = 5432\nmax_connections = 20\nshared_buffers = 100\n"),
    );
    let executor = CampaignExecutor::new(3);
    let run = || {
        parallel_value_typo_resilience(
            sut_factory(PostgresSim::new),
            &configs,
            &m,
            5,
            7,
            &[],
            &executor,
        )
        .expect("parallel")
    };
    assert_eq!(run(), run());
}

#[test]
fn parallel_handles_more_threads_than_targets() {
    let keyboard = Keyboard::qwerty_us();
    let m = mutator(&keyboard);
    let mut configs = ConfigPayload::new();
    configs.insert(
        "postgresql.conf",
        FileText::mutated("port = 5432\nmax_connections = 20\nshared_buffers = 100\n"),
    );
    let executor = CampaignExecutor::new(64);
    let result = parallel_value_typo_resilience(
        sut_factory(PostgresSim::new),
        &configs,
        &m,
        5,
        7,
        &[],
        &executor,
    )
    .expect("parallel");
    assert_eq!(result.directives.len(), 3);
}
