//! The parallel comparison runner must produce results bit-identical
//! to the sequential §5.5 procedure: per-directive seeding depends
//! only on the directive index, never on scheduling.

use std::collections::BTreeMap;

use conferr::{parallel_value_typo_resilience, value_typo_resilience};
use conferr_keyboard::Keyboard;
use conferr_model::TypoKind;
use conferr_plugins::typos_of_kind;
use conferr_sut::{PostgresSim, SystemUnderTest};

fn mutator(keyboard: &Keyboard) -> impl Fn(&str) -> Vec<(String, String)> + Sync + '_ {
    move |value: &str| {
        let mut out = Vec::new();
        for kind in [
            TypoKind::Omission,
            TypoKind::Insertion,
            TypoKind::Substitution,
            TypoKind::Transposition,
        ] {
            out.extend(typos_of_kind(keyboard, kind, value));
        }
        out
    }
}

#[test]
fn parallel_equals_sequential() {
    let keyboard = Keyboard::qwerty_us();
    let m = mutator(&keyboard);
    let mut configs = BTreeMap::new();
    configs.insert(
        "postgresql.conf".to_string(),
        PostgresSim::full_coverage_config(),
    );
    let skip = PostgresSim::boolean_directive_names();

    let sequential = {
        let mut sut = PostgresSim::new();
        value_typo_resilience(&mut sut, &configs, &m, 8, 42, &skip).expect("sequential")
    };
    for threads in [1, 3, 8] {
        let parallel = parallel_value_typo_resilience(
            || Box::new(PostgresSim::new()) as Box<dyn SystemUnderTest>,
            &configs,
            &m,
            8,
            42,
            &skip,
            threads,
        )
        .expect("parallel");
        assert_eq!(parallel, sequential, "threads = {threads}");
    }
}

#[test]
fn parallel_handles_more_threads_than_targets() {
    let keyboard = Keyboard::qwerty_us();
    let m = mutator(&keyboard);
    let mut configs = BTreeMap::new();
    configs.insert(
        "postgresql.conf".to_string(),
        "port = 5432\nmax_connections = 20\nshared_buffers = 100\n".to_string(),
    );
    let result = parallel_value_typo_resilience(
        || Box::new(PostgresSim::new()) as Box<dyn SystemUnderTest>,
        &configs,
        &m,
        5,
        7,
        &[],
        64,
    )
    .expect("parallel");
    assert_eq!(result.directives.len(), 3);
}
