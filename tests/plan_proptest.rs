//! Property tests over the plan engine: determinism across thread
//! counts and shrinker soundness, sampled over generator seeds.

use std::sync::OnceLock;

use conferr::CampaignExecutor;
use conferr_plan::{is_subplan, ChaosSpec, PlanHarness, Property};
use proptest::prelude::*;

const CHAOS: ChaosSpec = ChaosSpec {
    seed: 7,
    panic_pm: 0,
    stall_pm: 0,
    fail_pm: 350,
    fail_test_pm: 200,
    stall_ms: 5,
};

/// One chaos-wrapped mysql harness shared by every case — plan
/// execution is stateless across runs, so sharing is sound and keeps
/// the suite fast.
fn harness() -> &'static PlanHarness {
    static HARNESS: OnceLock<PlanHarness> = OnceLock::new();
    HARNESS.get_or_init(|| PlanHarness::new("mysql", Some(CHAOS)).unwrap())
}

fn executors() -> &'static [CampaignExecutor; 3] {
    static EXECUTORS: OnceLock<[CampaignExecutor; 3]> = OnceLock::new();
    EXECUTORS.get_or_init(|| {
        [
            CampaignExecutor::new(1),
            CampaignExecutor::new(2),
            CampaignExecutor::new(4),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Same seed ⇒ byte-identical plan, trace and shrink result, at 1,
    /// 2 and 4 executor threads (the chaos wrapper included).
    #[test]
    fn plans_traces_and_shrinks_are_deterministic(
        seed in 0u64..500,
        profile_idx in 0usize..3,
    ) {
        let harness = harness();
        let profile = ["operator-default", "compound-heavy", "revert-happy"][profile_idx];
        let plan = harness.generate(profile, seed, 10).unwrap();
        prop_assert_eq!(&plan, &harness.generate(profile, seed, 10).unwrap());

        let [one, two, four] = executors();
        let reference = harness.run(one, &plan).unwrap();
        for executor in [two, four] {
            let trace = harness.run(executor, &plan).unwrap();
            prop_assert_eq!(trace.render_lines(), reference.render_lines());
        }

        // When a property fails, the shrink result is identical at
        // every thread count too.
        for property in Property::ALL {
            if property.evaluate(&reference).is_none() {
                continue;
            }
            let report = harness.shrink(one, &plan, property).unwrap().unwrap();
            for executor in [two, four] {
                let again = harness.shrink(executor, &plan, property).unwrap().unwrap();
                prop_assert_eq!(&again.minimal, &report.minimal);
                prop_assert_eq!(&again.violation, &report.violation);
            }
        }
    }

    /// Shrinker soundness over generated failing plans: the minimal
    /// plan still fails the same property, is a subsequence of the
    /// original, and shrinking is idempotent.
    #[test]
    fn shrinking_is_sound_and_idempotent(seed in 0u64..500) {
        let harness = harness();
        let executor = &executors()[0];
        let plan = harness.generate("revert-happy", seed, 12).unwrap();
        let trace = harness.run(executor, &plan).unwrap();
        for property in Property::ALL {
            let Some(original_violation) = property.evaluate(&trace) else {
                continue;
            };
            let report = harness.shrink(executor, &plan, property).unwrap().unwrap();
            prop_assert_eq!(report.violation.property, original_violation.property);

            // Still fails the same property when rerun from scratch.
            let minimal_violation = harness
                .check(executor, &report.minimal, property)
                .unwrap()
                .expect("minimal plan must still fail");
            prop_assert_eq!(&minimal_violation, &report.violation);

            // A subsequence of the original (step ids increasing,
            // inject edits subsequences, bookkeeping steps unchanged).
            prop_assert!(is_subplan(&report.minimal, &plan));
            prop_assert!(report.minimal.len() <= plan.len());

            // Idempotent: shrinking the minimal plan changes nothing.
            let again = harness
                .shrink(executor, &report.minimal, property)
                .unwrap()
                .expect("minimal plan still fails");
            prop_assert_eq!(&again.minimal, &report.minimal);
        }
    }
}
