//! End-to-end campaign against the XML-configured application server —
//! the paper's "generic XML configuration files" support (§3.2),
//! exercised all the way through injection.

use conferr::{Campaign, InjectionResult};
use conferr_keyboard::Keyboard;
use conferr_plugins::XmlAttrTypoPlugin;
use conferr_sut::AppServerSim;

#[test]
fn xml_typo_campaign_produces_all_three_outcome_kinds() {
    let mut sut = AppServerSim::new();
    let mut campaign = Campaign::new(&mut sut).expect("campaign");
    campaign.add_generator(Box::new(XmlAttrTypoPlugin::new(Keyboard::qwerty_us())));
    let profile = campaign.run().expect("run");
    assert!(
        profile.len() > 100,
        "rich fault load, got {}",
        profile.len()
    );

    let s = profile.summary();
    assert_eq!(s.skipped, 0);
    assert!(s.detected_at_startup > 0, "{s:?}");
    assert!(
        s.detected_by_tests > 0,
        "port/context typos must reach the deploy check: {s:?}"
    );
    assert!(
        s.undetected > 0,
        "free-form attributes must absorb typos: {s:?}"
    );
}

#[test]
fn port_typos_split_between_startup_and_functional_detection() {
    let mut sut = AppServerSim::new();
    let mut campaign = Campaign::new(&mut sut).expect("campaign");
    campaign.add_generator(Box::new(XmlAttrTypoPlugin::new(Keyboard::qwerty_us())));
    let profile = campaign.run().expect("run");
    // Typos in the probe connector's port: non-numeric → startup,
    // numeric-but-wrong → deploy check.
    let port_outcomes: Vec<_> = profile
        .outcomes()
        .iter()
        .filter(|o| o.id.contains(":port#") && o.description.contains("<connector"))
        .collect();
    assert!(!port_outcomes.is_empty());
    assert!(port_outcomes
        .iter()
        .any(|o| matches!(o.result, InjectionResult::DetectedAtStartup { .. })));
    assert!(port_outcomes
        .iter()
        .any(|o| matches!(o.result, InjectionResult::DetectedByFunctionalTest { .. })));
}

#[test]
fn campaign_is_deterministic() {
    let run = || {
        let mut sut = AppServerSim::new();
        let mut campaign = Campaign::new(&mut sut).expect("campaign");
        campaign.add_generator(Box::new(XmlAttrTypoPlugin::new(Keyboard::qwerty_us())));
        campaign.run().expect("run")
    };
    assert_eq!(run().outcomes(), run().outcomes());
}
